"""Space/time trade-offs of the ring's representation options.

Not a paper table, but the knobs §5 discusses: the optional third
column (``L_o``), Elias-Fano boundary arrays (sdsl's ``sd_vector``),
and the packed-form baseline.  Benchmarks construction of each variant
and asserts the expected size ordering.
"""

from __future__ import annotations

import pytest

from repro.ring.builder import RingIndex


@pytest.mark.parametrize(
    "variant,kwargs",
    [
        ("default", {}),
        ("ef-boundaries", {"compressed_boundaries": True}),
        ("with-object-column", {"keep_object_column": True}),
    ],
)
def test_build_variant(benchmark, bench_graph, variant, kwargs):
    benchmark.group = "space-tradeoffs"
    index = benchmark.pedantic(
        RingIndex.from_graph, args=(bench_graph,), kwargs=kwargs,
        rounds=1, iterations=1,
    )
    assert len(index.ring) > 0


def test_size_ordering(bench_graph):
    default = RingIndex.from_graph(bench_graph)
    compact = RingIndex.from_graph(
        bench_graph, compressed_boundaries=True
    )
    full = RingIndex.from_graph(bench_graph, keep_object_column=True)
    assert compact.ring.size_in_bits() < default.ring.size_in_bits()
    assert full.ring.size_in_bits() > default.ring.size_in_bits()
    # answers are identical across representations
    query = "(?x, p1/p0*, n0)"
    reference = default.evaluate(query).pairs
    assert compact.evaluate(query).pairs == reference
    assert full.evaluate(query).pairs == reference
