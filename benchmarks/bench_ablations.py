"""A1–A4 — ablations of the design choices DESIGN.md calls out.

* A1 bit-parallel multi-state traversal vs node-at-a-time product BFS;
* A2 wavelet-node ``B[v]``/``D[v]`` pruning on vs off;
* A3 the §5 fast paths for short patterns on vs off;
* A4 the start-side cardinality planner on vs off.

Each ablation runs the same query set on both engine configurations;
the assertions check result equality (an ablation must never change
answers), and the benchmark groups expose the cost difference.
"""

from __future__ import annotations

import pytest

from repro.baselines.base import EncodedGraph
from repro.baselines.product_bfs import ProductBFSEngine
from repro.core.engine import RingRPQEngine

#: Multi-state queries: several NFA states active at once, which is
#: where the bit-parallel representation earns its keep.  The last
#: three are *ambiguous* expressions (the same graph path drives many
#: NFA states simultaneously): on those the ring visits ~3x fewer
#: (node, state-set) expansions than the node-at-a-time product BFS.
MULTISTATE_QUERIES = [
    "(?x, (p1|p2|p3)+, n0)",
    "(?x, p1/p0*/p2?, n0)",
    "(?x, p0*/p1*/p2*, n1)",
    "(n2, (p0/p1)+|p2+, ?y)",
    "(?x, (p0/p0/p0)|(p0/p0)|p0, n0)",
    "(?x, p0?/p0?/p0?/p0?, n1)",
    "(?x, (p0|p0/p0)+, n0)",
]

SHORT_QUERIES = [
    "(?x, p1, ?y)",
    "(?x, ^p2, ?y)",
    "(?x, p1|p2, ?y)",
    "(?x, p1/p2, ?y)",
]

PLANNED_QUERIES = [
    "(?x, p9/p0*, ?y)",
    "(?x, p0*/p9, ?y)",
    "(?x, p12/p1*, ?y)",
]


def _run(engine, queries, timeout=10.0, limit=50_000):
    answers = []
    for query in queries:
        answers.append(
            frozenset(engine.evaluate(query, timeout=timeout,
                                      limit=limit).pairs)
        )
    return answers


@pytest.mark.parametrize("config", ["bitparallel-ring", "node-at-a-time"])
def test_a1_bitparallel_vs_classical(benchmark, bench_index, config):
    benchmark.group = "A1-bitparallel"
    if config == "bitparallel-ring":
        engine = RingRPQEngine(bench_index)
    else:
        engine = ProductBFSEngine(EncodedGraph.from_index(bench_index))
    answers = benchmark.pedantic(
        _run, args=(engine, MULTISTATE_QUERIES), rounds=1, iterations=1
    )
    assert len(answers) == len(MULTISTATE_QUERIES)


def test_a1_answers_agree(bench_index):
    ring = RingRPQEngine(bench_index)
    classical = ProductBFSEngine(EncodedGraph.from_index(bench_index))
    assert _run(ring, MULTISTATE_QUERIES) == \
        _run(classical, MULTISTATE_QUERIES)


def test_a1_multistate_visits_fewer_nodes(bench_index):
    """The paper's bit-parallel claim: processing several NFA states at
    once means fewer (node, state) expansions than the classical BFS —
    dramatically so on ambiguous expressions."""
    ring = RingRPQEngine(bench_index)
    classical = ProductBFSEngine(EncodedGraph.from_index(bench_index))
    for query in MULTISTATE_QUERIES[-3:]:
        ring_nodes = ring.evaluate(query, timeout=30).stats.product_nodes
        bfs_nodes = classical.evaluate(
            query, timeout=30
        ).stats.product_nodes
        assert ring_nodes < bfs_nodes, query


@pytest.mark.parametrize("prune", [True, False],
                         ids=["prune-on", "prune-off"])
def test_a2_wavelet_pruning(benchmark, bench_index, prune):
    benchmark.group = "A2-pruning"
    engine = RingRPQEngine(bench_index, prune=prune)
    benchmark.pedantic(
        _run, args=(engine, MULTISTATE_QUERIES), rounds=1, iterations=1
    )


def test_a2_pruning_reduces_work(bench_index):
    pruned = RingRPQEngine(bench_index, prune=True)
    unpruned = RingRPQEngine(bench_index, prune=False)
    query = MULTISTATE_QUERIES[0]
    a = pruned.evaluate(query, timeout=10)
    b = unpruned.evaluate(query, timeout=10)
    assert a.pairs == b.pairs
    assert a.stats.wavelet_nodes <= b.stats.wavelet_nodes


@pytest.mark.parametrize("fast", [True, False],
                         ids=["fastpaths-on", "fastpaths-off"])
def test_a3_fast_paths(benchmark, bench_index, fast):
    benchmark.group = "A3-fastpaths"
    engine = RingRPQEngine(bench_index, fast_paths=fast)
    answers = benchmark.pedantic(
        _run, args=(engine, SHORT_QUERIES), rounds=1, iterations=1
    )
    assert len(answers) == len(SHORT_QUERIES)


def test_a3_answers_agree(bench_index):
    fast = RingRPQEngine(bench_index, fast_paths=True)
    slow = RingRPQEngine(bench_index, fast_paths=False)
    assert _run(fast, SHORT_QUERIES) == _run(slow, SHORT_QUERIES)


@pytest.mark.parametrize("planned", [True, False],
                         ids=["planner-on", "planner-off"])
def test_a4_planner(benchmark, bench_index, planned):
    benchmark.group = "A4-planner"
    engine = RingRPQEngine(bench_index, use_planner=planned)
    answers = benchmark.pedantic(
        _run, args=(engine, PLANNED_QUERIES), rounds=1, iterations=1
    )
    assert len(answers) == len(PLANNED_QUERIES)


def test_a4_answers_agree(bench_index):
    planned = RingRPQEngine(bench_index, use_planner=True)
    unplanned = RingRPQEngine(bench_index, use_planner=False)
    assert _run(planned, PLANNED_QUERIES) == \
        _run(unplanned, PLANNED_QUERIES)
