"""Shared fixtures for the pytest-benchmark suite.

Benchmark scale is deliberately small so the full suite finishes in
minutes of pure Python; the ``python -m repro.bench.tableN`` drivers
run the same code at the larger, headline scales recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import TABLE2_ENGINES
from repro.bench.context import build_context
from repro.graph.generators import wikidata_like
from repro.ring.builder import RingIndex


@pytest.fixture(scope="session")
def bench_context():
    """The standard benchmark environment at pytest scale."""
    return build_context(
        n_nodes=1_200,
        n_edges=7_000,
        n_predicates=24,
        log_scale=0.02,
        timeout=5.0,
        limit=50_000,
        seed=0,
        engine_names=TABLE2_ENGINES,
    )


@pytest.fixture(scope="session")
def bench_graph():
    return wikidata_like(
        n_nodes=1_200, n_edges=7_000, n_predicates=24, seed=0
    )


@pytest.fixture(scope="session")
def bench_index(bench_graph):
    return RingIndex.from_graph(bench_graph)
