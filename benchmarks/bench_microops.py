"""Micro-operation costs: the substrate-distortion calibration.

EXPERIMENTS.md explains why the paper's wall-clock ratios cannot
transfer to pure Python: the ring's elementary operation (a bitvector
rank inside a wavelet-matrix descent) costs interpreter time, while
the baselines' elementary operation (a dict/index probe) runs at
C speed.  These benchmarks measure both, so the distortion factor is a
number, not an assertion.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.base import EncodedGraph
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix


@pytest.fixture(scope="module")
def bitvector():
    rng = np.random.default_rng(0)
    return BitVector((rng.random(200_000) < 0.5).astype(np.uint8))


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(1)
    return WaveletMatrix(rng.integers(0, 1024, size=100_000), 1024)


def test_bitvector_rank(benchmark, bitvector):
    benchmark.group = "micro-ops"
    positions = list(range(0, 200_000, 97))

    def ranks():
        total = 0
        for i in positions:
            total += bitvector.rank1(i)
        return total

    assert benchmark(ranks) > 0


def test_wavelet_rank(benchmark, matrix):
    benchmark.group = "micro-ops"

    def ranks():
        total = 0
        for c in range(0, 1024, 37):
            total += matrix.rank(c, 50_000)
        return total

    assert benchmark(ranks) >= 0


def test_wavelet_range_distinct(benchmark, matrix):
    benchmark.group = "micro-ops"

    def distinct():
        return sum(1 for _ in matrix.range_distinct(1_000, 1_400))

    assert benchmark(distinct) > 0


def test_ring_backward_step(benchmark, bench_index):
    benchmark.group = "micro-ops"
    ring = bench_index.ring

    def steps():
        total = 0
        for o in range(0, ring.num_nodes, 41):
            b, e = ring.object_range(o)
            if b == e:
                continue
            for p in range(0, ring.num_predicates, 11):
                bs, es = ring.backward_step(b, e, p)
                total += es - bs
        return total

    assert benchmark(steps) >= 0


def test_dict_adjacency_probe(benchmark, bench_index):
    """The baselines' elementary op, for the distortion ratio."""
    benchmark.group = "micro-ops"
    encoded = EncodedGraph.from_index(bench_index)

    def probes():
        total = 0
        for node in range(0, encoded.num_nodes, 7):
            for pid in range(0, encoded.num_predicates, 13):
                total += len(encoded.targets(node, pid))
        return total

    assert benchmark(probes) >= 0


# ----------------------------------------------------------------------
# Batch kernels: the same elementary ops, a frontier at a time
# ----------------------------------------------------------------------


def _best_of(fn, repeats: int = 50) -> float:
    """Min wall-clock of ``repeats`` calls (noise-robust microtiming)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_bitvector_rank_batched(benchmark, bitvector):
    """One ``rank1_many`` call over the same positions the scalar
    benchmark walks; asserts batch/scalar agreement first."""
    benchmark.group = "micro-ops"
    positions = np.arange(0, 200_000, 97, dtype=np.int64)
    scalar = [bitvector.rank1(int(i)) for i in positions]
    assert bitvector.rank1_many(positions).tolist() == scalar

    def ranks():
        return int(bitvector.rank1_many(positions).sum())

    assert benchmark(ranks) > 0


def test_batched_rank_speedup(bitvector):
    """The batched rank kernel must beat the scalar loop by >= 3x once
    the batch amortises the numpy dispatch overhead.

    The crossover sits between batch 64 (the kernel roughly ties the
    scalar loop) and batch 256; the gate asserts the >= 3x bar from
    256 up and agreement at every size.
    """
    rng = np.random.default_rng(7)
    speedups = {}
    for batch in (64, 256, 2048):
        positions = rng.integers(0, 200_000, size=batch).astype(np.int64)
        pos_list = [int(p) for p in positions]
        expected = [bitvector.rank1(p) for p in pos_list]
        assert bitvector.rank1_many(positions).tolist() == expected
        scalar_t = _best_of(lambda: [bitvector.rank1(p) for p in pos_list])
        batched_t = _best_of(lambda: bitvector.rank1_many(positions))
        speedups[batch] = scalar_t / batched_t
    assert speedups[256] >= 3.0, speedups
    assert speedups[2048] >= 3.0, speedups


def test_wavelet_descend_batch(benchmark, matrix):
    """Level-synchronous batched descent over many ranges at once;
    asserts it reports exactly what per-range ``range_distinct`` does."""
    benchmark.group = "micro-ops"
    ranges = [(i * 1_000, i * 1_000 + 400) for i in range(64)]
    origins, symbols, _, _ = matrix.descend_batch(ranges)
    for oi, (b, e) in enumerate(ranges):
        want = [s for s, _, _ in matrix.range_distinct(b, e)]
        got = symbols[origins == oi].tolist()
        assert got == want

    def descend():
        return len(matrix.descend_batch(ranges)[0])

    assert benchmark(descend) > 0


def test_metrics_enabled_overhead_gate(bench_index):
    """Enabled-but-untraced telemetry must stay cheap.

    A live :class:`Metrics` registry with no trace buffer and no span
    stack turns on the counter/phase-timer paths but skips every
    allocation-heavy branch; this gate bounds its per-query overhead
    against the NULL_METRICS default.  The acceptance figure is 5%;
    the assertion is deliberately lenient (35%) because best-of-5
    query timing on a shared CI box is noisy, while the printed ratio
    tracks the real number run to run.
    """
    from repro.obs.metrics import Metrics

    engine = bench_index.engine
    query = "(?x, (p0|p1)+, ?y)"
    engine.evaluate(query)  # warm caches

    null_t = _best_of(lambda: engine.evaluate(query), repeats=5)
    enabled_t = _best_of(
        lambda: engine.evaluate(query, metrics=Metrics()), repeats=5
    )
    ratio = enabled_t / null_t
    print(f"\nenabled-but-untraced overhead: {ratio:.3f}x "
          f"(null {null_t * 1e3:.2f} ms, enabled {enabled_t * 1e3:.2f} ms)")
    assert ratio <= 1.35, (
        f"metrics-enabled run {ratio:.2f}x slower than NULL_METRICS"
    )


def test_ring_backward_step_batched(benchmark, bench_index):
    """Bulk Eq. 4-5 steps against the per-range scalar walk."""
    benchmark.group = "micro-ops"
    ring = bench_index.ring
    ranges = []
    for o in range(0, ring.num_nodes, 41):
        b, e = ring.object_range(o)
        if b < e:
            ranges.append((b, e))
    pid = 0
    batched = ring.backward_step_many(ranges, pid)
    scalar = [ring.backward_step(b, e, pid) for b, e in ranges]
    assert [tuple(row) for row in batched.tolist()] == scalar

    def steps():
        out = ring.backward_step_many(ranges, pid)
        return int(out[:, 1].sum())

    assert benchmark(steps) >= 0
