"""Micro-operation costs: the substrate-distortion calibration.

EXPERIMENTS.md explains why the paper's wall-clock ratios cannot
transfer to pure Python: the ring's elementary operation (a bitvector
rank inside a wavelet-matrix descent) costs interpreter time, while
the baselines' elementary operation (a dict/index probe) runs at
C speed.  These benchmarks measure both, so the distortion factor is a
number, not an assertion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import EncodedGraph
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix


@pytest.fixture(scope="module")
def bitvector():
    rng = np.random.default_rng(0)
    return BitVector((rng.random(200_000) < 0.5).astype(np.uint8))


@pytest.fixture(scope="module")
def matrix():
    rng = np.random.default_rng(1)
    return WaveletMatrix(rng.integers(0, 1024, size=100_000), 1024)


def test_bitvector_rank(benchmark, bitvector):
    benchmark.group = "micro-ops"
    positions = list(range(0, 200_000, 97))

    def ranks():
        total = 0
        for i in positions:
            total += bitvector.rank1(i)
        return total

    assert benchmark(ranks) > 0


def test_wavelet_rank(benchmark, matrix):
    benchmark.group = "micro-ops"

    def ranks():
        total = 0
        for c in range(0, 1024, 37):
            total += matrix.rank(c, 50_000)
        return total

    assert benchmark(ranks) >= 0


def test_wavelet_range_distinct(benchmark, matrix):
    benchmark.group = "micro-ops"

    def distinct():
        return sum(1 for _ in matrix.range_distinct(1_000, 1_400))

    assert benchmark(distinct) > 0


def test_ring_backward_step(benchmark, bench_index):
    benchmark.group = "micro-ops"
    ring = bench_index.ring

    def steps():
        total = 0
        for o in range(0, ring.num_nodes, 41):
            b, e = ring.object_range(o)
            if b == e:
                continue
            for p in range(0, ring.num_predicates, 11):
                bs, es = ring.backward_step(b, e, p)
                total += es - bs
        return total

    assert benchmark(steps) >= 0


def test_dict_adjacency_probe(benchmark, bench_index):
    """The baselines' elementary op, for the distortion ratio."""
    benchmark.group = "micro-ops"
    encoded = EncodedGraph.from_index(bench_index)

    def probes():
        total = 0
        for node in range(0, encoded.num_nodes, 7):
            for pid in range(0, encoded.num_predicates, 13):
                total += len(encoded.targets(node, pid))
        return total

    assert benchmark(probes) >= 0
