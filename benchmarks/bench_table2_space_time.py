"""E2 — Table 2: index space and per-engine query times.

One benchmark per Table 2 engine running the same (scaled) Table 1-mix
query log, plus a space check asserting the paper's headline ordering:
the ring is several times smaller than every alternative.  The wide
run behind EXPERIMENTS.md is ``python -m repro.bench.table2``.
"""

from __future__ import annotations

import pytest

from repro.baselines.registry import TABLE2_ENGINES
from repro.bench.space import engine_bytes_per_edge, ring_bytes_per_edge


def _run_log(engine, queries, timeout, limit):
    total = 0
    for query in queries:
        total += len(engine.evaluate(query, timeout=timeout, limit=limit))
    return total


@pytest.mark.parametrize("name", TABLE2_ENGINES)
def test_query_log_per_engine(benchmark, bench_context, name):
    context = bench_context
    engine = context.engines[name]
    benchmark.group = "table2-query-log"
    total = benchmark.pedantic(
        _run_log,
        args=(engine, context.queries, context.timeout, context.limit),
        rounds=1,
        iterations=1,
    )
    assert total >= 0


def test_space_ordering(benchmark, bench_context):
    context = bench_context
    benchmark.group = "table2-space"
    ring_size = benchmark(ring_bytes_per_edge, context.index)
    for name in TABLE2_ENGINES:
        if name == "ring":
            continue
        other = engine_bytes_per_edge(name, context.index)
        # Paper: 3-5x smaller; assert a clear multiple here.
        assert other > 2.5 * ring_size, (name, other, ring_size)
