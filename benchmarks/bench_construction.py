"""E4 — §5 in-text: index construction cost.

The paper builds its Wikidata ring in 2.3 hours / 64.75 GB; here the
equivalent construction (completion, dictionary encoding, three sorts,
wavelet matrices) is benchmarked at laptop scale, with the ring's
measured bytes/edge asserted to stay near its packed-form multiple.
"""

from __future__ import annotations

from repro.bench.space import packed_bytes_per_edge, ring_bytes_per_edge
from repro.ring.builder import RingIndex


def test_ring_construction(benchmark, bench_graph):
    index = benchmark.pedantic(
        RingIndex.from_graph, args=(bench_graph,), rounds=2, iterations=1
    )
    ratio = ring_bytes_per_edge(index) / packed_bytes_per_edge(index)
    # Paper: the ring is ~1.9x the packed form.  Our Python build adds
    # word-granular rank directories, so allow up to 4x.
    assert ratio < 4.0


def test_encoded_graph_construction(benchmark, bench_index):
    from repro.baselines.base import EncodedGraph

    encoded = benchmark.pedantic(
        EncodedGraph.from_index, args=(bench_index,), rounds=1,
        iterations=1,
    )
    assert len(encoded.triples) == len(bench_index.ring)
