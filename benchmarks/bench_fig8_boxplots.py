"""E3 — Figure 8: per-pattern query-time distributions.

Benchmarks the ring on each pattern *class* separately (one benchmark
group per pattern family), which is the data behind the paper's
boxplot figure.  The full multi-engine figure with rendered boxplots
comes from ``python -m repro.bench.fig8``.
"""

from __future__ import annotations

from collections import defaultdict

import pytest

from repro.bench.patterns import classify_query

#: Pattern families benchmarked individually; together they cover the
#: recursive patterns the ring wins in the paper and the join-like
#: patterns it loses.
FAMILIES = {
    "anchored-star": {"v * c", "c * v", "v + c", "c + v"},
    "anchored-concat-star": {"v /* c", "c /* v", "v */* c",
                             "v */*/*/* c", "v /+ c", "v /? c"},
    "join-like": {"v / c", "v / v", "v | v", "v | c", "v ^ v",
                  "v ^/ v", "v /^ v"},
    "open-recursive": {"v * v", "v + v", "v /* v"},
}


def _run(engine, queries, timeout, limit):
    count = 0
    for query in queries:
        count += len(engine.evaluate(query, timeout=timeout, limit=limit))
    return count


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_ring_per_pattern_family(benchmark, bench_context, family):
    context = bench_context
    by_family = defaultdict(list)
    for query in context.queries:
        pattern = classify_query(query)
        for name, members in FAMILIES.items():
            if pattern in members:
                by_family[name].append(query)
    queries = by_family[family]
    assert queries, f"no queries generated for family {family}"
    benchmark.group = f"fig8-{family}"
    engine = context.engines["ring"]
    benchmark.pedantic(
        _run,
        args=(engine, queries, context.timeout, context.limit),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("engine_name", ["ring", "alp-blazegraph"])
def test_recursive_family_engine_duel(benchmark, bench_context,
                                      engine_name):
    """The head-to-head the paper highlights: recursive patterns."""
    context = bench_context
    recursive = [
        q for q in context.queries
        if classify_query(q) in FAMILIES["anchored-star"]
    ]
    benchmark.group = "fig8-duel-anchored-star"
    engine = context.engines[engine_name]
    benchmark.pedantic(
        _run,
        args=(engine, recursive, context.timeout, context.limit),
        rounds=1,
        iterations=1,
    )
