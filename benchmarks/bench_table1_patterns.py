"""E1 — Table 1: query-log generation and pattern classification.

Benchmarks the workload generator and the classifier, and asserts that
a regenerated log reproduces the paper's pattern histogram (scaled).
``python -m repro.bench.table1`` prints the full table.
"""

from __future__ import annotations

from collections import Counter

from repro.bench.patterns import TABLE1_REFERENCE, classify_query
from repro.bench.workload import generate_query_log


def test_generate_query_log(benchmark, bench_graph):
    queries = benchmark(
        generate_query_log, bench_graph, scale=0.05, seed=0
    )
    histogram = Counter(classify_query(q) for q in queries)
    for pattern, count, _, _, _ in TABLE1_REFERENCE:
        assert histogram[pattern] == max(1, round(count * 0.05)), pattern


def test_classify_log(benchmark, bench_graph):
    queries = generate_query_log(bench_graph, scale=0.1, seed=1)

    def classify_all():
        return [classify_query(q) for q in queries]

    patterns = benchmark(classify_all)
    assert len(patterns) == len(queries)
    assert set(patterns) <= {p for p, _, _, _, _ in TABLE1_REFERENCE}
