"""The paper's primary contribution: RPQ evaluation on the ring.

* :mod:`repro.core.query` — the RPQ/2RPQ query model and its textual
  form ``(?x, expr, node)``;
* :mod:`repro.core.result` — query results plus evaluation statistics;
* :mod:`repro.core.planner` — start-side selection (§5);
* :mod:`repro.core.engine` — the §4 algorithm: wavelet-tree-guided
  backward traversal of the product graph with bit-parallel Glushkov
  state sets.
"""

from repro.core.engine import RingRPQEngine
from repro.core.planner import choose_anchor_side
from repro.core.query import RPQ, Variable
from repro.core.result import QueryResult, QueryStats

__all__ = [
    "RPQ",
    "QueryResult",
    "QueryStats",
    "RingRPQEngine",
    "Variable",
    "choose_anchor_side",
]
