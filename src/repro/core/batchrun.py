"""Batched backward product-graph traversal (the §4 algorithm on
frontier-at-once kernels).

:class:`BatchedBackwardRun` evaluates the same BFS the scalar
:class:`~repro.core.engine._BackwardRun` performs, but restructured so
the hot work runs on whole *frontiers*:

* the pending BFS queue is consumed wave by wave (one wave = one BFS
  generation), and all L_p descents of a wave merge into one
  level-synchronous frontier — the ``B[v]`` mask pruning of §4.1
  becomes a numpy boolean filter against a per-level mask array, and
  each level costs one vectorized rank call
  (:func:`repro._util.bits.rank1_many_words`) instead of two scalar
  ranks per node;
* the L_s descents of §4.2 mutate per-run state (the ``D`` visited
  table and the ``D[v]`` node marks), so descents of the *same* anchor
  stay sequential; descents of *different* anchors are independent and
  run merged, one round-robin round at a time, with per-element anchor
  provenance carried in a parallel array.

Correctness of the reordering:

* The wavelet matrix is a perfect tree — every leaf sits at level
  ``height`` — and children are emitted in ``[left, right]`` order, so
  a level-synchronous descent reports leaves in exactly the order the
  scalar DFS (push right, push left, pop) visits them.
* An L_p descent reads no mutable traversal state, so merging the
  descents of one wave cannot change any outcome; each entry's leaf
  list is what its scalar ``_expand`` would produce.
* Within one L_s descent every conceptual ``(level, prefix)`` node and
  every subject appears at most once, so level order vs DFS order
  cannot change a prune decision; across descents of one anchor the
  sequential task order preserves the scalar mutation order; across
  anchors the dictionaries are disjoint.

Counter semantics are preserved exactly — a batch of ``k`` nodes
counts as ``k`` in every bucket, so the PR-1 invariants
(``lp_nodes + lp_pruned + lp_empty == lp_descents + lp_children`` and
the L_s analogue) keep holding and the engine-level differential test
can assert batched == scalar counter for counter.  The only divergence
is on early-exited runs (result cap hit, or boolean target found): the
batched wave has already accounted the whole L_p leaf scan it was in,
where the scalar loop stops mid-scan.  Reported *results* are
identical either way, because leaves are processed in the same order
up to the stopping point.

Timeout ticks fire only at *balanced* points — end of an L_p wave, end
of an L_s descent — at a carry-accumulated rate of one
:meth:`_Budget.tick` per 256 processed nodes.  A
:class:`~repro.errors.QueryTimeoutError` therefore always surfaces
with balanced counter buckets, which the partial-stats-on-timeout
regression test relies on.

Small frontiers fall back to the scalar code path (same counters, no
numpy fixed costs): waves of fewer than ``_LP_WAVE_MIN`` entries run
the per-entry scalar expand, single-task L_s rounds run the scalar
collect, and merged rounds only vectorize their rank calls once the
level frontier reaches ``_VEC_MIN`` elements.
"""

from __future__ import annotations

import time

import numpy as np

from repro._util.bits import rank1_many_words
from repro.automata.glushkov import GlushkovAutomaton

#: Waves with fewer pending entries than this expand entry-by-entry on
#: the scalar path; the numpy level machinery costs ~tens of µs per
#: wave, which only pays off once several descents share it.
_LP_WAVE_MIN = 8

#: Level frontiers of merged L_s rounds below this size rank with the
#: inline Python fast path instead of the vectorized kernel.
_VEC_MIN = 16

#: L_s rounds merging fewer descents than this run them sequentially on
#: the scalar path instead: the per-subject work is dict-bound either
#: way, so the merge's frontier bookkeeping only pays off once enough
#: descents share each level's rank call.
_LS_ROUND_MIN = 32

#: One timeout tick per this many processed wavelet nodes (matches the
#: scalar runner's ``pops & 255`` throttle).
_TICK_GRAIN = 256


class BatchedBackwardRun:
    """Backward BFS over one prepared query, batched across anchors.

    Drop-in behavioural equivalent of the scalar ``_BackwardRun`` (same
    reported sets, same counters); additionally supports running many
    anchored subqueries in lockstep via :meth:`run_many`.  Requires
    ``prepared.batchable`` (state masks fitting an int64) and BFS
    traversal order.
    """

    def __init__(self, engine, prepared, ctx, prune: bool):
        self.engine = engine
        self.prepared = prepared
        self.budget = ctx.budget
        self.stats = ctx.stats
        self.prune = prune
        self.obs = ctx.obs
        self.forbidden = ctx.forbidden_ids
        self._tick_carry = 0
        # Per-anchor traversal state, filled by _run:
        self.visited: list[dict[int, int]] = []
        self.vnode_visited: list[dict[tuple[int, int], int]] = []
        self.reported: list[set[int]] = []
        self.base_mask = 0
        self.max_reported: int | None = None
        self.target: int | None = None
        self.total_reported = 0
        self.done = False

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def run(
        self,
        start_range: tuple[int, int],
        start_node: int | None,
        max_reported: int | None = None,
        target: int | None = None,
    ) -> set[int]:
        """Single-anchor run; same contract as ``_BackwardRun.run``."""
        return self._run(
            [start_node], [start_range], max_reported, target
        )[0]

    def run_many(
        self,
        anchors: "list[int]",
        start_ranges,
        max_reported: int | None = None,
    ) -> "list[set[int]]":
        """One anchored subquery per anchor, traversed in lockstep.

        ``start_ranges[i]`` is anchor ``i``'s object range.
        ``max_reported`` caps the *total* across all anchors (phase 2
        consumes one shared result budget).  Returns the per-anchor
        reported sets, index-aligned with ``anchors``.
        """
        return self._run(list(anchors), start_ranges, max_reported, None)

    # ------------------------------------------------------------------

    def _run(self, anchors, start_ranges, max_reported, target):
        automaton = self.prepared.automaton
        start_mask = automaton.final_mask
        k = len(anchors)
        self.reported = [set() for _ in range(k)]
        if start_mask == 0 or k == 0:
            return self.reported
        self.visited = [dict() for _ in range(k)]
        self.vnode_visited = [dict() for _ in range(k)]
        self.max_reported = max_reported
        self.target = target
        self.total_reported = 0
        self.done = False
        self.base_mask = 0
        full_mask = (1 << automaton.num_states) - 1
        forbidden = self.forbidden
        wave: list[tuple[int, int, int, int]] = []
        for ai, anchor in enumerate(anchors):
            if anchor is None:
                self.base_mask = (
                    start_mask & ~GlushkovAutomaton.INITIAL_MASK
                )
            else:
                self.visited[ai][anchor] = start_mask
            for node in forbidden:
                self.visited[ai][node] = full_mask
            b, e = start_ranges[ai]
            wave.append((ai, int(b), int(e), start_mask))

        while wave and not self.done:
            wave = self._process_wave(wave)
        for visited in self.visited:
            self.stats.visited_nodes = max(
                self.stats.visited_nodes, len(visited)
            )
        return self.reported

    # ------------------------------------------------------------------
    # One BFS generation
    # ------------------------------------------------------------------

    def _process_wave(self, wave):
        """Expand every pending entry of one generation; returns the
        next generation's entries."""
        entries = [
            entry for entry in wave if entry[1] < entry[2]
        ]
        self._next_wave: list[tuple[int, int, int, int]] = []
        if not entries:
            return self._next_wave
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        wave_span = None
        if obs.enabled:
            obs.inc("engine.steps", len(entries))
            if obs.tracing:
                for _, b, e, d in entries:
                    obs.record("step", range=(b, e), states=d)
            if spans is not None:
                wave_span = spans.start("wave")
                wave_span.set(width=len(entries))
        if len(entries) < _LP_WAVE_MIN:
            for ai, b_o, e_o, d in entries:
                self._expand_entry_scalar(ai, b_o, e_o, d)
                if self.done:
                    break
            self._tick_flush()
        else:
            tasks = self._lp_wave(entries)
            self._tick_flush()
            if not self.done:
                self._run_rounds(tasks)
        if wave_span is not None:
            wave_span.set(next_width=len(self._next_wave))
            spans.end(wave_span)
        return self._next_wave

    def _run_rounds(self, tasks):
        """Drain per-anchor L_s task queues, one round-robin round at a
        time; a round merges at most one task per anchor."""
        obs = self.obs
        spans = obs.spans if obs.enabled else None
        pending = [(ai, lst) for ai, lst in tasks.items() if lst]
        while pending and not self.done:
            round_tasks = []
            still = []
            for ai, lst in pending:
                round_tasks.append((ai,) + lst.pop(0))
                if lst:
                    still.append((ai, lst))
            pending = still
            round_span = None
            if spans is not None:
                round_span = spans.start("ls_round")
                round_span.set(width=len(round_tasks))
            if len(round_tasks) < _LS_ROUND_MIN:
                for ai, b_s, e_s, d_next in round_tasks:
                    self._collect_scalar(ai, b_s, e_s, d_next)
                    if self.done:
                        break
                self._tick_flush()
            else:
                self._collect_round(round_tasks)
                self._tick_flush()
            if round_span is not None:
                spans.end(round_span)

    def _tick_flush(self):
        """Fire the accumulated timeout ticks at a balanced point."""
        tick = self.budget.tick
        while self._tick_carry >= _TICK_GRAIN:
            self._tick_carry -= _TICK_GRAIN
            tick()

    # ------------------------------------------------------------------
    # Merged L_p wave (§4.1, frontier-at-once)
    # ------------------------------------------------------------------

    def _lp_wave(self, entries):
        """Merged L_p descent of all wave entries.

        Returns ``{anchor_index: [(b_s, e_s, d_next), ...]}`` — the
        accepted predicate leaves mapped through the backward step, in
        scalar order (entry-major, predicate ascending).
        """
        stats = self.stats
        prepared = self.prepared
        prune = self.prune
        mask_levels = prepared.mask_levels
        b_masks = prepared.b_masks
        step_prefiltered = prepared.reverse.step_prefiltered
        ring = self.engine.ring
        c_p = ring.C_p.fast_list() or ring.C_p
        levels, zeros, height, _, _, _ = self.engine.lp_batch
        # Python-int bottom offsets: the leaf hand-off feeds the scalar
        # L_s walkers, which must not receive numpy int64 values (their
        # word masks are Python ints wider than a C long).
        bottom_start = self.engine.lp_data[5]
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        spans = obs.spans if timed else None
        now = time.monotonic
        if timed:
            t_start = now()

        k0 = len(entries)
        lp_span = None
        if spans is not None:
            lp_span = spans.start("lp_wave")
            lp_span.set(width=k0)
        stats.lp_descents += k0
        d_list = [entry[3] for entry in entries]
        eidx = np.arange(k0, dtype=np.int64)
        dv = np.fromiter(d_list, np.int64, k0)
        prefix = np.zeros(k0, dtype=np.int64)
        b = np.fromiter((entry[1] for entry in entries), np.int64, k0)
        e = np.fromiter((entry[2] for entry in entries), np.int64, k0)

        examined = 0
        lp_empty = lp_pruned = lp_nodes = lp_children = 0
        wavelet_nodes = 0
        for level in range(height):
            k = len(b)
            if k == 0:
                break
            examined += k
            nonempty = e > b
            if not nonempty.all():
                lp_empty += k - int(nonempty.sum())
                eidx, dv, prefix, b, e = (
                    eidx[nonempty], dv[nonempty], prefix[nonempty],
                    b[nonempty], e[nonempty],
                )
                k = len(b)
                if k == 0:
                    break
            wavelet_nodes += k
            if prune:
                keep = (mask_levels[level][prefix] & dv) != 0
                if not keep.all():
                    lp_pruned += k - int(keep.sum())
                    eidx, dv, prefix, b, e = (
                        eidx[keep], dv[keep], prefix[keep],
                        b[keep], e[keep],
                    )
                    k = len(b)
                    if k == 0:
                        break
            lp_nodes += k
            lp_children += 2 * k
            words, cum64, n_bits = levels[level]
            ranks = rank1_many_words(
                words, cum64, n_bits, np.concatenate((b, e))
            )
            r1b, r1e = ranks[:k], ranks[k:]
            z = zeros[level]
            eidx = np.repeat(eidx, 2)
            dv = np.repeat(dv, 2)
            next_prefix = np.empty(2 * k, dtype=np.int64)
            next_b = np.empty(2 * k, dtype=np.int64)
            next_e = np.empty(2 * k, dtype=np.int64)
            next_prefix[0::2] = prefix << 1
            next_prefix[1::2] = (prefix << 1) | 1
            next_b[0::2] = b - r1b
            next_b[1::2] = z + r1b
            next_e[0::2] = e - r1e
            next_e[1::2] = z + r1e
            prefix, b, e = next_prefix, next_b, next_e

        # Leaf level: the same empty/prune bookkeeping, then the §4.2
        # hand-off per surviving (entry, predicate) leaf in order.
        tasks: dict[int, list] = {}
        k = len(b)
        if k:
            examined += k
            nonempty = e > b
            if not nonempty.all():
                lp_empty += k - int(nonempty.sum())
                eidx, dv, prefix, b, e = (
                    eidx[nonempty], dv[nonempty], prefix[nonempty],
                    b[nonempty], e[nonempty],
                )
                k = len(b)
        if k:
            wavelet_nodes += k
            if prune:
                keep = (mask_levels[height][prefix] & dv) != 0
                if not keep.all():
                    lp_pruned += k - int(keep.sum())
                    eidx, prefix, b, e = (
                        eidx[keep], prefix[keep], b[keep], e[keep],
                    )
                    k = len(b)
            lp_nodes += k
        stats.lp_empty += lp_empty
        stats.lp_pruned += lp_pruned
        stats.lp_nodes += lp_nodes
        stats.lp_children += lp_children
        stats.wavelet_nodes += wavelet_nodes
        stats.storage_ops += lp_children
        self._tick_carry += examined
        if k:
            ring_span = None
            if spans is not None:
                ring_span = spans.start("ring.steps")
                ring_span.set(leaves=k)
            product_edges = 0
            eidx_l = eidx.tolist()
            prefix_l = prefix.tolist()
            b_l = b.tolist()
            e_l = e.tolist()
            for i in range(k):
                ei = eidx_l[i]
                pid = prefix_l[i]
                filtered = d_list[ei] & b_masks.get(pid, 0)
                if filtered == 0:
                    continue  # reachable only when pruning is disabled
                start = bottom_start[pid]
                base = c_p[pid]
                b_s = base + (b_l[i] - start)
                e_s = base + (e_l[i] - start)
                product_edges += 1
                d_next = step_prefiltered(filtered)
                if d_next == 0:
                    continue
                if tracing:
                    obs.record(
                        "backward_step", pid=pid, range=(b_s, e_s),
                        states=d_next,
                    )
                tasks.setdefault(entries[ei][0], []).append(
                    (b_s, e_s, d_next)
                )
            stats.product_edges += product_edges
            stats.backward_steps += product_edges
            if ring_span is not None:
                ring_span.set(steps=product_edges)
                spans.end(ring_span)
        if lp_span is not None:
            spans.end(lp_span)
        if timed:
            obs.add_phase("predicates_from_objects", now() - t_start)
        return tasks

    # ------------------------------------------------------------------
    # Merged L_s round (§4.2, one task per anchor)
    # ------------------------------------------------------------------

    def _collect_round(self, round_tasks):
        """Merged level-synchronous L_s descent of one task per anchor.

        The frontier is kept as parallel Python lists (the per-node
        work is dict-heavy and must run per element anyway); only the
        rank mapping to the next level is vectorized, and only once the
        frontier is wide enough to amortise the kernel call.
        """
        stats = self.stats
        prune = self.prune
        base_mask = self.base_mask
        visited_by_anchor = self.visited
        vnodes_by_anchor = self.vnode_visited
        reported_by_anchor = self.reported
        ring = self.engine.ring
        c_o = ring.C_o.fast_list() or ring.C_o
        levels_py, zeros, height, sigma, class_cum, _ = self.engine.ls_data
        levels_np = self.engine.ls_batch[0]
        initial_mask = GlushkovAutomaton.INITIAL_MASK
        max_reported = self.max_reported
        target = self.target
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        now = time.monotonic
        if timed:
            t_start = now()

        n_tasks = len(round_tasks)
        stats.ls_descents += n_tasks
        # Per-task context: (visited, vnodes, d_next, reported, ai).
        ctx = [
            (
                visited_by_anchor[ai],
                vnodes_by_anchor[ai],
                d_next,
                reported_by_anchor[ai],
                ai,
            )
            for ai, _, _, d_next in round_tasks
        ]
        tid = list(range(n_tasks))
        prefix = [0] * n_tasks
        bs = [task[1] for task in round_tasks]
        es = [task[2] for task in round_tasks]

        examined = 0
        ls_empty = ls_pruned = ls_nodes = ls_children = 0
        wavelet_nodes = 0
        for level in range(height):
            k = len(tid)
            if k == 0:
                break
            examined += k
            kt: list[int] = []
            kp: list[int] = []
            kb: list[int] = []
            ke: list[int] = []
            shift = height - level
            for i in range(k):
                b = bs[i]
                e = es[i]
                if b >= e:
                    ls_empty += 1
                    continue
                wavelet_nodes += 1
                t = tid[i]
                p = prefix[i]
                if prune:
                    key = (level, p)
                    vnodes = ctx[t][1]
                    d_next = ctx[t][2]
                    seen = vnodes.get(key, base_mask)
                    if d_next | seen == seen:
                        ls_pruned += 1
                        continue
                    lo = p << shift
                    hi = lo + (1 << shift)
                    if hi > sigma:
                        hi = sigma
                    if class_cum[hi] - class_cum[lo] == e - b:
                        vnodes[key] = seen | d_next
                ls_nodes += 1
                ls_children += 2
                kt.append(t)
                kp.append(p)
                kb.append(b)
                ke.append(e)
            k = len(kt)
            if k == 0:
                tid = []
                break
            z = zeros[level]
            if k >= _VEC_MIN:
                words, cum64, n_bits = levels_np[level]
                ranks = rank1_many_words(
                    words, cum64, n_bits,
                    np.fromiter(kb + ke, np.int64, 2 * k),
                )
                r1b = ranks[:k].tolist()
                r1e = ranks[k:].tolist()
            else:
                words, cum, n_bits = levels_py[level]
                r1b = []
                r1e = []
                for pos in kb:
                    if pos <= 0:
                        r1b.append(0)
                    elif pos >= n_bits:
                        r1b.append(cum[-1])
                    else:
                        w = pos >> 6
                        off = pos & 63
                        r = cum[w]
                        if off:
                            r += (words[w] & ((1 << off) - 1)).bit_count()
                        r1b.append(r)
                for pos in ke:
                    if pos >= n_bits:
                        r1e.append(cum[-1])
                    else:
                        w = pos >> 6
                        off = pos & 63
                        r = cum[w]
                        if off:
                            r += (words[w] & ((1 << off) - 1)).bit_count()
                        r1e.append(r)
            tid = [t for t in kt for _ in (0, 1)]
            prefix = [q for p in kp for q in (p << 1, (p << 1) | 1)]
            bs = [v for pb, rb in zip(kb, r1b) for v in (pb - rb, z + rb)]
            es = [v for pe, re in zip(ke, r1e) for v in (pe - re, z + re)]

        # Leaf level: visit subjects per element, exactly the scalar
        # leaf logic against the owning anchor's state.
        product_nodes = object_ranges = 0
        next_wave = self._next_wave
        k = len(tid)
        examined += k
        for i in range(k):
            b = bs[i]
            e = es[i]
            if b >= e:
                ls_empty += 1
                continue
            wavelet_nodes += 1
            t = tid[i]
            visited, _, d_next, reported, ai = ctx[t]
            subject = prefix[i]
            seen = visited.get(subject, base_mask)
            if d_next | seen == seen:
                ls_pruned += 1
                continue
            ls_nodes += 1
            d_new = d_next & ~seen
            visited[subject] = seen | d_next
            product_nodes += 1
            if d_new & initial_mask:
                reported.add(subject)
                self.total_reported += 1
                if tracing:
                    obs.record("emit", subject=subject, states=d_new)
                if target is not None and subject == target:
                    self.done = True
                    break
                if (
                    max_reported is not None
                    and self.total_reported >= max_reported
                ):
                    stats.truncated = True
                    self.done = True
                    break
            object_ranges += 1
            ob = c_o[subject]
            oe = c_o[subject + 1]
            if ob < oe:
                next_wave.append((ai, ob, oe, d_new))
        stats.ls_empty += ls_empty
        stats.ls_pruned += ls_pruned
        stats.ls_nodes += ls_nodes
        stats.ls_children += ls_children
        stats.wavelet_nodes += wavelet_nodes
        stats.storage_ops += ls_children
        stats.product_nodes += product_nodes
        stats.object_ranges += object_ranges
        self._tick_carry += examined
        if timed:
            obs.add_phase("subjects_from_predicates", now() - t_start)

    # ------------------------------------------------------------------
    # Scalar fallbacks (reference semantics, small frontiers)
    # ------------------------------------------------------------------
    # These mirror ``_BackwardRun._expand`` / ``_collect_subjects``
    # statement for statement (bar the per-anchor state and the
    # carry-based ticking); any change there must be replayed here.

    def _expand_entry_scalar(self, ai, b_o, e_o, d):
        """Scalar L_p descent of one entry, collects inline at leaves."""
        ring = self.engine.ring
        prepared = self.prepared
        bv_masks = prepared.bv_masks
        b_masks = prepared.b_masks
        step_prefiltered = prepared.reverse.step_prefiltered
        stats = self.stats
        prune = self.prune
        c_p = ring.C_p.fast_list() or ring.C_p
        levels, zeros, height, _, _, bottom_start = self.engine.lp_data
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        now = time.monotonic
        if timed:
            t_start = now()
            t_sub = 0.0
        stats.lp_descents += 1

        stack = [(0, 0, b_o, e_o)]
        pops = 0
        while stack:
            pops += 1
            level, prefix, b, e = stack.pop()
            if b >= e:
                stats.lp_empty += 1
                continue
            stats.wavelet_nodes += 1
            if prune:
                filtered = d & bv_masks.get((level, prefix), 0)
                if filtered == 0:
                    stats.lp_pruned += 1
                    continue
            stats.lp_nodes += 1
            if level == height:
                pid = prefix
                filtered = d & b_masks.get(pid, 0)
                if filtered == 0:
                    continue  # reachable only when pruning is disabled
                start = bottom_start[pid]
                base = c_p[pid]
                b_s, e_s = base + (b - start), base + (e - start)
                if b_s >= e_s:
                    continue
                stats.product_edges += 1
                stats.backward_steps += 1
                d_next = step_prefiltered(filtered)
                if d_next == 0:
                    continue
                if tracing:
                    obs.record(
                        "backward_step", pid=pid, range=(b_s, e_s),
                        states=d_next,
                    )
                if timed:
                    t0 = now()
                    self._collect_scalar(ai, b_s, e_s, d_next)
                    t_sub += now() - t0
                else:
                    self._collect_scalar(ai, b_s, e_s, d_next)
                if self.done:
                    break
            else:
                stats.lp_children += 2
                stats.storage_ops += 2
                words, cum, n_bits = levels[level]
                # rank1(b), rank1(e) inlined (BitVector fast path).
                if b <= 0:
                    r1b = 0
                elif b >= n_bits:
                    r1b = cum[-1]
                else:
                    w = b >> 6
                    off = b & 63
                    r1b = cum[w]
                    if off:
                        r1b += (words[w] & ((1 << off) - 1)).bit_count()
                if e >= n_bits:
                    r1e = cum[-1]
                else:
                    w = e >> 6
                    off = e & 63
                    r1e = cum[w]
                    if off:
                        r1e += (words[w] & ((1 << off) - 1)).bit_count()
                z = zeros[level]
                next_level = level + 1
                stack.append(
                    (next_level, (prefix << 1) | 1, z + r1b, z + r1e)
                )
                stack.append(
                    (next_level, prefix << 1, b - r1b, e - r1e)
                )
        self._tick_carry += pops
        if timed:
            obs.add_phase("predicates_from_objects", now() - t_start - t_sub)

    def _collect_scalar(self, ai, b_s, e_s, d_next):
        """Scalar L_s descent of one task (§4.2 reference walk)."""
        ring = self.engine.ring
        stats = self.stats
        prune = self.prune
        visited = self.visited[ai]
        vnode_visited = self.vnode_visited[ai]
        reported = self.reported[ai]
        base_mask = self.base_mask
        c_o = ring.C_o.fast_list() or ring.C_o
        levels, zeros, height, sigma, class_cum, _ = self.engine.ls_data
        initial_mask = GlushkovAutomaton.INITIAL_MASK
        max_reported = self.max_reported
        target = self.target
        next_wave = self._next_wave
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        now = time.monotonic
        if timed:
            t_start = now()
            t_obj = 0.0
        stats.ls_descents += 1

        stack = [(0, 0, b_s, e_s)]
        pops = 0
        while stack:
            pops += 1
            level, prefix, b, e = stack.pop()
            if b >= e:
                stats.ls_empty += 1
                continue
            stats.wavelet_nodes += 1
            if level == height:
                subject = prefix
                seen = visited.get(subject, base_mask)
                if d_next | seen == seen:
                    stats.ls_pruned += 1
                    continue
                stats.ls_nodes += 1
                d_new = d_next & ~seen
                visited[subject] = seen | d_next
                stats.product_nodes += 1
                if d_new & initial_mask:
                    reported.add(subject)
                    self.total_reported += 1
                    if tracing:
                        obs.record("emit", subject=subject, states=d_new)
                    if target is not None and subject == target:
                        self.done = True
                        break
                    if (
                        max_reported is not None
                        and self.total_reported >= max_reported
                    ):
                        stats.truncated = True
                        self.done = True
                        break
                if timed:
                    t0 = now()
                stats.object_ranges += 1
                ob = c_o[subject]
                oe = c_o[subject + 1]
                if ob < oe:
                    next_wave.append((ai, ob, oe, d_new))
                if timed:
                    t_obj += now() - t0
                continue
            if prune:
                key = (level, prefix)
                seen = vnode_visited.get(key, base_mask)
                if d_next | seen == seen:
                    stats.ls_pruned += 1
                    continue
                # Record the visit only when the range *covers* the node
                # (see the scalar reference and DESIGN.md "Deviations").
                shift = height - level
                lo = prefix << shift
                hi = lo + (1 << shift)
                if hi > sigma:
                    hi = sigma
                if class_cum[hi] - class_cum[lo] == e - b:
                    vnode_visited[key] = seen | d_next
            stats.ls_nodes += 1
            stats.ls_children += 2
            stats.storage_ops += 2
            words, cum, n_bits = levels[level]
            if b <= 0:
                r1b = 0
            elif b >= n_bits:
                r1b = cum[-1]
            else:
                w = b >> 6
                off = b & 63
                r1b = cum[w]
                if off:
                    r1b += (words[w] & ((1 << off) - 1)).bit_count()
            if e >= n_bits:
                r1e = cum[-1]
            else:
                w = e >> 6
                off = e & 63
                r1e = cum[w]
                if off:
                    r1e += (words[w] & ((1 << off) - 1)).bit_count()
            z = zeros[level]
            next_level = level + 1
            stack.append((next_level, (prefix << 1) | 1, z + r1b, z + r1e))
            stack.append((next_level, prefix << 1, b - r1b, e - r1e))
        self._tick_carry += pops
        if timed:
            obs.add_phase("subjects_from_predicates", now() - t_start - t_obj)
            obs.add_phase("subjects_to_objects", t_obj)
