"""Regular path queries as values.

An RPQ is a triple ``(s, E, o)`` where ``s`` and ``o`` are constants
(node labels) or variables and ``E`` is a path regular expression
(§3.1).  The textual form accepted by :meth:`RPQ.parse` is::

    (?x, l5+/bus, Baq)      # variable-to-constant
    (Baq, ^bus/l5*, ?y)     # constant-to-variable
    (?x, p1/p2*, ?y)        # variable-to-variable
    (SA, l2|l5, LH)         # boolean (both ends fixed)

Variables start with ``?``; everything else is a node constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata.parser import parse_regex
from repro.automata.syntax import RegexNode
from repro.errors import RegexSyntaxError


@dataclass(frozen=True)
class Variable:
    """A query variable, e.g. ``?x``."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


Endpoint = Variable | str


def _parse_endpoint(token: str) -> Endpoint:
    token = token.strip()
    if not token:
        raise RegexSyntaxError("empty query endpoint")
    if token.startswith("?"):
        if len(token) == 1:
            raise RegexSyntaxError("variable needs a name after '?'")
        return Variable(token[1:])
    if token.startswith("<") and token.endswith(">"):
        return token[1:-1]
    return token


@dataclass(frozen=True)
class RPQ:
    """A regular path query ``(subject, expr, object)``."""

    subject: Endpoint
    expr: RegexNode
    object: Endpoint

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, subject: str, expr: RegexNode | str, object: str) -> "RPQ":
        """Build from endpoint tokens and an expression (AST or text)."""
        if isinstance(expr, str):
            expr = parse_regex(expr)
        return cls(_parse_endpoint(subject), expr, _parse_endpoint(object))

    @classmethod
    def parse(cls, text: str) -> "RPQ":
        """Parse the textual ``(s, E, o)`` form."""
        stripped = text.strip()
        if stripped.startswith("(") and stripped.endswith(")"):
            stripped = stripped[1:-1]
        parts = stripped.split(",")
        if len(parts) != 3:
            raise RegexSyntaxError(
                f"query must have three comma-separated parts: {text!r}"
            )
        return cls.of(parts[0].strip(), parts[1].strip(), parts[2].strip())

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def subject_is_var(self) -> bool:
        """True when the subject endpoint is a variable."""
        return isinstance(self.subject, Variable)

    @property
    def object_is_var(self) -> bool:
        """True when the object endpoint is a variable."""
        return isinstance(self.object, Variable)

    def shape(self) -> str:
        """One of ``"vv"``, ``"vc"``, ``"cv"``, ``"cc"``.

        First letter describes the subject, second the object; the
        paper's "c-to-v" bucket is our ``cv`` and ``vc`` shapes (one
        fixed end) and "v-to-v" is ``vv``.
        """
        return ("v" if self.subject_is_var else "c") + (
            "v" if self.object_is_var else "c"
        )

    def reversed(self) -> "RPQ":
        """The equivalent query ``(o, ^E, s)`` (§4.4)."""
        return RPQ(self.object, self.expr.reverse(), self.subject)

    def __str__(self) -> str:
        return f"({self.subject}, {self.expr}, {self.object})"


def as_query(query: "RPQ | str") -> RPQ:
    """Coerce a query argument: strings are parsed, RPQs pass through."""
    if isinstance(query, RPQ):
        return query
    return RPQ.parse(query)
