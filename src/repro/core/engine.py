"""The Ring-RPQ engine: §4 of the paper.

Evaluation walks the product graph *backwards* — from objects toward
subjects — without ever materialising it.  One step from the current
object range with active NFA states ``D`` has three parts:

1. **Predicates from objects** (§4.1): descend the wavelet matrix of
   ``L_p`` restricted to the object's range, pruning every node ``v``
   with ``D & B[v] == 0``, where ``B[v]`` is the OR of the automaton's
   ``B`` masks below ``v``.  Thanks to Glushkov's Fact 1 the check is a
   single AND; each surviving leaf is a predicate ``p`` that both
   reaches the current objects and leads to an active state.
2. **Subjects from predicates** (§4.2): a backward-search step
   (Eqs. 4–5) maps the leaf to an ``L_s`` range; descend the wavelet
   matrix of ``L_s``, pruning nodes whose subtree has already been
   visited with all states of ``D' = T'[D & B[p]]`` (the ``D[v]``
   masks); each surviving leaf is a *new* (node, state-set) visit.
3. **Subjects back to objects** (§4.3): ``C_o`` turns the subject into
   its ``L_p`` object range and the step repeats.

A node is reported whenever the initial NFA state becomes active.
Variable-to-variable queries run a first pass from the full ``L_p``
range to find the bindings of one side (chosen by the §5 cardinality
heuristic), then one anchored subquery per binding; §5's fast paths
handle length-1/2 and disjunctive patterns with pure backward search.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from collections.abc import Iterable

import numpy as np

from repro.automata.bitparallel import ReverseSimulator
from repro.automata.glushkov import (
    GlushkovAutomaton,
    build_glushkov,
    resolve_atom_to_predicates,
)
from repro.automata.syntax import Concat, RegexNode, Symbol, Union
from repro.core.batchrun import BatchedBackwardRun
from repro.core.planner import choose_anchor_side
from repro.core.query import RPQ, as_query
from repro.core.result import QueryResult, QueryStats
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.obs.metrics import NULL_METRICS

#: How many :meth:`_Budget.tick` calls between wall-clock checks.  The
#: hot traversal loops already throttle their tick calls to one per 256
#: stack pops, so the effective check window is ``256 * _TICK_EVERY``
#: inner operations — keep this small or a mid-sized query can finish
#: (or badly overrun its budget) without ever consulting the clock.
_TICK_EVERY = 4

#: Phase-2 anchored subqueries merge into batched runs of this many
#: anchors.  Wide chunks are what make the shared L_p waves wide (the
#: dominant saving), so this errs large; the chunk still bounds how
#: stale the shared result-cap snapshot can get between checks.
_ANCHOR_BATCH = 1024


class _Budget:
    """Shared wall-clock / result-count budget for one evaluation.

    ``cancel`` is an optional cooperative cancellation token — anything
    with an ``is_set()`` method (a :class:`threading.Event` works).
    When set, the next consulted tick raises
    :class:`~repro.errors.QueryCancelledError`, so a running query
    stops at the same safe points where a timeout would: between
    traversal ticks, with every partial result well-formed.
    """

    __slots__ = ("cancel", "deadline", "start", "ticks")

    def __init__(self, timeout: float | None, cancel=None):
        self.start = time.monotonic()
        self.deadline = None if timeout is None else self.start + timeout
        self.cancel = cancel
        self.ticks = 0

    def tick(self) -> None:
        """Cheap periodic timeout/cancellation check; raises on expiry."""
        self.ticks += 1
        if self.ticks % _TICK_EVERY:
            return
        if self.cancel is not None and self.cancel.is_set():
            raise QueryCancelledError(time.monotonic() - self.start)
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                time.monotonic() - self.start,
                self.deadline - self.start,
            )

    def elapsed(self) -> float:
        """Seconds since the evaluation started."""
        return time.monotonic() - self.start


class _EvalContext:
    """Everything mutable that belongs to *one* ``evaluate`` call.

    The engine itself holds only immutable configuration plus the
    (locked) cross-query prepare cache, so any number of threads can
    evaluate on the same engine over the same shared ring: budget,
    stats, the metrics registry, the forbidden-node set and the
    per-call prepare memo all travel in this context instead of being
    swapped onto the engine (the pre-serving design mutated
    ``engine.metrics`` / ``engine._forbidden_ids`` / ``ring.obs`` for
    the span of the call, which cross-polluted interleaved queries).
    """

    __slots__ = ("budget", "stats", "obs", "forbidden_ids", "memo")

    def __init__(self, budget: _Budget, stats: QueryStats, obs,
                 forbidden_ids: frozenset = frozenset()):
        self.budget = budget
        self.stats = stats
        self.obs = obs
        self.forbidden_ids = forbidden_ids
        self.memo: dict[RegexNode, "_Prepared"] = {}


class _Prepared:
    """An expression compiled against a specific index.

    Holds the Glushkov automaton, the lazily-populated ``B`` masks over
    predicate ids, the per-wavelet-node aggregates ``B[v]`` for the
    ``L_p`` matrix, and the reverse bit-parallel simulator.
    """

    __slots__ = (
        "automaton", "b_masks", "bv_masks", "reverse", "batchable",
        "mask_levels",
    )

    def __init__(self, expr: RegexNode, index) -> None:
        self.automaton = build_glushkov(expr)
        dictionary = index.dictionary
        self.b_masks = self.automaton.b_masks(
            lambda atom: resolve_atom_to_predicates(atom, dictionary)
        )
        height = index.ring.L_p.height
        bv: dict[tuple[int, int], int] = {}
        for pid, mask in self.b_masks.items():
            for level in range(height + 1):
                key = (level, pid >> (height - level))
                bv[key] = bv.get(key, 0) | mask
        self.bv_masks = bv
        self.reverse = ReverseSimulator(self.automaton, self.b_masks)
        # The batched traversal keeps NFA state sets in int64 arrays, so
        # it only applies while every mask fits a signed 64-bit word;
        # larger automata fall back to the scalar runner (Python ints).
        self.batchable = self.automaton.num_states <= 63
        if self.batchable:
            # bv_masks as one dense int64 array per level, so the §4.1
            # prune becomes ``mask_levels[level][prefix] & D`` over the
            # whole frontier.  Level ``height`` rows equal ``b_masks``.
            mask_levels = []
            for level in range(height + 1):
                row = np.zeros(1 << level, dtype=np.int64)
                mask_levels.append(row)
            for (level, prefix), mask in bv.items():
                mask_levels[level][prefix] = mask
            self.mask_levels = mask_levels
        else:
            self.mask_levels = None


class _BackwardRun:
    """One backward product-graph traversal (BFS) on a prepared query."""

    def __init__(
        self,
        engine: "RingRPQEngine",
        prepared: _Prepared,
        ctx: _EvalContext,
        prune: bool,
    ):
        self.engine = engine
        self.prepared = prepared
        self.budget = ctx.budget
        self.stats = ctx.stats
        self.prune = prune
        self.obs = ctx.obs
        self.forbidden = ctx.forbidden_ids
        self.visited: dict[int, int] = {}
        self.vnode_visited: dict[tuple[int, int], int] = {}
        self.base_mask = 0

    def run(
        self,
        start_range: tuple[int, int],
        start_node: int | None,
        max_reported: int | None = None,
        target: int | None = None,
    ) -> set[int]:
        """Traverse and return the reported node ids.

        ``start_node=None`` means the full-range start of a v-to-v
        first pass: every node is then treated as already visited with
        the final states (minus the initial state, which must stay
        reportable).  ``target`` enables the early exit of fixed-fixed
        queries; ``max_reported`` implements the result cap.
        """
        automaton = self.prepared.automaton
        start_mask = automaton.final_mask
        reported: set[int] = set()
        if start_mask == 0:
            return reported

        if start_node is None:
            self.base_mask = start_mask & ~GlushkovAutomaton.INITIAL_MASK
        else:
            self.visited[start_node] = start_mask
        full_mask = (1 << automaton.num_states) - 1
        for node in self.forbidden:
            self.visited[node] = full_mask

        queue: deque[tuple[tuple[int, int], int]] = deque()
        queue.append((start_range, start_mask))
        pop = (queue.popleft if self.engine.traversal == "bfs"
               else queue.pop)
        obs = self.obs
        enabled = obs.enabled
        tracing = obs.tracing
        spans = obs.spans if enabled else None

        while queue:
            (b_o, e_o), d = pop()
            if b_o >= e_o:
                continue
            step_span = None
            if enabled:
                obs.inc("engine.steps")
                if tracing:
                    obs.record("step", range=(b_o, e_o), states=d)
                if spans is not None:
                    step_span = spans.start("step")
            done = self._expand(
                b_o, e_o, d, queue, reported, max_reported, target
            )
            if step_span is not None:
                step_span.set(range=(b_o, e_o))
                spans.end(step_span)
            if done:
                break
        self.stats.visited_nodes = max(
            self.stats.visited_nodes, len(self.visited)
        )
        return reported

    # ------------------------------------------------------------------

    def _expand(
        self,
        b_o: int,
        e_o: int,
        d: int,
        queue: deque,
        reported: set[int],
        max_reported: int | None,
        target: int | None,
    ) -> bool:
        """Parts 1–3 of one NFA step; True when the run should stop.

        The ``L_p`` descent below is the node-API walk of §4.1 unrolled
        onto :meth:`WaveletMatrix.traversal_data` arrays: identical
        traversal order and pruning decisions, but without per-node
        object construction (see the accessor's docstring).
        """
        ring = self.engine.ring
        prepared = self.prepared
        bv_masks = prepared.bv_masks
        b_masks = prepared.b_masks
        step_prefiltered = prepared.reverse.step_prefiltered
        stats = self.stats
        tick = self.budget.tick
        prune = self.prune
        c_p = ring.C_p.fast_list() or ring.C_p
        levels, zeros, height, _, _, bottom_start = self.engine.lp_data
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        now = time.monotonic
        if timed:
            t_start = now()
            t_sub = 0.0
        stats.lp_descents += 1

        stack = [(0, 0, b_o, e_o)]
        pops = 0
        done = False
        while stack:
            pops += 1
            if not pops & 255:
                tick()
            level, prefix, b, e = stack.pop()
            if b >= e:
                stats.lp_empty += 1
                continue
            stats.wavelet_nodes += 1
            if prune:
                filtered = d & bv_masks.get((level, prefix), 0)
                if filtered == 0:
                    stats.lp_pruned += 1
                    continue
            stats.lp_nodes += 1
            if level == height:
                pid = prefix
                filtered = d & b_masks.get(pid, 0)
                if filtered == 0:
                    continue  # reachable only when pruning is disabled
                start = bottom_start[pid]
                base = c_p[pid]
                b_s, e_s = base + (b - start), base + (e - start)
                if b_s >= e_s:
                    continue
                stats.product_edges += 1
                stats.backward_steps += 1
                d_next = step_prefiltered(filtered)
                if d_next == 0:
                    continue
                if tracing:
                    obs.record(
                        "backward_step", pid=pid, range=(b_s, e_s),
                        states=d_next,
                    )
                if timed:
                    t0 = now()
                    done = self._collect_subjects(
                        b_s, e_s, d_next, queue, reported, max_reported,
                        target,
                    )
                    t_sub += now() - t0
                else:
                    done = self._collect_subjects(
                        b_s, e_s, d_next, queue, reported, max_reported,
                        target,
                    )
                if done:
                    break
            else:
                stats.lp_children += 2
                stats.storage_ops += 2
                words, cum, n_bits = levels[level]
                # rank1(b), rank1(e) inlined (BitVector fast path).
                if b <= 0:
                    r1b = 0
                elif b >= n_bits:
                    r1b = cum[-1]
                else:
                    w = b >> 6
                    off = b & 63
                    r1b = cum[w]
                    if off:
                        r1b += (words[w] & ((1 << off) - 1)).bit_count()
                if e >= n_bits:
                    r1e = cum[-1]
                else:
                    w = e >> 6
                    off = e & 63
                    r1e = cum[w]
                    if off:
                        r1e += (words[w] & ((1 << off) - 1)).bit_count()
                z = zeros[level]
                next_level = level + 1
                stack.append(
                    (next_level, (prefix << 1) | 1, z + r1b, z + r1e)
                )
                stack.append(
                    (next_level, prefix << 1, b - r1b, e - r1e)
                )
        if timed:
            obs.add_phase("predicates_from_objects", now() - t_start - t_sub)
        return done

    def _collect_subjects(
        self,
        b_s: int,
        e_s: int,
        d_next: int,
        queue: deque,
        reported: set[int],
        max_reported: int | None,
        target: int | None,
    ) -> bool:
        """Part 2: distinct unvisited subjects in ``L_s[b_s, e_s)``."""
        ring = self.engine.ring
        stats = self.stats
        tick = self.budget.tick
        prune = self.prune
        visited = self.visited
        vnode_visited = self.vnode_visited
        base_mask = self.base_mask
        c_o = ring.C_o.fast_list() or ring.C_o
        levels, zeros, height, sigma, class_cum, _ = self.engine.ls_data
        initial_mask = GlushkovAutomaton.INITIAL_MASK
        obs = self.obs
        timed = obs.enabled
        tracing = obs.tracing
        now = time.monotonic
        if timed:
            t_start = now()
            t_obj = 0.0
        stats.ls_descents += 1

        stack = [(0, 0, b_s, e_s)]
        pops = 0
        done = False
        while stack:
            pops += 1
            if not pops & 255:
                tick()
            level, prefix, b, e = stack.pop()
            if b >= e:
                stats.ls_empty += 1
                continue
            stats.wavelet_nodes += 1
            if level == height:
                subject = prefix
                seen = visited.get(subject, base_mask)
                if d_next | seen == seen:
                    stats.ls_pruned += 1
                    continue
                stats.ls_nodes += 1
                d_new = d_next & ~seen
                visited[subject] = seen | d_next
                stats.product_nodes += 1
                if d_new & initial_mask:
                    reported.add(subject)
                    if tracing:
                        obs.record("emit", subject=subject, states=d_new)
                    if target is not None and subject == target:
                        done = True
                        break
                    if (
                        max_reported is not None
                        and len(reported) >= max_reported
                    ):
                        stats.truncated = True
                        done = True
                        break
                if timed:
                    t0 = now()
                stats.object_ranges += 1
                ob = c_o[subject]
                oe = c_o[subject + 1]
                if ob < oe:
                    queue.append(((ob, oe), d_new))
                if timed:
                    t_obj += now() - t0
                continue
            if prune:
                key = (level, prefix)
                seen = vnode_visited.get(key, base_mask)
                if d_next | seen == seen:
                    stats.ls_pruned += 1
                    continue
                # Record the visit only when the range *covers* the node
                # (every occurrence below it is inside the range) — the
                # paper's unconditional update is unsound for partial
                # ranges; see DESIGN.md "Deviations".
                shift = height - level
                lo = prefix << shift
                hi = lo + (1 << shift)
                if hi > sigma:
                    hi = sigma
                if class_cum[hi] - class_cum[lo] == e - b:
                    vnode_visited[key] = seen | d_next
            stats.ls_nodes += 1
            stats.ls_children += 2
            stats.storage_ops += 2
            words, cum, n_bits = levels[level]
            if b <= 0:
                r1b = 0
            elif b >= n_bits:
                r1b = cum[-1]
            else:
                w = b >> 6
                off = b & 63
                r1b = cum[w]
                if off:
                    r1b += (words[w] & ((1 << off) - 1)).bit_count()
            if e >= n_bits:
                r1e = cum[-1]
            else:
                w = e >> 6
                off = e & 63
                r1e = cum[w]
                if off:
                    r1e += (words[w] & ((1 << off) - 1)).bit_count()
            z = zeros[level]
            next_level = level + 1
            stack.append((next_level, (prefix << 1) | 1, z + r1b, z + r1e))
            stack.append((next_level, prefix << 1, b - r1b, e - r1e))
        if timed:
            obs.add_phase("subjects_from_predicates", now() - t_start - t_obj)
            obs.add_phase("subjects_to_objects", t_obj)
        return done


class RingRPQEngine:
    """RPQ evaluation over a :class:`~repro.ring.builder.RingIndex`.

    Parameters
    ----------
    index:
        The ring index to evaluate against.
    prune:
        Enable the §4.1/§4.2 wavelet-node pruning with ``B[v]``/``D[v]``
        masks (on by default; the off position exists for the ablation
        benchmark and visits many more wavelet nodes).
    fast_paths:
        Enable the §5 special cases for length-1/2 and disjunctive
        variable-to-variable patterns.
    use_planner:
        Enable the §5 start-side cardinality heuristic for
        variable-to-variable and fixed-fixed queries; when off, the
        subject side is always anchored first.
    traversal:
        ``"bfs"`` (the paper's running example) or ``"dfs"`` — the
        order in which pending (node, state-set) entries expand.  §3.2
        allows any graph search; answers are identical either way, the
        memory/locality profile differs.
    batch:
        Use the frontier-batched traversal runner
        (:class:`~repro.core.batchrun.BatchedBackwardRun`) where it
        applies — BFS order and automata of at most 63 states; other
        configurations, and small frontiers, keep the scalar runner.
        Off gives the pure scalar reference engine.
    prepare_cache_size:
        Capacity of the per-engine LRU cache of compiled expressions
        (automaton + ``B``/``B[v]`` masks), keyed on the expression
        tree.  ``0`` or ``None`` disables the LRU; a single
        ``evaluate`` call still memoises its own ``_prepare`` results
        (an expression and its reverse recur across phases).
    metrics:
        A :class:`~repro.obs.metrics.Metrics` registry receiving phase
        timers, trace events, latency histograms and (when built with
        ``span_capacity > 0``) hierarchical spans; defaults to the
        no-op :data:`~repro.obs.metrics.NULL_METRICS` (operation
        *counters* always accumulate in :class:`QueryStats`
        regardless).  Can also be supplied per call via
        :meth:`evaluate`.
    slow_log:
        A :class:`~repro.obs.slowlog.SlowQueryLog`; every finished
        ``evaluate`` offers its query to the log, which retains the K
        slowest with full counter snapshots (and the captured span
        subtree when spans are on).  ``None`` (the default) disables
        the log at the cost of one attribute load per query.
    """

    name = "ring"

    def __init__(
        self,
        index,
        prune: bool = True,
        fast_paths: bool = True,
        use_planner: bool = True,
        traversal: str = "bfs",
        batch: bool = True,
        prepare_cache_size: int | None = 128,
        metrics=None,
        slow_log=None,
    ):
        if traversal not in ("bfs", "dfs"):
            raise ValueError("traversal must be 'bfs' or 'dfs'")
        self.index = index
        self.prune = prune
        self.fast_paths = fast_paths
        self.use_planner = use_planner
        self.traversal = traversal
        self.batch = batch
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.slow_log = slow_log
        self._lp_data = None
        self._ls_data = None
        self._lp_batch = None
        self._ls_batch = None
        self._prepare_cache_size = prepare_cache_size or 0
        self._prepare_cache: OrderedDict[RegexNode, _Prepared] = OrderedDict()
        # The prepare LRU is the only cross-query mutable state on the
        # engine; the lock makes concurrent evaluate() calls (the
        # serving layer shares one engine across its worker threads)
        # safe without taxing the per-query paths.
        self._prepare_lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def ring(self):
        """The underlying ring."""
        return self.index.ring

    @property
    def dictionary(self):
        """The underlying label dictionary."""
        return self.index.dictionary

    @property
    def lp_data(self):
        """Cached low-level traversal arrays of ``L_p``."""
        if self._lp_data is None:
            self._lp_data = self.ring.L_p.traversal_data()
        return self._lp_data

    @property
    def ls_data(self):
        """Cached low-level traversal arrays of ``L_s``."""
        if self._ls_data is None:
            self._ls_data = self.ring.L_s.traversal_data()
        return self._ls_data

    @property
    def lp_batch(self):
        """Cached batch-kernel arrays of ``L_p`` (numpy words/cum64)."""
        if self._lp_batch is None:
            self._lp_batch = self.ring.L_p.batch_data()
        return self._lp_batch

    @property
    def ls_batch(self):
        """Cached batch-kernel arrays of ``L_s`` (numpy words/cum64)."""
        if self._ls_batch is None:
            self._ls_batch = self.ring.L_s.batch_data()
        return self._ls_batch

    def _new_run(self, prepared: _Prepared, ctx: _EvalContext):
        """The traversal runner for one (sub)query: batched when the
        engine and the prepared automaton allow it, scalar otherwise."""
        if self.batch and self.traversal == "bfs" and prepared.batchable:
            return BatchedBackwardRun(self, prepared, ctx, self.prune)
        return _BackwardRun(self, prepared, ctx, self.prune)

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: RPQ | str,
        timeout: float | None = None,
        limit: int | None = None,
        forbidden_nodes: "Iterable[str] | None" = None,
        metrics=None,
        cancel=None,
        query_id: "str | None" = None,
    ) -> QueryResult:
        """Evaluate an RPQ under set semantics.

        Returns a :class:`QueryResult` whose pairs are ``(subject,
        object)`` labels.  On timeout the partial result is returned
        with ``stats.timed_out`` set (the operation counters cover the
        work done up to the deadline); on hitting ``limit`` it is
        returned with ``stats.truncated`` set; when ``cancel`` trips
        mid-run the partial result is returned with ``stats.cancelled``
        set.  ``limit <= 0`` short-circuits to an empty truncated
        result without touching the index.

        ``forbidden_nodes`` implements the §6 extension: the listed
        nodes may not appear as *intermediate* nodes of a matching path
        (endpoints are still allowed).  Internally they are pre-marked
        as visited with every NFA state, exactly as the paper suggests
        ("marking the noncomplying nodes as already visited with the
        NFA states that enforce those conditions").

        ``metrics`` overrides the engine's registry for this one call —
        the ``repro profile`` command uses this to collect phase timers
        and trace events for a single query.  ``cancel`` is an optional
        cooperative cancellation token (anything with ``is_set()``,
        e.g. a :class:`threading.Event`) consulted at the same periodic
        ticks as the timeout; the serving layer's ``cancel(query_id)``
        sets it from another thread.

        ``query_id`` is an opaque correlation id stamped onto
        ``stats.query_id``, the query span's attributes and the
        slow-log entry, so every telemetry signal of this evaluation
        can be joined on one id (the serving layer mints ``q<N>`` per
        submission).

        This method is re-entrant and thread-safe over the shared
        immutable ring: every piece of per-call mutable state lives in
        a private :class:`_EvalContext`, so concurrent evaluations on
        one engine never observe each other's metrics, forbidden sets
        or prepare memos.
        """
        rpq = as_query(query)
        stats = QueryStats()
        stats.backend = self.name
        if query_id:
            stats.query_id = query_id
        budget = _Budget(timeout, cancel=cancel)
        result = QueryResult(stats=stats)
        obs = metrics if metrics is not None else self.metrics
        forbidden: frozenset[int] = frozenset()
        if forbidden_nodes is not None:
            forbidden = frozenset(
                self.dictionary.node_id(label)
                for label in forbidden_nodes
                if self.dictionary.has_node(label)
            )
        ctx = _EvalContext(budget, stats, obs, forbidden)
        spans = obs.spans if obs.enabled else None
        query_span = spans.start("query") if spans is not None else None
        try:
            if obs.enabled:
                obs.inc("engine.queries")
                if obs.tracing:
                    obs.record("query", query=str(rpq), shape=rpq.shape(),
                               query_id=query_id)
            if limit is not None and limit <= 0:
                stats.truncated = True
            else:
                self._dispatch(rpq, ctx, limit, result)
        except QueryTimeoutError:
            stats.timed_out = True
        except QueryCancelledError:
            stats.cancelled = True
        finally:
            if query_span is not None:
                query_span.set(
                    query=str(rpq), shape=rpq.shape(),
                    n_results=len(result.pairs),
                )
                if query_id:
                    query_span.set(query_id=query_id)
                # Also closes any spans a timeout left open underneath.
                spans.end(query_span)
        stats.elapsed = budget.elapsed()
        if obs.enabled:
            obs.add_phase("total", stats.elapsed)
            obs.observe("query.seconds", stats.elapsed)
            obs.observe("query.results", len(result.pairs))
            obs.observe("query.backward_steps", stats.backward_steps)
            obs.observe("query.wavelet_nodes", stats.wavelet_nodes)
        slow_log = self.slow_log
        if slow_log is not None:
            # would_keep gates the snapshot build; fast queries cost
            # one comparison (record() re-checks and counts them).
            if slow_log.would_keep(stats.elapsed):
                slow_log.record(
                    str(rpq), stats.elapsed,
                    n_results=len(result.pairs),
                    timed_out=stats.timed_out,
                    truncated=stats.truncated,
                    counters=stats.operation_counts(),
                    phase_seconds=(
                        dict(obs.phase_seconds) if obs.enabled else {}
                    ),
                    span_tree=(
                        spans.tree(query_span)
                        if spans is not None else None
                    ),
                    engine=self.name,
                    query_id=query_id,
                )
            else:
                slow_log.total_recorded += 1
        return result

    def explain(self, query: RPQ | str) -> dict:
        """Describe how a query would be evaluated, without running it.

        Returns a dict with the query shape, the automaton size, the
        predicates the ``B`` table would hold, whether a §5 fast path
        applies, and (for variable-to-variable queries) the anchor side
        the §5 cardinality heuristic selects.
        """
        rpq = as_query(query)
        shape = rpq.shape()
        prepared = _Prepared(rpq.expr, self.index)
        plan: dict = {
            "query": str(rpq),
            "shape": shape,
            "nfa_states": prepared.automaton.num_states,
            "nullable": prepared.automaton.nullable,
            "b_predicates": sorted(
                self.dictionary.predicate_label(p)
                for p in prepared.b_masks
            ),
        }
        if shape == "vc":
            plan["strategy"] = "backward run of E from the object"
        elif shape == "cv":
            plan["strategy"] = "backward run of ^E from the subject"
        elif shape == "cc":
            plan["strategy"] = "backward run with early exit at the target"
        else:
            fast = self.fast_paths and self._describe_fast_path(rpq.expr)
            if fast:
                plan["strategy"] = fast
            else:
                side = (
                    choose_anchor_side(
                        prepared.automaton, self.dictionary, self.ring
                    )
                    if self.use_planner else "subject"
                )
                plan["anchor_side"] = side
                plan["strategy"] = (
                    "full-range pass binds the "
                    f"{side} side, then one anchored run per binding"
                )
        return plan

    def _describe_fast_path(self, expr: RegexNode) -> str | None:
        if isinstance(expr, Symbol):
            return "fast path: single-predicate listing (§5)"
        if isinstance(expr, Union) and all(
            isinstance(c, Symbol) for c in expr.children
        ):
            return "fast path: disjunction of single-predicate listings"
        if (
            isinstance(expr, Concat)
            and len(expr.children) == 2
            and all(isinstance(c, Symbol) for c in expr.children)
        ):
            return "fast path: length-2 path via range intersection (§5)"
        return None

    # ------------------------------------------------------------------
    # Shape dispatch
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        rpq: RPQ,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> None:
        shape = rpq.shape()
        if shape == "vc":
            self._eval_anchored(rpq.expr, rpq.object, "object",
                                ctx, limit, result)
        elif shape == "cv":
            self._eval_anchored(rpq.expr.reverse(), rpq.subject, "subject",
                                ctx, limit, result)
        elif shape == "cc":
            self._eval_boolean(rpq, ctx, result)
        else:
            self._eval_var_var(rpq, ctx, limit, result)

    # -- one fixed endpoint --------------------------------------------

    def _eval_anchored(
        self,
        expr: RegexNode,
        anchor_label: str,
        anchor_role: str,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> None:
        """Backward run anchored at one constant node.

        ``anchor_role`` says which side of the *original* query the
        constant sits on, so reported nodes pair up correctly:
        ``object`` means the run reports subjects (query ``(?x, E, o)``,
        run on ``E``); ``subject`` means it reports objects (query
        ``(s, E, ?y)``, run on ``^E`` anchored at ``s``).
        """
        dictionary = self.dictionary
        if not dictionary.has_node(anchor_label):
            return
        anchor = dictionary.node_id(anchor_label)
        if anchor in ctx.forbidden_ids:
            return
        prepared = self._prepare(expr, ctx)

        if prepared.automaton.nullable:
            result.pairs.add((anchor_label, anchor_label))

        remaining = None if limit is None else limit - len(result.pairs)
        if remaining is not None and remaining <= 0:
            result.stats.truncated = True
            return

        run = self._new_run(prepared, ctx)
        obs = ctx.obs
        spans = obs.spans if obs.enabled else None
        span = spans.start("run:anchored") if spans is not None else None
        reported = run.run(
            self.ring.object_range(anchor),
            start_node=anchor,
            max_reported=remaining,
        )
        if span is not None:
            span.set(anchor=anchor_label, reported=len(reported))
            spans.end(span)
        result.stats.truncated = result.stats.truncated or run.stats.truncated
        for node_id in reported:
            label = dictionary.node_label(node_id)
            if anchor_role == "object":
                result.pairs.add((label, anchor_label))
            else:
                result.pairs.add((anchor_label, label))

    # -- both endpoints fixed --------------------------------------------

    def _eval_boolean(
        self, rpq: RPQ, ctx: _EvalContext, result: QueryResult
    ) -> None:
        """Both endpoints fixed: run from one side, early-exit at the
        other.  §4.4 allows starting from either end ("or vice versa
        with E"); the planner's cardinality rule picks the cheaper one
        — anchoring the subject means running ``^E`` from it."""
        dictionary = self.dictionary
        if not (dictionary.has_node(rpq.subject)
                and dictionary.has_node(rpq.object)):
            return
        subject = dictionary.node_id(rpq.subject)
        obj = dictionary.node_id(rpq.object)
        if subject in ctx.forbidden_ids or obj in ctx.forbidden_ids:
            return
        prepared = self._prepare(rpq.expr, ctx)

        if prepared.automaton.nullable and subject == obj:
            result.pairs.add((rpq.subject, rpq.object))
            return

        anchor, target = obj, subject
        if self.use_planner:
            side = choose_anchor_side(
                prepared.automaton, dictionary, self.ring
            )
            if side == "subject":
                prepared = self._prepare(rpq.expr.reverse(), ctx)
                anchor, target = subject, obj

        run = self._new_run(prepared, ctx)
        obs = ctx.obs
        spans = obs.spans if obs.enabled else None
        span = spans.start("run:boolean") if spans is not None else None
        reported = run.run(
            self.ring.object_range(anchor),
            start_node=anchor,
            target=target,
        )
        if span is not None:
            span.set(found=target in reported)
            spans.end(span)
        if target in reported:
            result.pairs.add((rpq.subject, rpq.object))

    # -- both endpoints variable -----------------------------------------

    def _eval_var_var(
        self,
        rpq: RPQ,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> None:
        dictionary = self.dictionary
        budget = ctx.budget
        prepared = self._prepare(rpq.expr, ctx)

        if prepared.automaton.nullable:
            for node_id in range(dictionary.num_nodes):
                budget.tick()
                if node_id in ctx.forbidden_ids:
                    continue
                label = dictionary.node_label(node_id)
                result.pairs.add((label, label))
                if limit is not None and len(result.pairs) >= limit:
                    result.stats.truncated = True
                    return

        use_fast = self.fast_paths and not ctx.forbidden_ids
        if use_fast and self._try_fast_path(
            rpq.expr, ctx, limit, result
        ):
            return

        if self.use_planner:
            side = choose_anchor_side(
                prepared.automaton, dictionary, self.ring
            )
        else:
            side = "subject"

        if side == "subject":
            first_expr, second_expr = rpq.expr, rpq.expr.reverse()
        else:
            first_expr, second_expr = rpq.expr.reverse(), rpq.expr

        obs = ctx.obs
        spans = obs.spans if obs.enabled else None

        # Phase 1: one traversal from the full L_p range binds one side.
        first_prepared = self._prepare(first_expr, ctx)
        run = self._new_run(first_prepared, ctx)
        span = spans.start("phase1:bind") if spans is not None else None
        bindings = run.run(
            self.ring.full_range(), start_node=None, max_reported=limit
        )
        if span is not None:
            span.set(side=side, bindings=len(bindings))
            spans.end(span)

        # Phase 2: one anchored run per binding, on the other automaton.
        second_prepared = self._prepare(second_expr, ctx)
        order = sorted(bindings)
        span = spans.start("phase2:anchors") if spans is not None else None
        if span is not None:
            span.set(n_anchors=len(order))
        batched = (
            self.batch
            and self.traversal == "bfs"
            and second_prepared.batchable
        )
        try:
            if batched:
                # Anchored subqueries are independent (disjoint visited
                # tables), so chunks of them traverse in lockstep sharing
                # each BFS wave's kernel calls; provenance stays per-anchor
                # inside the runner.  The result cap is re-snapshotted per
                # chunk instead of per anchor — same guarantee (stop once
                # ``limit`` pairs exist), coarser check.
                for lo in range(0, len(order), _ANCHOR_BATCH):
                    chunk = order[lo:lo + _ANCHOR_BATCH]
                    for _ in chunk:
                        budget.tick()
                    remaining = (
                        None if limit is None else limit - len(result.pairs)
                    )
                    if remaining is not None and remaining <= 0:
                        result.stats.truncated = True
                        return
                    sub_run = self._new_run(second_prepared, ctx)
                    result.stats.subqueries += len(chunk)
                    partner_sets = sub_run.run_many(
                        chunk,
                        self.ring.object_ranges_many(chunk, obs=obs),
                        max_reported=remaining,
                    )
                    for node_id, partners in zip(chunk, partner_sets):
                        if not partners:
                            continue
                        anchor_label = dictionary.node_label(node_id)
                        for partner in partners:
                            partner_label = dictionary.node_label(partner)
                            if side == "subject":
                                result.pairs.add(
                                    (anchor_label, partner_label)
                                )
                            else:
                                result.pairs.add(
                                    (partner_label, anchor_label)
                                )
                return

            for node_id in order:
                budget.tick()
                remaining = (
                    None if limit is None else limit - len(result.pairs)
                )
                if remaining is not None and remaining <= 0:
                    result.stats.truncated = True
                    return
                sub_run = self._new_run(second_prepared, ctx)
                result.stats.subqueries += 1
                partners = sub_run.run(
                    self.ring.object_range(node_id),
                    start_node=node_id,
                    max_reported=remaining,
                )
                anchor_label = dictionary.node_label(node_id)
                for partner in partners:
                    partner_label = dictionary.node_label(partner)
                    if side == "subject":
                        result.pairs.add((anchor_label, partner_label))
                    else:
                        result.pairs.add((partner_label, anchor_label))
        finally:
            if span is not None:
                spans.end(span)

    # ------------------------------------------------------------------
    # §5 fast paths for short variable-to-variable patterns
    # ------------------------------------------------------------------

    def _try_fast_path(
        self,
        expr: RegexNode,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> bool:
        """Returns True when a special-case evaluation handled ``expr``."""
        dictionary = self.dictionary

        if isinstance(expr, Symbol):
            pids = resolve_atom_to_predicates(expr, dictionary)
            for pid in pids:
                self._vv_single_predicate(pid, ctx, limit, result)
            return True

        if isinstance(expr, Union) and all(
            isinstance(c, Symbol) for c in expr.children
        ):
            pids: set[int] = set()
            for child in expr.children:
                pids.update(resolve_atom_to_predicates(child, dictionary))
            for pid in sorted(pids):
                if limit is not None and len(result.pairs) >= limit:
                    result.stats.truncated = True
                    return True
                self._vv_single_predicate(pid, ctx, limit, result)
            return True

        if (
            isinstance(expr, Concat)
            and len(expr.children) == 2
            and all(isinstance(c, Symbol) for c in expr.children)
        ):
            first = resolve_atom_to_predicates(expr.children[0], dictionary)
            second = resolve_atom_to_predicates(expr.children[1], dictionary)
            if len(first) == 1 and len(second) == 1:
                self._vv_two_predicates(
                    next(iter(first)), next(iter(second)),
                    ctx, limit, result,
                )
                return True

        return False

    def _vv_single_predicate(
        self,
        pid: int,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> None:
        """All pairs of one predicate: subjects from ``L_s``, objects by
        one backward-search step with the inverse predicate (§5)."""
        ring = self.ring
        dictionary = self.dictionary
        budget = ctx.budget
        inv = dictionary.inverse_predicate(pid)
        b, e = ring.predicate_range(pid)
        height = ring.L_s.height

        subjects = [s for s, _, _ in ring.L_s.range_distinct(b, e)]
        if self.batch and len(subjects) >= 2:
            # All subjects map through C_o and the Eq. 4–5 step with the
            # batch kernels (two vectorized walks instead of 3·height
            # scalar ranks per subject); only the per-pair emit loop
            # stays scalar.  Counters accrue per subject as the emit
            # loop reaches it, so truncated runs account like the
            # scalar path.
            obj_ranges = ring.object_ranges_many(subjects, obs=ctx.obs)
            steps = ring.backward_step_many(obj_ranges, inv, obs=ctx.obs)
            for i, subject in enumerate(subjects):
                budget.tick()
                subject_label = dictionary.node_label(subject)
                result.stats.product_edges += 1
                result.stats.backward_steps += 1
                result.stats.object_ranges += 1
                result.stats.storage_ops += 3 * height
                for obj, _, _ in ring.L_s.range_distinct(
                    int(steps[i, 0]), int(steps[i, 1])
                ):
                    result.pairs.add(
                        (subject_label, dictionary.node_label(obj))
                    )
                    if limit is not None and len(result.pairs) >= limit:
                        result.stats.truncated = True
                        return
            return

        for subject in subjects:
            budget.tick()
            subject_label = dictionary.node_label(subject)
            ob, oe = ring.object_range(subject)
            bs, es = ring.backward_step(ob, oe, inv)
            result.stats.product_edges += 1
            result.stats.backward_steps += 1
            result.stats.object_ranges += 1
            result.stats.storage_ops += 3 * height
            for obj, _, _ in ring.L_s.range_distinct(bs, es):
                result.pairs.add(
                    (subject_label, dictionary.node_label(obj))
                )
                if limit is not None and len(result.pairs) >= limit:
                    result.stats.truncated = True
                    return

    def _vv_two_predicates(
        self,
        p1: int,
        p2: int,
        ctx: _EvalContext,
        limit: int | None,
        result: QueryResult,
    ) -> None:
        """All pairs of ``p1/p2``: intersect the mid-point candidates
        (targets of ``p1`` vs sources of ``p2``) with the wavelet
        intersection, then expand each mid-point with two backward
        steps (§5)."""
        ring = self.ring
        dictionary = self.dictionary
        budget = ctx.budget
        inv1 = dictionary.inverse_predicate(p1)
        inv2 = dictionary.inverse_predicate(p2)
        r1 = ring.predicate_range(inv1)  # subjects here = targets of p1
        r2 = ring.predicate_range(p2)    # subjects here = sources of p2
        height = ring.L_s.height
        for mid, _, _, _, _ in ring.L_s.range_intersect(*r1, *r2):
            budget.tick()
            result.stats.storage_ops += 4 * height
            ob, oe = ring.object_range(mid)
            result.stats.object_ranges += 1
            result.stats.backward_steps += 2
            sb, se = ring.backward_step(ob, oe, p1)
            subjects = [
                dictionary.node_label(s)
                for s, _, _ in ring.L_s.range_distinct(sb, se)
            ]
            tb, te = ring.backward_step(ob, oe, inv2)
            objects = [
                dictionary.node_label(o)
                for o, _, _ in ring.L_s.range_distinct(tb, te)
            ]
            result.stats.product_edges += len(subjects) + len(objects)
            for s_label in subjects:
                for o_label in objects:
                    result.pairs.add((s_label, o_label))
                    if limit is not None and len(result.pairs) >= limit:
                        result.stats.truncated = True
                        return

    # ------------------------------------------------------------------

    def _prepare(self, expr: RegexNode, ctx: _EvalContext) -> _Prepared:
        """Compile ``expr`` (or fetch the compilation from cache).

        Expression trees are immutable value objects, so they key both
        the context's per-``evaluate`` memo (a v-to-v evaluation
        prepares the same expression and its reverse up to three times)
        and a bounded per-engine LRU that persists across calls —
        benchmark loops and dashboards re-issue the same patterns
        constantly.  The LRU is shared by concurrent evaluations, so
        its get/insert/evict runs under ``_prepare_lock``; the memo is
        private to the context and needs none.  A cached entry still
        refreshes the per-query stats fields.
        """
        stats = ctx.stats
        stats.prepares += 1
        obs = ctx.obs
        memo = ctx.memo
        prepared = memo.get(expr)
        if prepared is None and self._prepare_cache_size:
            with self._prepare_lock:
                prepared = self._prepare_cache.get(expr)
                if prepared is not None:
                    self._prepare_cache.move_to_end(expr)
        if prepared is not None:
            stats.prepare_cache_hits += 1
            if obs.enabled:
                obs.inc("engine.prepare_cache_hits")
        else:
            prepared = _Prepared(expr, self.index)
            if obs.enabled:
                obs.inc("engine.prepare_builds")
            if self._prepare_cache_size:
                with self._prepare_lock:
                    cache = self._prepare_cache
                    cache[expr] = prepared
                    while len(cache) > self._prepare_cache_size:
                        cache.popitem(last=False)
        memo[expr] = prepared
        stats.nfa_states = max(stats.nfa_states, prepared.automaton.num_states)
        stats.b_entries = max(stats.b_entries, len(prepared.b_masks))
        return prepared

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingRPQEngine(prune={self.prune}, fast={self.fast_paths})"
