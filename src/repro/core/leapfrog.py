"""Leapfrog-Triejoin-style access to an RPQ relation (§6 extension).

The paper's conclusions sketch how the ring's RPQ machinery plugs into
worst-case-optimal multijoins: treat ``(x, E, y)`` as a relation and
serve the Leapfrog Triejoin's probes — *"the smallest x ≥ x0 that has a
solution for some y"*, then, with ``x`` bound, *"the smallest y ≥ y0"*
— using the wavelet trees' ability to binary-partition candidate
ranges.

:class:`RPQRelation` implements exactly that interface:

* :meth:`seek_subject` — smallest subject id ``>= lower`` with at
  least one solution.  Candidates are enumerated in id order straight
  from the ``L_s`` predicate ranges of the expression's *first* atoms
  (via ``range_next_value``, the successive-binary-partitioning
  primitive), and each candidate is verified with an anchored boolean
  run that stops at the first reported answer — no full evaluation.
* :meth:`seek_object` — smallest object id ``>= lower`` for a bound
  subject (solutions per subject are computed once and cached).

Together these are sufficient for a Leapfrog join over a mix of triple
patterns and RPQ "virtual relations"; ``join_subjects`` demonstrates
the classic unary leapfrog intersection over several relations.
"""

from __future__ import annotations

from bisect import bisect_left

from repro._util.bits import iter_set_bits
from repro.automata.glushkov import resolve_atom_to_predicates
from repro.automata.parser import parse_regex
from repro.automata.syntax import RegexNode
from repro.core.engine import _BackwardRun, _Budget, _EvalContext, _Prepared
from repro.core.result import QueryStats
from repro.obs.metrics import NULL_METRICS


class RPQRelation:
    """A seekable binary relation ``{(s, o) | s -E-> o}`` over node ids.

    Parameters
    ----------
    index:
        The :class:`~repro.ring.builder.RingIndex` to evaluate against.
    expr:
        The path expression (AST or text).
    """

    def __init__(self, index, expr: RegexNode | str):
        if isinstance(expr, str):
            expr = parse_regex(expr)
        self.index = index
        self.expr = expr
        self.stats = QueryStats()
        # The anchored checks run the reversed expression from the
        # candidate subject (it plays the object role there).
        self._prepared_reverse = _Prepared(expr.reverse(), index)
        self._prepared_forward = _Prepared(expr, index)
        self._nullable = self._prepared_forward.automaton.nullable
        self._first_ranges = self._subject_candidate_ranges()
        self._objects_cache: dict[int, list[int]] = {}
        self._subject_known: dict[int, bool] = {}

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------

    def _subject_candidate_ranges(self) -> list[tuple[int, int]]:
        """``L_s`` ranges whose symbols are candidate subjects.

        A non-empty path matching ``E`` must leave its subject through
        an edge whose predicate matches one of the *first* atoms of the
        Glushkov automaton; the subjects of those edges are exactly the
        symbols of the corresponding ``C_p`` ranges of ``L_s``.
        """
        automaton = self._prepared_forward.automaton
        dictionary = self.index.dictionary
        ring = self.index.ring
        ranges = []
        seen: set[int] = set()
        for position in iter_set_bits(automaton.first_mask):
            if position == 0:
                continue
            atom = automaton.atoms[position - 1]
            for pid in resolve_atom_to_predicates(atom, dictionary):
                if pid in seen:
                    continue
                seen.add(pid)
                b, e = ring.predicate_range(pid)
                if b < e:
                    ranges.append((b, e))
        return ranges

    def _next_candidate(self, lower: int) -> int | None:
        """Smallest candidate subject id ``>= lower``."""
        if self._nullable:
            # Every node matches via the empty path.
            return lower if lower < self.index.dictionary.num_nodes \
                else None
        best: int | None = None
        ls = self.index.ring.L_s
        for b, e in self._first_ranges:
            found = ls.range_next_value(b, e, lower)
            if found is not None and (best is None or found < best):
                best = found
                if best == lower:
                    break
        return best

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------

    def _has_solution(self, subject: int) -> bool:
        """Boolean check: does ``subject`` start any matching path?"""
        if self._nullable:
            return True
        cached = self._subject_known.get(subject)
        if cached is not None:
            return cached
        run = _BackwardRun(
            self.index.engine, self._prepared_reverse,
            _EvalContext(_Budget(None), self.stats, NULL_METRICS),
            prune=True,
        )
        reported = run.run(
            self.index.ring.object_range(subject),
            start_node=subject,
            max_reported=1,
        )
        has = bool(reported)
        self._subject_known[subject] = has
        return has

    def _objects_of(self, subject: int) -> list[int]:
        """All objects for a bound subject, sorted (cached)."""
        cached = self._objects_cache.get(subject)
        if cached is not None:
            return cached
        run = _BackwardRun(
            self.index.engine, self._prepared_reverse,
            _EvalContext(_Budget(None), self.stats, NULL_METRICS),
            prune=True,
        )
        reported = run.run(
            self.index.ring.object_range(subject),
            start_node=subject,
        )
        objects = sorted(reported)
        if self._nullable and (not objects or objects[0] != subject):
            # The empty path contributes (s, s).
            objects = sorted(set(objects) | {subject})
        self._objects_cache[subject] = objects
        self._subject_known[subject] = bool(objects)
        return objects

    # ------------------------------------------------------------------
    # The Leapfrog probe interface
    # ------------------------------------------------------------------

    def seek_subject(self, lower: int = 0) -> int | None:
        """Smallest subject id ``>= lower`` with at least one solution."""
        candidate = self._next_candidate(lower)
        while candidate is not None:
            if self._has_solution(candidate):
                return candidate
            candidate = self._next_candidate(candidate + 1)
        return None

    def seek_object(self, subject: int, lower: int = 0) -> int | None:
        """Smallest object id ``>= lower`` reachable from ``subject``."""
        objects = self._objects_of(subject)
        i = bisect_left(objects, lower)
        return objects[i] if i < len(objects) else None

    def iter_subjects(self):
        """All subjects with solutions, ascending, via repeated seeks."""
        current = self.seek_subject(0)
        while current is not None:
            yield current
            current = self.seek_subject(current + 1)

    def iter_pairs(self):
        """All ``(subject, object)`` id pairs, in lexicographic order."""
        for subject in self.iter_subjects():
            for obj in self._objects_of(subject):
                yield (subject, obj)


class TriplePatternRelation:
    """A seekable relation from one triple pattern ``(x, p, o?)``.

    The §6 vision is a Leapfrog Triejoin over a *mix* of ordinary
    triple patterns and RPQ virtual relations; this class provides the
    triple-pattern side with the same probe interface as
    :class:`RPQRelation`, served directly from the ring:

    * with the object free, candidate subjects live in the ``L_s``
      range of predicate ``p`` and are seeked with
      ``range_next_value``;
    * with the object bound, one backward-search step narrows that
      range to the subjects of ``(?, p, o)`` first.
    """

    def __init__(self, index, predicate: str, object: str | None = None):
        self.index = index
        dictionary = index.dictionary
        ring = index.ring
        self.stats = QueryStats()
        if not dictionary.has_predicate(predicate) or (
            object is not None and not dictionary.has_node(object)
        ):
            self._range = (0, 0)
            self._pid = None
            return
        self._pid = dictionary.predicate_id(predicate)
        if object is None:
            self._range = ring.predicate_range(self._pid)
        else:
            b_o, e_o = ring.object_range(dictionary.node_id(object))
            self._range = ring.backward_step(b_o, e_o, self._pid)

    def seek_subject(self, lower: int = 0) -> int | None:
        """Smallest subject id ``>= lower`` with a matching triple."""
        b, e = self._range
        if b >= e:
            return None
        self.stats.storage_ops += 1
        return self.index.ring.L_s.range_next_value(b, e, lower)

    def seek_object(self, subject: int, lower: int = 0) -> int | None:
        """Smallest object id ``>= lower`` for a bound subject."""
        if self._pid is None:
            return None
        dictionary = self.index.dictionary
        ring = self.index.ring
        inv = dictionary.inverse_predicate(self._pid)
        b_o, e_o = ring.object_range(subject)
        b, e = ring.backward_step(b_o, e_o, inv)
        self.stats.storage_ops += 1
        return ring.L_s.range_next_value(b, e, lower)

    def iter_subjects(self):
        """All distinct subjects, ascending, via repeated seeks."""
        current = self.seek_subject(0)
        while current is not None:
            yield current
            current = self.seek_subject(current + 1)


def join_subjects(relations: list[RPQRelation]) -> list[int]:
    """Unary leapfrog intersection: subjects present in *every* relation.

    The classic Leapfrog Triejoin inner loop: keep seeking each
    relation to the current maximum until all agree, then emit and
    advance — worst-case-optimal for the intersection.
    """
    if not relations:
        return []
    out: list[int] = []
    current = 0
    while True:
        seeks = []
        for relation in relations:
            position = relation.seek_subject(current)
            if position is None:
                return out
            seeks.append(position)
        highest = max(seeks)
        if all(position == highest for position in seeks):
            out.append(highest)
            current = highest + 1
        else:
            current = highest
