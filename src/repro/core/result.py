"""Query results and evaluation statistics.

Engines return a :class:`QueryResult`: a set of ``(subject, object)``
label pairs under set semantics (the paper runs everything with
``DISTINCT``), plus a :class:`QueryStats` record of what the evaluation
did — enough to reproduce the §5 working-space discussion and the
ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field


#: The three parts of one NFA step (§4.1–§4.3), in evaluation order.
#: These are the keys of :meth:`QueryStats.phase_breakdown` and the
#: phase-timer names the engine reports to a
#: :class:`~repro.obs.metrics.Metrics` registry.
ENGINE_PHASES = (
    "predicates_from_objects",
    "subjects_from_predicates",
    "subjects_to_objects",
)


@dataclass
class QueryStats:
    """Counters collected while evaluating one query."""

    #: Correlation id minted by the caller (the serving layer stamps
    #: ``q<N>`` per submission); the same id appears in the span tree,
    #: the slow log and the JSON query log, so one id joins every
    #: telemetry signal of one evaluation.  Empty when the caller
    #: supplied none.
    query_id: str = ""
    #: Wall-clock seconds spent in the engine.
    elapsed: float = 0.0
    #: True when the evaluation hit its timeout before completing.
    timed_out: bool = False
    #: True when the evaluation stopped at the result cap.
    truncated: bool = False
    #: True when the evaluation was cancelled cooperatively (the serving
    #: layer's ``cancel(query_id)`` tripped the budget between ticks).
    cancelled: bool = False
    #: True when the result was served from a result cache without
    #: evaluating — all operation counters are then zero.
    cached: bool = False
    #: Which backend produced the result (``"ring"``, ``"matrix"``, a
    #: baseline name).  The routed engine stamps its per-query choice
    #: here so EXPLAIN ANALYZE, the slow log and the query log can
    #: attribute every answer to the engine that computed it.  Empty
    #: when the engine predates backend attribution.
    backend: str = ""
    #: Product-graph node visits, i.e. (node, state-set) expansions.
    product_nodes: int = 0
    #: Product-graph edges traversed (predicate leaves accepted).
    product_edges: int = 0
    #: Wavelet(-matrix) nodes touched during L_p / L_s descents.
    wavelet_nodes: int = 0
    #: Distinct graph nodes recorded in the visited table ``D``.
    visited_nodes: int = 0
    #: Entries materialised in the automaton's lazily-built ``B``.
    b_entries: int = 0
    #: Number of NFA states of the query automaton (m + 1).
    nfa_states: int = 0
    #: Per-node subqueries launched (phase 2 of v-to-v evaluation).
    subqueries: int = 0
    #: Substrate-neutral work metric: elementary storage operations.
    #: For the ring this counts bitvector rank operations; for the
    #: baselines, adjacency/index entries touched.  Wall-clock ratios
    #: do not transfer from the paper's C++/Java systems to pure
    #: Python (interpreter overhead taxes the ring's fine-grained
    #: operations far more than dict lookups), so the benchmark
    #: harness reports this metric alongside the timings.
    storage_ops: int = 0

    # -- §4.1: predicates-from-objects (L_p descent) -------------------
    #: L_p descents started (one per pending (range, states) step).
    lp_descents: int = 0
    #: L_p wavelet nodes *expanded* (survived the B[v] mask).
    lp_nodes: int = 0
    #: L_p wavelet nodes pruned because ``D & B[v] == 0``.
    lp_pruned: int = 0
    #: L_p child entries popped with an empty position range.
    lp_empty: int = 0
    #: L_p child entries pushed (two per expanded internal node; each
    #: internal expansion performs exactly two inlined rank operations,
    #: so this doubles as the phase's rank-op count).
    lp_children: int = 0

    # -- §4.2: subjects-from-predicates (L_s descent) ------------------
    #: L_s descents started (one per accepted predicate leaf).
    ls_descents: int = 0
    #: L_s wavelet nodes expanded (not suppressed by the D masks).
    ls_nodes: int = 0
    #: L_s nodes suppressed by the D[v]/D visited masks (internal nodes
    #: whose subtree was already visited with every state of the step,
    #: plus leaves whose subject was).
    ls_pruned: int = 0
    #: L_s child entries popped with an empty position range.
    ls_empty: int = 0
    #: L_s child entries pushed (= two inlined ranks per expansion).
    ls_children: int = 0
    #: Backward-search steps (Eqs. 4–5): predicate-leaf to L_s-range
    #: maps, plus explicit :meth:`Ring.backward_step` calls of the §5
    #: fast paths.
    backward_steps: int = 0

    # -- §4.3: subjects-to-objects (C_o mapping) -----------------------
    #: Object ranges fetched from ``C_o`` to continue the traversal.
    object_ranges: int = 0

    # -- sparse-matrix backend -----------------------------------------
    #: Boolean sparse matrix multiplications (frontier x transition
    #: matrix) performed by the matrix backend; zero for node-at-a-time
    #: engines.
    matmuls: int = 0

    # -- query compilation ---------------------------------------------
    #: Calls to the engine's ``_prepare`` (automaton + mask builds
    #: requested; v-to-v evaluation asks three times per query).
    prepares: int = 0
    #: ``_prepare`` calls served from the bounded LRU cache or the
    #: per-evaluation memo instead of rebuilding the automaton.
    prepare_cache_hits: int = 0

    def operation_counts(self) -> dict[str, int]:
        """The flat operation counters, by name.

        The benchmark runner records this dict per query so operation
        counts can be aggregated per pattern class; booleans, timings
        and automaton-shape fields are deliberately excluded.
        """
        return {
            "storage_ops": self.storage_ops,
            "wavelet_nodes": self.wavelet_nodes,
            "product_nodes": self.product_nodes,
            "product_edges": self.product_edges,
            "lp_descents": self.lp_descents,
            "lp_nodes": self.lp_nodes,
            "lp_pruned": self.lp_pruned,
            "lp_empty": self.lp_empty,
            "lp_children": self.lp_children,
            "ls_descents": self.ls_descents,
            "ls_nodes": self.ls_nodes,
            "ls_pruned": self.ls_pruned,
            "ls_empty": self.ls_empty,
            "ls_children": self.ls_children,
            "backward_steps": self.backward_steps,
            "object_ranges": self.object_ranges,
            "subqueries": self.subqueries,
            "matmuls": self.matmuls,
            "prepares": self.prepares,
            "prepare_cache_hits": self.prepare_cache_hits,
            # derived: the engine's inlined descents perform exactly two
            # level-bitvector ranks per expanded internal node
            "rank_ops": self.lp_children + self.ls_children,
        }

    def phase_breakdown(
        self, phase_seconds: "dict[str, float] | None" = None
    ) -> dict[str, dict[str, float]]:
        """Structured per-phase view of the §4.1–§4.3 counters.

        ``phase_seconds`` (usually
        :attr:`repro.obs.metrics.Metrics.phase_seconds` of a profiled
        run) contributes each phase's ``seconds`` entry; without it the
        timings are reported as 0.0 — counters are always collected,
        timers only under an enabled metrics registry.
        """
        seconds = phase_seconds or {}
        return {
            "predicates_from_objects": {
                "seconds": seconds.get("predicates_from_objects", 0.0),
                "descents": self.lp_descents,
                "nodes_visited": self.lp_nodes,
                "nodes_pruned": self.lp_pruned,
                "empty_ranges": self.lp_empty,
                "rank_ops": self.lp_children,
            },
            "subjects_from_predicates": {
                "seconds": seconds.get("subjects_from_predicates", 0.0),
                "descents": self.ls_descents,
                "nodes_visited": self.ls_nodes,
                "nodes_pruned": self.ls_pruned,
                "empty_ranges": self.ls_empty,
                "rank_ops": self.ls_children,
                "backward_steps": self.backward_steps,
            },
            "subjects_to_objects": {
                "seconds": seconds.get("subjects_to_objects", 0.0),
                "object_ranges": self.object_ranges,
                "product_nodes": self.product_nodes,
            },
        }

    def working_set_bits(self) -> int:
        """Estimate of the §5 query-time working space in bits.

        Mirrors the paper's accounting: one ``m+1``-bit mask per
        visited node (the ``D`` array) and per touched ``B`` entry.
        """
        per_mask = max(1, self.nfa_states)
        return (self.visited_nodes + self.b_entries) * per_mask


@dataclass
class QueryResult:
    """The (distinct) answer pairs of an RPQ evaluation."""

    pairs: set[tuple[str, str]] = field(default_factory=set)
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.pairs

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def subjects(self) -> set[str]:
        """Distinct subjects across all answer pairs."""
        return {s for s, _ in self.pairs}

    def objects(self) -> set[str]:
        """Distinct objects across all answer pairs."""
        return {o for _, o in self.pairs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.stats.timed_out:
            flags.append("TIMEOUT")
        if self.stats.truncated:
            flags.append("TRUNCATED")
        if self.stats.cancelled:
            flags.append("CANCELLED")
        if self.stats.cached:
            flags.append("CACHED")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"QueryResult({len(self.pairs)} pairs{suffix})"
