"""Query results and evaluation statistics.

Engines return a :class:`QueryResult`: a set of ``(subject, object)``
label pairs under set semantics (the paper runs everything with
``DISTINCT``), plus a :class:`QueryStats` record of what the evaluation
did — enough to reproduce the §5 working-space discussion and the
ablation benchmarks.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counters collected while evaluating one query."""

    #: Wall-clock seconds spent in the engine.
    elapsed: float = 0.0
    #: True when the evaluation hit its timeout before completing.
    timed_out: bool = False
    #: True when the evaluation stopped at the result cap.
    truncated: bool = False
    #: Product-graph node visits, i.e. (node, state-set) expansions.
    product_nodes: int = 0
    #: Product-graph edges traversed (predicate leaves accepted).
    product_edges: int = 0
    #: Wavelet(-matrix) nodes touched during L_p / L_s descents.
    wavelet_nodes: int = 0
    #: Distinct graph nodes recorded in the visited table ``D``.
    visited_nodes: int = 0
    #: Entries materialised in the automaton's lazily-built ``B``.
    b_entries: int = 0
    #: Number of NFA states of the query automaton (m + 1).
    nfa_states: int = 0
    #: Per-node subqueries launched (phase 2 of v-to-v evaluation).
    subqueries: int = 0
    #: Substrate-neutral work metric: elementary storage operations.
    #: For the ring this counts bitvector rank operations; for the
    #: baselines, adjacency/index entries touched.  Wall-clock ratios
    #: do not transfer from the paper's C++/Java systems to pure
    #: Python (interpreter overhead taxes the ring's fine-grained
    #: operations far more than dict lookups), so the benchmark
    #: harness reports this metric alongside the timings.
    storage_ops: int = 0

    def working_set_bits(self) -> int:
        """Estimate of the §5 query-time working space in bits.

        Mirrors the paper's accounting: one ``m+1``-bit mask per
        visited node (the ``D`` array) and per touched ``B`` entry.
        """
        per_mask = max(1, self.nfa_states)
        return (self.visited_nodes + self.b_entries) * per_mask


@dataclass
class QueryResult:
    """The (distinct) answer pairs of an RPQ evaluation."""

    pairs: set[tuple[str, str]] = field(default_factory=set)
    stats: QueryStats = field(default_factory=QueryStats)

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(sorted(self.pairs))

    def __len__(self) -> int:
        return len(self.pairs)

    def __contains__(self, pair: tuple[str, str]) -> bool:
        return pair in self.pairs

    def __bool__(self) -> bool:
        return bool(self.pairs)

    def subjects(self) -> set[str]:
        """Distinct subjects across all answer pairs."""
        return {s for s, _ in self.pairs}

    def objects(self) -> set[str]:
        """Distinct objects across all answer pairs."""
        return {o for _, o in self.pairs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.stats.timed_out:
            flags.append("TIMEOUT")
        if self.stats.truncated:
            flags.append("TRUNCATED")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"QueryResult({len(self.pairs)} pairs{suffix})"
