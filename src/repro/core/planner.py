"""Start-side selection for variable-to-variable queries (§5).

For a query ``(?x, E, ?y)`` the engine first finds, with one traversal
from the full ``L_p`` range, all the bindings of *one* side, and then
launches one anchored subquery per binding.  Which side to anchor
matters: §5 settles on *"we choose to start from the end whose
predicate has the smallest cardinality"* (and always starts from
``p1`` for ``p1/p2*``-shaped queries, which the same rule implies
whenever ``p1`` is not the rarer label anyway).

The cardinality of a side is estimated as the number of graph edges
matching the atoms adjacent to that side: the *first* atoms of ``E``
for the subject side, the *last* atoms for the object side — both read
off the Glushkov automaton, with edge counts taken from the ring's
``C_p`` boundaries at zero extra cost.
"""

from __future__ import annotations

from repro._util.bits import iter_set_bits
from repro.automata.glushkov import (
    GlushkovAutomaton,
    resolve_atom_to_predicates,
)
from repro.ring.ring import Ring


def side_cardinality(
    automaton: GlushkovAutomaton,
    positions_mask: int,
    dictionary,
    ring: Ring,
) -> int:
    """Total edges matching the atoms at the given position bitset."""
    total = 0
    seen: set[int] = set()
    for position in iter_set_bits(positions_mask):
        if position == 0:
            continue  # the initial state carries no atom
        atom = automaton.atoms[position - 1]
        for pid in resolve_atom_to_predicates(atom, dictionary):
            if pid not in seen:
                seen.add(pid)
                total += ring.predicate_count(pid)
    return total


def choose_anchor_side(
    automaton: GlushkovAutomaton,
    dictionary,
    ring: Ring,
) -> str:
    """``"subject"`` or ``"object"``: which end to bind first (§5).

    Anchoring the subject side means: find all subjects with one
    full-range backward pass of ``E``, then run one ``(s, E, ?y)``
    subquery per subject.  Anchoring the object side is symmetric,
    with ``^E``.
    """
    subject_cost = side_cardinality(
        automaton, automaton.first_mask, dictionary, ring
    )
    object_cost = side_cardinality(
        automaton, automaton.last_mask, dictionary, ring
    )
    return "subject" if subject_cost <= object_cost else "object"
