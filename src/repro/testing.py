"""Reference oracles and generators for testing RPQ engines.

The differential test suite checks every engine in this library
against :func:`brute_force_rpq`, an implementation that shares *no*
code path with them: it materialises the full product graph of §3.2 as
an explicit :mod:`networkx` digraph and answers by plain reachability.
It is exponentially wasteful and only fit for small graphs — which is
exactly what makes it a trustworthy oracle.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.automata.syntax import RegexNode
from repro.automata.thompson import build_thompson
from repro.core.query import RPQ, Variable
from repro.graph.model import Graph, inverse_label, is_inverse_label


def _atom_matches_label(atom, label: str,
                        symmetric: frozenset[str]) -> bool:
    """Label-level atom matching on the completed string graph.

    ``symmetric`` lists predicates stored bidirectionally under one
    label; their inverse spelling (``^l``) matches the plain label, and
    their reversed edges count as inverse-direction edges for negated
    property sets.
    """
    from repro.automata.syntax import NegatedClass, Symbol

    if isinstance(atom, Symbol):
        if atom.label == label:
            return True
        return (
            is_inverse_label(atom.label)
            and inverse_label(atom.label) == label
            and label in symmetric
        )
    if isinstance(atom, NegatedClass):
        if atom.inverse:
            if is_inverse_label(label):
                return inverse_label(label) not in atom.excluded
            return label in symmetric and label not in atom.excluded
        return not is_inverse_label(label) and label not in atom.excluded
    raise TypeError(f"unknown atom {type(atom).__name__}")


def brute_force_rpq(
    graph: Graph,
    query: RPQ | str,
    completed: Graph | None = None,
) -> set[tuple[str, str]]:
    """Evaluate an RPQ by explicit product-graph reachability.

    ``graph`` is the original (non-completed) graph; the completion is
    computed here (or passed in to save time across many queries).
    Returns the set of ``(subject, object)`` label pairs.

    This oracle intentionally mirrors §3.2 verbatim: build the NFA,
    build ``G_E`` as a concrete digraph over ``V x Q``, and search it.
    """
    if isinstance(query, str):
        query = RPQ.parse(query)
    if completed is None:
        completed = graph.completion()
    nfa = build_thompson(query.expr)
    nodes = completed.nodes

    product = nx.DiGraph()
    for x in nodes:
        for q in range(nfa.num_states):
            product.add_node((x, q))
    symmetric = frozenset(graph.symmetric_predicates)
    for s, p, o in completed:
        for q in range(nfa.num_states):
            for atom, target in nfa.successors(q):
                if _atom_matches_label(atom, p, symmetric):
                    product.add_edge((s, q), (o, target))

    nullable = nfa.initial in nfa.finals
    starts = (
        [query.subject] if not isinstance(query.subject, Variable) else nodes
    )
    targets = (
        {query.object} if not isinstance(query.object, Variable) else None
    )

    pairs: set[tuple[str, str]] = set()
    node_set = set(nodes)
    for start in starts:
        if start not in node_set:
            continue
        # descendants() = everything reachable by >= 1 edge; the
        # zero-length case is exactly "nullable", handled separately.
        # (The ε-free Thompson initial state has no incoming edges, so
        # (start, initial) can never be an accepting *path* endpoint.)
        for node, state in nx.descendants(product, (start, nfa.initial)):
            if state in nfa.finals and (targets is None or node in targets):
                pairs.add((start, node))
        if nullable and (targets is None or start in targets):
            pairs.add((start, start))
    return pairs


def swap_pairs(pairs: set[tuple[str, str]]) -> set[tuple[str, str]]:
    """Swap every pair's endpoints — the reversal-duality oracle.

    For any expression, ``x`` reaches ``o`` through ``E`` iff ``o``
    reaches ``x`` through ``reverse(E)`` (on the completed graph every
    atom has its inverse twin), so
    ``pairs(?x, E, ?y) == swap_pairs(pairs(?x, reverse(E), ?y))``.
    The metamorphic suite asserts this identity against every backend.
    """
    return {(o, s) for s, o in pairs}


def random_regex(
    rng: random.Random,
    predicates: list[str],
    max_depth: int = 3,
    allow_inverse: bool = True,
    allow_negation: bool = False,
) -> str:
    """A random path regular expression as text (for fuzzing)."""

    def atom() -> str:
        p = rng.choice(predicates)
        if allow_negation and rng.random() < 0.08:
            others = rng.sample(
                predicates, k=min(len(predicates), rng.randint(1, 2))
            )
            return "!(" + "|".join(others) + ")"
        if allow_inverse and rng.random() < 0.25:
            return "^" + p
        return p

    def expr(depth: int) -> str:
        r = rng.random()
        if depth >= max_depth or r < 0.34:
            return atom()
        if r < 0.54:
            return expr(depth + 1) + "/" + expr(depth + 1)
        if r < 0.68:
            return "(" + expr(depth + 1) + "|" + expr(depth + 1) + ")"
        if r < 0.8:
            return "(" + expr(depth + 1) + ")*"
        if r < 0.92:
            return "(" + expr(depth + 1) + ")+"
        return "(" + expr(depth + 1) + ")?"

    return expr(0)


def random_query(
    rng: random.Random,
    graph: Graph,
    max_depth: int = 3,
    allow_negation: bool = False,
) -> RPQ:
    """A random RPQ over the graph's vocabulary (for fuzzing)."""
    predicates = [p for p in graph.predicates if not is_inverse_label(p)]
    expr = random_regex(
        rng, predicates, max_depth=max_depth, allow_negation=allow_negation
    )
    nodes = graph.nodes
    shape = rng.choice(["vv", "vc", "cv", "cc"])
    subject = "?x" if shape[0] == "v" else rng.choice(nodes)
    obj = "?y" if shape[1] == "v" else rng.choice(nodes)
    return RPQ.of(subject, expr, obj)
