"""Glushkov-product RPQ evaluation by boolean matrix algebra.

Where the ring engine walks the product graph node at a time, this
engine advances *whole frontiers*: one boolean vector (or matrix, for
variable-to-variable queries) per Glushkov state, multiplied each
round by the transition-selected predicate matrix of the target state.
Glushkov's Fact 1 — every transition entering state ``y`` carries the
atom of position ``y`` — is what makes the state-blocked formulation
work: the step into ``y`` is a single multiply

    ``new_y = (OR of frontiers of pred(y)) @ M_y``

where ``M_y`` is the OR of the adjacency matrices of the predicates
matched by ``y``'s atom.  Iterating to fixpoint (with per-state
visited masks for dedup) computes exactly the reachable product
states, i.e. the answer of the RPQ.

The evaluate contract mirrors :meth:`repro.core.engine.RingRPQEngine.
evaluate` — same partial-result semantics for ``timeout`` / ``limit``
/ ``cancel``, same ``forbidden_nodes`` extension, same QueryStats
counters and observability hooks — so the serving layer, the EXPLAIN
pipeline and the benchmarks can swap backends freely.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from collections.abc import Iterable

import numpy as np
import scipy.sparse as sp

from repro.automata.glushkov import (
    GlushkovAutomaton,
    build_glushkov,
    resolve_atom_to_predicates,
)
from repro.automata.syntax import RegexNode
from repro.core.query import RPQ, as_query
from repro.core.result import QueryResult, QueryStats
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.matrix.matrices import PredicateMatrices
from repro.obs.metrics import NULL_METRICS
from repro._util.bits import iter_set_bits


class _Budget:
    """Wall-clock / cancellation budget of one matrix evaluation.

    Matrix rounds are coarse (one sparse multiply can cover thousands
    of product edges), so unlike the ring's every-4th-tick check this
    budget consults the clock on *every* call.
    """

    __slots__ = ("cancel", "deadline", "start")

    def __init__(self, timeout: float | None, cancel=None):
        self.start = time.monotonic()
        self.deadline = None if timeout is None else self.start + timeout
        self.cancel = cancel

    def check(self) -> None:
        if self.cancel is not None and self.cancel.is_set():
            raise QueryCancelledError(time.monotonic() - self.start)
        if self.deadline is not None and time.monotonic() > self.deadline:
            raise QueryTimeoutError(
                time.monotonic() - self.start,
                self.deadline - self.start,
            )

    def elapsed(self) -> float:
        return time.monotonic() - self.start


def _or_all(parts: "list[sp.csr_matrix]") -> "sp.csr_matrix":
    """Boolean OR of CSR matrices (bool ``+`` is elementwise OR)."""
    total = parts[0]
    for part in parts[1:]:
        total = total + part
    return total.tocsr()


def _and_not(a: "sp.csr_matrix", b: "sp.csr_matrix") -> "sp.csr_matrix":
    """``a AND NOT b`` for boolean CSR.

    numpy's bool dtype refuses ``-``, so the difference goes through
    int8: entries present in both cancel to zero and are dropped.
    """
    common = a.multiply(b)
    if common.nnz == 0:
        return a
    diff = (a.astype(np.int8) - common.astype(np.int8)).tocsr()
    diff.eliminate_zeros()
    return diff.astype(bool)


class _Prepared:
    """Query-compilation artifact shared across evaluations.

    Holds the Glushkov automaton plus, per position ``y``, the step
    matrix ``M_y`` (OR of the predicate matrices matched by ``y``'s
    atom; ``None`` when no edge of the graph matches).
    """

    __slots__ = ("automaton", "b_pids", "step_matrices")

    def __init__(self, expr: RegexNode, store: PredicateMatrices,
                 dictionary) -> None:
        self.automaton = build_glushkov(expr)
        resolve = lambda atom: resolve_atom_to_predicates(atom, dictionary)
        pids: set[int] = set()
        self.step_matrices: list["sp.csr_matrix | None"] = [None]
        for atom in self.automaton.atoms:
            atom_pids = resolve(atom)
            pids.update(atom_pids)
            self.step_matrices.append(store.union(atom_pids))
        #: Predicate ids the query can traverse (the ``B`` table the
        #: ring engine would load), for stats/explain parity.
        self.b_pids = frozenset(p for p in pids if store.nnz(p))


class MatrixRPQEngine:
    """Sparse boolean-matrix RPQ engine over :class:`PredicateMatrices`.

    Parameters mirror the ring engine where they apply; the traversal
    knobs (``prune``/``fast_paths``/…) have no matrix counterpart.
    """

    name = "matrix"

    def __init__(
        self,
        index,
        prepare_cache_size: int | None = 128,
        metrics=None,
        slow_log=None,
    ):
        self.index = index
        self.store = PredicateMatrices.from_index(index)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.slow_log = slow_log
        self._prepare_cache_size = prepare_cache_size or 0
        self._prepare_cache: "OrderedDict[RegexNode, _Prepared]" = \
            OrderedDict()
        self._prepare_lock = threading.Lock()

    # ------------------------------------------------------------------

    @property
    def dictionary(self):
        """The shared label dictionary."""
        return self.index.dictionary

    def size_in_bits(self) -> int:
        """Footprint of the compiled predicate matrices."""
        return self.store.size_in_bits()

    # ------------------------------------------------------------------

    def _prepare(self, expr: RegexNode, stats: QueryStats) -> _Prepared:
        """Compile (or recall) the automaton + step matrices of an
        expression, LRU-cached exactly like the ring's prepare cache."""
        if self._prepare_cache_size <= 0:
            stats.prepares += 1
            return _Prepared(expr, self.store, self.dictionary)
        with self._prepare_lock:
            prepared = self._prepare_cache.get(expr)
            if prepared is not None:
                self._prepare_cache.move_to_end(expr)
                stats.prepare_cache_hits += 1
                return prepared
        stats.prepares += 1
        prepared = _Prepared(expr, self.store, self.dictionary)
        with self._prepare_lock:
            self._prepare_cache[expr] = prepared
            while len(self._prepare_cache) > self._prepare_cache_size:
                self._prepare_cache.popitem(last=False)
        return prepared

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: RPQ | str,
        timeout: float | None = None,
        limit: int | None = None,
        forbidden_nodes: "Iterable[str] | None" = None,
        metrics=None,
        cancel=None,
        query_id: "str | None" = None,
    ) -> QueryResult:
        """Evaluate an RPQ under set semantics.

        Same contract as the ring engine: partial results with
        ``stats.timed_out`` / ``stats.cancelled`` on budget expiry,
        ``stats.truncated`` when the result cap stopped the run
        (``limit <= 0`` short-circuits to an empty truncated result),
        ``forbidden_nodes`` excluded from every matching path.

        The matrix engine's truncation rule is the strict form of the
        ring's: a result is tagged truncated exactly when evaluation
        stopped because ``len(pairs)`` reached ``limit`` (fixed-fixed
        queries, whose single possible answer can never be cut by a
        positive cap, are never tagged).  New answers are emitted in
        sorted ``(subject_id, object_id)`` order within each frontier
        round, so which pairs survive a cap is deterministic.
        """
        rpq = as_query(query)
        stats = QueryStats()
        stats.backend = self.name
        if query_id:
            stats.query_id = query_id
        budget = _Budget(timeout, cancel=cancel)
        result = QueryResult(stats=stats)
        obs = metrics if metrics is not None else self.metrics
        spans = obs.spans if obs.enabled else None
        query_span = spans.start("query") if spans is not None else None
        try:
            if obs.enabled:
                obs.inc("engine.queries")
                if obs.tracing:
                    obs.record("query", query=str(rpq), shape=rpq.shape(),
                               query_id=query_id)
            if limit is not None and limit <= 0:
                stats.truncated = True
            else:
                self._dispatch(rpq, budget, limit, forbidden_nodes,
                               result, obs)
        except QueryTimeoutError:
            stats.timed_out = True
        except QueryCancelledError:
            stats.cancelled = True
        finally:
            if query_span is not None:
                query_span.set(
                    query=str(rpq), shape=rpq.shape(),
                    n_results=len(result.pairs),
                )
                if query_id:
                    query_span.set(query_id=query_id)
                spans.end(query_span)
        stats.elapsed = budget.elapsed()
        if obs.enabled:
            obs.add_phase("total", stats.elapsed)
            obs.observe("query.seconds", stats.elapsed)
            obs.observe("query.results", len(result.pairs))
            obs.observe("query.matmuls", stats.matmuls)
        slow_log = self.slow_log
        if slow_log is not None:
            if slow_log.would_keep(stats.elapsed):
                slow_log.record(
                    str(rpq), stats.elapsed,
                    n_results=len(result.pairs),
                    timed_out=stats.timed_out,
                    truncated=stats.truncated,
                    counters=stats.operation_counts(),
                    phase_seconds=(
                        dict(obs.phase_seconds) if obs.enabled else {}
                    ),
                    span_tree=(
                        spans.tree(query_span)
                        if spans is not None else None
                    ),
                    engine=self.name,
                    query_id=query_id,
                )
            else:
                slow_log.total_recorded += 1
        return result

    # ------------------------------------------------------------------

    def _dispatch(self, rpq, budget, limit, forbidden_nodes, result, obs):
        dictionary = self.dictionary
        forbidden: frozenset[int] = frozenset()
        if forbidden_nodes is not None:
            forbidden = frozenset(
                dictionary.node_id(label)
                for label in forbidden_nodes
                if dictionary.has_node(label)
            )
        shape = rpq.shape()
        if shape == "vv":
            self._eval_var_var(rpq, budget, limit, forbidden, result, obs)
            return

        # All anchored shapes (cv / vc / cc) run the same forward
        # closure; vc flips to the reversed expression so the anchor
        # sits on the subject side of the run.
        subject_id = object_id = None
        if not rpq.subject_is_var:
            if not dictionary.has_node(rpq.subject):
                return
            subject_id = dictionary.node_id(rpq.subject)
        if not rpq.object_is_var:
            if not dictionary.has_node(rpq.object):
                return
            object_id = dictionary.node_id(rpq.object)
        if subject_id in forbidden or object_id in forbidden:
            # The ring engine rejects forbidden anchors outright (they
            # are marked fully visited, so they can never appear).
            return

        if shape == "cc":
            self._eval_boolean(rpq, subject_id, object_id, budget,
                               forbidden, result, obs)
            return

        if shape == "cv":
            expr, anchor, flipped = rpq.expr, subject_id, False
        else:  # vc
            expr, anchor, flipped = rpq.expr.reverse(), object_id, True
        self._eval_anchored(rpq, expr, anchor, flipped, budget, limit,
                            forbidden, result, obs)

    # -- emission ----------------------------------------------------------

    def _emit(self, entries, result: QueryResult,
              limit: "int | None") -> bool:
        """Add ``(subject_id, object_id)`` answers; True when the cap
        stopped emission (``stats.truncated`` is set)."""
        label = self.dictionary.node_label
        pairs = result.pairs
        for s, o in entries:
            pairs.add((label(s), label(o)))
            if limit is not None and len(pairs) >= limit:
                result.stats.truncated = True
                return True
        return False

    # -- the frontier closure ---------------------------------------------

    def _closure(
        self,
        prepared: _Prepared,
        start: "sp.csr_matrix",
        budget: _Budget,
        forbidden: frozenset,
        stats: QueryStats,
        on_new,
    ) -> None:
        """Iterate the state-blocked product to fixpoint.

        ``start`` is the state-0 frontier (1 x N for anchored runs,
        N x N identity for variable-to-variable).  ``on_new(y, new)``
        receives each state's newly-reached entries once per round; a
        truthy return stops the closure (cap hit / target found).
        """
        automaton = prepared.automaton
        step = prepared.step_matrices
        pred_masks = automaton.pred_masks
        stats.nfa_states = max(stats.nfa_states, automaton.num_states)
        stats.b_entries += len(prepared.b_pids)

        allowed = None
        if forbidden:
            keep = np.ones(self.store.num_nodes, dtype=bool)
            keep[list(forbidden)] = False
            allowed = sp.csr_matrix(keep.reshape(1, -1))

        frontier: dict[int, sp.csr_matrix] = {0: start}
        visited: dict[int, sp.csr_matrix] = {0: start}
        while frontier:
            budget.check()
            next_frontier: dict[int, sp.csr_matrix] = {}
            for y in range(1, automaton.m + 1):
                matrix = step[y]
                if matrix is None:
                    continue
                sources = [frontier[x]
                           for x in iter_set_bits(pred_masks[y])
                           if x in frontier]
                if not sources:
                    continue
                budget.check()
                src = _or_all(sources)
                reached = (src @ matrix).tocsr()
                stats.matmuls += 1
                stats.backward_steps += 1
                stats.storage_ops += int(src.nnz + matrix.nnz
                                         + reached.nnz)
                stats.product_edges += int(reached.nnz)
                if allowed is not None:
                    # Forbidden nodes drop out of the frontier, so no
                    # path may pass through (or end at) them — the
                    # matrix form of the §6 marked-visited trick.
                    reached = reached.multiply(allowed).tocsr()
                seen = visited.get(y)
                new = reached if seen is None else _and_not(reached, seen)
                if new.nnz == 0:
                    continue
                visited[y] = new if seen is None else \
                    (seen + new).tocsr()
                next_frontier[y] = new
                stats.product_nodes += int(new.nnz)
                if on_new(y, new):
                    return
            frontier = next_frontier
        stats.visited_nodes = max(
            stats.visited_nodes,
            sum(int(v.nnz) for v in visited.values()),
        )

    # -- one endpoint fixed ------------------------------------------------

    def _eval_anchored(self, rpq, expr, anchor, flipped, budget, limit,
                       forbidden, result, obs):
        prepared = self._prepare(expr, result.stats)
        automaton = prepared.automaton

        if automaton.nullable:
            label = self.dictionary.node_label(anchor)
            result.pairs.add((label, label))
            if limit is not None and len(result.pairs) >= limit:
                result.stats.truncated = True
                return

        n = self.store.num_nodes
        start = sp.csr_matrix(
            (np.ones(1, dtype=bool), ([0], [anchor])), shape=(1, n)
        )
        final_mask = automaton.final_mask
        spans = obs.spans if obs.enabled else None
        span = spans.start("run:matrix") if spans is not None else None

        def on_new(y, new):
            if not (final_mask >> y) & 1:
                return False
            cols = new.indices  # CSR of one row: already sorted
            if flipped:
                entries = ((int(c), anchor) for c in cols)
            else:
                entries = ((anchor, int(c)) for c in cols)
            return self._emit(entries, result, limit)

        try:
            self._closure(prepared, start, budget, forbidden,
                          result.stats, on_new)
        finally:
            if span is not None:
                span.set(anchor=anchor, reported=len(result.pairs))
                spans.end(span)

    # -- both endpoints fixed ----------------------------------------------

    def _eval_boolean(self, rpq, subject_id, object_id, budget,
                      forbidden, result, obs):
        prepared = self._prepare(rpq.expr, result.stats)
        automaton = prepared.automaton

        if automaton.nullable and subject_id == object_id:
            result.pairs.add((rpq.subject, rpq.object))
            return

        n = self.store.num_nodes
        start = sp.csr_matrix(
            (np.ones(1, dtype=bool), ([0], [subject_id])), shape=(1, n)
        )
        final_mask = automaton.final_mask
        spans = obs.spans if obs.enabled else None
        span = spans.start("run:matrix") if spans is not None else None
        found = False

        def on_new(y, new):
            nonlocal found
            if not (final_mask >> y) & 1:
                return False
            if object_id in set(int(c) for c in new.indices):
                found = True
                result.pairs.add((rpq.subject, rpq.object))
                return True
            return False

        try:
            self._closure(prepared, start, budget, forbidden,
                          result.stats, on_new)
        finally:
            if span is not None:
                span.set(found=found)
                spans.end(span)

    # -- both endpoints variable -------------------------------------------

    def _eval_var_var(self, rpq, budget, limit, forbidden, result, obs):
        prepared = self._prepare(rpq.expr, result.stats)
        automaton = prepared.automaton
        dictionary = self.dictionary
        n = self.store.num_nodes

        if automaton.nullable:
            # Zero-length paths: the (v, v) diagonal, in id order so a
            # cap cuts deterministically (matches the ring engine).
            for node_id in range(n):
                if node_id in forbidden:
                    continue
                label = dictionary.node_label(node_id)
                result.pairs.add((label, label))
                if limit is not None and len(result.pairs) >= limit:
                    result.stats.truncated = True
                    return

        start = sp.identity(n, dtype=bool, format="csr")
        if forbidden:
            keep = np.ones(n, dtype=bool)
            keep[list(forbidden)] = False
            start = sp.diags(keep, dtype=bool, format="csr")
        final_mask = automaton.final_mask
        spans = obs.spans if obs.enabled else None
        span = spans.start("run:matrix") if spans is not None else None

        def on_new(y, new):
            if not (final_mask >> y) & 1:
                return False
            coo = new.tocoo()  # CSR -> COO is row-major sorted
            entries = zip((int(r) for r in coo.row),
                          (int(c) for c in coo.col))
            return self._emit(entries, result, limit)

        try:
            self._closure(prepared, start, budget, forbidden,
                          result.stats, on_new)
        finally:
            if span is not None:
                span.set(reported=len(result.pairs))
                spans.end(span)

    # ------------------------------------------------------------------

    def explain(self, query: RPQ | str) -> dict:
        """Describe the matrix plan without running it: automaton
        size, step-matrix density, rounds are data-dependent."""
        rpq = as_query(query)
        stats = QueryStats()
        prepared = self._prepare(rpq.expr, stats)
        automaton = prepared.automaton
        step_nnz = {
            y: int(m.nnz)
            for y, m in enumerate(prepared.step_matrices)
            if m is not None
        }
        return {
            "query": str(rpq),
            "shape": rpq.shape(),
            "nfa_states": automaton.num_states,
            "nullable": automaton.nullable,
            "b_predicates": sorted(
                self.dictionary.predicate_label(p)
                for p in prepared.b_pids
            ),
            "strategy": {
                "vv": "identity-seeded closure (N x N frontier)",
                "cv": "anchored forward closure",
                "vc": "anchored forward closure on reversed expression",
                "cc": "anchored closure with target early-exit",
            }[rpq.shape()],
            "step_matrix_nnz": step_nnz,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatrixRPQEngine({self.store!r})"
