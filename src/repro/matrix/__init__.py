"""Sparse linear-algebra RPQ backend.

The ring engine of :mod:`repro.core.engine` evaluates RPQs
node-at-a-time — exactly the regime the paper's experiments show is
weakest on bulk/dense queries.  This package is the complementary
backend: the completed graph compiled to one boolean CSR matrix per
predicate (:mod:`repro.matrix.matrices`), the Glushkov product
evaluated by state-blocked boolean multiplication
(:mod:`repro.matrix.engine`), and a cost-model router that picks ring
or matrix per query (:mod:`repro.matrix.routed`, with the estimates in
:mod:`repro.bench.costmodel`).

Importing this package requires :mod:`scipy`; the engine registry
(:mod:`repro.baselines.registry`) guards the import so environments
without scipy keep every other engine working.
"""

from repro.matrix.engine import MatrixRPQEngine
from repro.matrix.matrices import PredicateMatrices
from repro.matrix.routed import RoutedRPQEngine

__all__ = [
    "MatrixRPQEngine",
    "PredicateMatrices",
    "RoutedRPQEngine",
]
