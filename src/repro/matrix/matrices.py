"""Per-predicate boolean adjacency matrices of the completed graph.

The linear-algebra view of an edge-labeled graph is one |V| x |V|
boolean matrix per predicate: ``M_p[s, o] = 1`` iff ``(s, p, o)`` is a
(completed) triple.  Because the graph is completed, every predicate's
inverse twin ``^p`` is itself a predicate of the alphabet, so the
transpose needed for two-way atoms already exists as its own matrix —
the matrix engine never transposes at query time.

Matrices are CSR with ``bool`` payload.  scipy's sparse matmul on bool
operands stays bool and *saturates* (many parallel paths still yield
``True``), which makes ``@`` exactly the boolean semiring product —
there is no integer-overflow hazard to guard against.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np
import scipy.sparse as sp


class PredicateMatrices:
    """The completed graph as one boolean CSR matrix per predicate.

    Parameters
    ----------
    num_nodes:
        The node-id universe; all matrices are ``num_nodes**2`` shaped.
    triples:
        Integer ``(subject, predicate, object)`` triples of the
        *completed* graph (both directions present).
    """

    def __init__(self, num_nodes: int,
                 triples: Iterable[tuple[int, int, int]]):
        self.num_nodes = num_nodes
        rows: dict[int, list[int]] = {}
        cols: dict[int, list[int]] = {}
        for s, p, o in triples:
            rows.setdefault(p, []).append(s)
            cols.setdefault(p, []).append(o)
        shape = (num_nodes, num_nodes)
        self._matrices: dict[int, sp.csr_matrix] = {}
        for pid, r in rows.items():
            data = np.ones(len(r), dtype=bool)
            self._matrices[pid] = sp.csr_matrix(
                (data, (np.asarray(r), np.asarray(cols[pid]))), shape=shape
            )

    @classmethod
    def from_index(cls, index) -> "PredicateMatrices":
        """Build (or reuse) the matrices of a ring index.

        The compiled store is memoised on the index object — the
        matrix engine, the routed engine and the benchmarks all share
        one compilation per index, mirroring how the baselines share
        one :class:`~repro.baselines.base.EncodedGraph`.
        """
        cached = getattr(index, "_matrix_store", None)
        if cached is not None:
            return cached
        store = cls(index.dictionary.num_nodes, index.ring.iter_triples())
        index._matrix_store = store
        return store

    # ------------------------------------------------------------------

    def matrix(self, pid: int) -> "sp.csr_matrix | None":
        """The boolean adjacency of one predicate, or ``None`` when no
        edge carries it."""
        return self._matrices.get(pid)

    def union(self, pids: Iterable[int]) -> "sp.csr_matrix | None":
        """Boolean OR of several predicates' matrices (``None`` when
        none has edges) — the transition-selected matrix of one
        Glushkov state whose atom matches several predicates."""
        parts = [m for m in (self._matrices.get(p) for p in pids)
                 if m is not None]
        if not parts:
            return None
        if len(parts) == 1:
            return parts[0]
        total = parts[0]
        for part in parts[1:]:
            total = total + part  # bool + bool == elementwise OR
        return total.tocsr()

    def nnz(self, pid: int) -> int:
        """Edge count of one predicate (the matrix's stored nonzeros)."""
        m = self._matrices.get(pid)
        return 0 if m is None else int(m.nnz)

    @property
    def predicates(self) -> list[int]:
        """Predicate ids that have at least one edge, sorted."""
        return sorted(self._matrices)

    def size_in_bits(self) -> int:
        """Compiled footprint: CSR index arrays plus the bool payload."""
        total = 0
        for m in self._matrices.values():
            total += m.indptr.nbytes + m.indices.nbytes + m.data.nbytes
        return total * 8

    def measure(self, name: str = "matrix"):
        """Space-audit tree: per-predicate CSR triplets (indptr, indices,
        data) so the audit can localise which predicates dominate."""
        from repro.obs.space import SpaceNode

        children = []
        for pid in sorted(self._matrices):
            m = self._matrices[pid]
            children.append(
                SpaceNode(
                    f"p{pid}",
                    children=[
                        SpaceNode("indptr", m.indptr.nbytes, kind="buffer",
                                  detail={"dtype": str(m.indptr.dtype)}),
                        SpaceNode("indices", m.indices.nbytes, kind="buffer",
                                  detail={"dtype": str(m.indices.dtype)}),
                        SpaceNode("data", m.data.nbytes, kind="buffer",
                                  detail={"dtype": str(m.data.dtype)}),
                    ],
                    kind="csr_matrix",
                    detail={"nnz": int(m.nnz)},
                )
            )
        return SpaceNode(
            name,
            nbytes=0 if not children else None,
            children=children,
            kind="predicate_matrices",
            detail={"num_nodes": self.num_nodes,
                    "predicates": len(self._matrices)},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nnz = sum(m.nnz for m in self._matrices.values())
        return (f"PredicateMatrices({len(self._matrices)} predicates, "
                f"|V|={self.num_nodes}, nnz={nnz})")
