"""Cost-model router over the ring and matrix backends.

One engine object, two execution substrates: every query is priced on
both backends by :func:`repro.bench.costmodel.choose_backend` and
dispatched to the cheaper one.  Decisions are memoised per normalised
query (the pricing inputs — automaton and predicate cardinalities —
do not depend on which constants anchor the query beyond its shape),
and every decision/outcome is exported through the metrics registry:

* ``router.decisions`` / ``router.to_ring`` / ``router.to_matrix`` —
  counters of routing outcomes;
* ``router.misroutes`` — evaluations whose actual latency exceeded
  :data:`~repro.bench.costmodel.MISROUTE_MARGIN` times the chosen
  backend's prediction (the router picked with a model that turned
  out wrong for this query);
* ``router.misroute_rate`` — a gauge, misroutes over total routed
  evaluations.  The underlying tallies live on the (shared) engine,
  so the gauge is globally correct even when service workers evaluate
  against private per-thread registries and merge last-wins.

The serving layer asks :meth:`RoutedRPQEngine.backend_for` *before*
its cache lookup so cached results never cross backends (backends cut
truncated results in different orders).
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.bench.costmodel import BackendChoice, choose_backend
from repro.core.engine import RingRPQEngine
from repro.core.query import RPQ, as_query
from repro.core.result import QueryResult
from repro.matrix.engine import MatrixRPQEngine
from repro.obs.metrics import NULL_METRICS


class RoutedRPQEngine:
    """Per-query ring/matrix dispatch behind the engine interface.

    Both sub-engines share the index (and therefore the compiled
    matrix store / prepare caches); metrics and the slow-query log are
    threaded through so telemetry attributes each query to the backend
    that actually ran it (``stats.backend`` is stamped by the
    sub-engine).
    """

    name = "routed"

    def __init__(
        self,
        index,
        metrics=None,
        slow_log=None,
        decision_cache_size: int = 512,
    ):
        self.index = index
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.ring_engine = RingRPQEngine(
            index, metrics=metrics, slow_log=slow_log
        )
        self.matrix_engine = MatrixRPQEngine(
            index, metrics=metrics, slow_log=slow_log
        )
        self._engines = {
            "ring": self.ring_engine,
            "matrix": self.matrix_engine,
        }
        self._decision_cache_size = decision_cache_size
        self._decisions: "OrderedDict[tuple, BackendChoice]" = OrderedDict()
        self._lock = threading.Lock()
        self.routed_count = 0
        self.misroute_count = 0

    # ------------------------------------------------------------------

    @property
    def dictionary(self):
        """The shared label dictionary."""
        return self.index.dictionary

    def choice_for(self, query: RPQ | str) -> BackendChoice:
        """The (memoised) routing decision for a query.

        Keyed on the expression plus the query shape: the cost inputs
        are automaton structure and predicate cardinalities, which the
        concrete anchor constants do not change.
        """
        rpq = as_query(query)
        key = (rpq.expr, rpq.shape())
        with self._lock:
            choice = self._decisions.get(key)
            if choice is not None:
                self._decisions.move_to_end(key)
                return choice
        choice = choose_backend(self.index, rpq)
        with self._lock:
            self._decisions[key] = choice
            while len(self._decisions) > self._decision_cache_size:
                self._decisions.popitem(last=False)
        return choice

    def backend_for(self, query: RPQ | str) -> str:
        """Name of the backend this query would run on (``ring`` /
        ``matrix``) — the serving layer keys its cache on this."""
        return self.choice_for(query).backend

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: RPQ | str,
        timeout: float | None = None,
        limit: int | None = None,
        forbidden_nodes=None,
        metrics=None,
        cancel=None,
        query_id: "str | None" = None,
    ) -> QueryResult:
        """Route and evaluate; contract identical to the sub-engines.

        ``result.stats.backend`` records which backend ran the query.
        """
        rpq = as_query(query)
        choice = self.choice_for(rpq)
        obs = metrics if metrics is not None else self.metrics
        if obs.enabled:
            obs.inc("router.decisions")
            obs.inc("router.to_ring" if choice.backend == "ring"
                    else "router.to_matrix")
        engine = self._engines[choice.backend]
        result = engine.evaluate(
            rpq, timeout=timeout, limit=limit,
            forbidden_nodes=forbidden_nodes, metrics=metrics,
            cancel=cancel, query_id=query_id,
        )
        misrouted = choice.is_misroute(result.stats.elapsed)
        with self._lock:
            self.routed_count += 1
            if misrouted:
                self.misroute_count += 1
            rate = self.misroute_count / self.routed_count
        if obs.enabled:
            if misrouted:
                obs.inc("router.misroutes")
            obs.set_gauge("router.misroute_rate", rate)
        return result

    @property
    def misroute_rate(self) -> float:
        """Misroutes over all routed evaluations (0.0 before any)."""
        with self._lock:
            if not self.routed_count:
                return 0.0
            return self.misroute_count / self.routed_count

    # ------------------------------------------------------------------

    def explain(self, query: RPQ | str) -> dict:
        """The chosen backend's plan plus the routing decision."""
        rpq = as_query(query)
        choice = self.choice_for(rpq)
        plan = self._engines[choice.backend].explain(rpq)
        plan["routing"] = {
            **choice.to_dict(),
            "decision": (
                f"{choice.backend} "
                f"(ring {choice.ring_seconds:.6f}s vs "
                f"matrix {choice.matrix_seconds:.6f}s predicted)"
            ),
        }
        return plan

    def size_in_bits(self) -> int:
        """Extra footprint over the ring: the compiled matrices."""
        return self.matrix_engine.size_in_bits()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoutedRPQEngine({self.index!r})"
