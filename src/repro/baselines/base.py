"""Shared substrate for the baseline engines.

:class:`EncodedGraph` is the integer-encoded completed graph in plain
adjacency form — what a conventional store's triple indexes provide.
All baselines resolve regular-expression atoms through the same
dictionary function as the ring engine, so answer semantics match
exactly and differential tests can compare engines pair for pair.
"""

from __future__ import annotations

import time
from collections import defaultdict
from collections.abc import Iterable

from repro.automata.glushkov import resolve_atom_to_predicates
from repro.automata.syntax import NegatedClass, RegexNode, Symbol
from repro.core.query import RPQ, as_query
from repro.core.result import QueryResult, QueryStats
from repro.errors import QueryTimeoutError
from repro.ring.dictionary import Dictionary

_TICK_EVERY = 2048


class EncodedGraph:
    """Adjacency view of the completed, integer-encoded graph.

    Because the graph is completed (every edge has its inverse twin),
    out-adjacency alone supports two-way traversal: following an edge
    backwards is following its inverse-labeled twin forwards.
    """

    def __init__(self, dictionary: Dictionary,
                 triples: Iterable[tuple[int, int, int]]):
        self.dictionary = dictionary
        triples = sorted(set(triples))
        self.num_nodes = dictionary.num_nodes
        self.num_predicates = dictionary.num_predicates
        self.triples = triples

        out: dict[int, list[tuple[int, int]]] = defaultdict(list)
        by_pred: dict[int, list[tuple[int, int]]] = defaultdict(list)
        by_sp: dict[tuple[int, int], list[int]] = defaultdict(list)
        for s, p, o in triples:
            out[s].append((p, o))
            by_pred[p].append((s, o))
            by_sp[(s, p)].append(o)
        self._out = dict(out)
        self._by_pred = dict(by_pred)
        self._by_sp = dict(by_sp)

    @classmethod
    def from_index(cls, index) -> "EncodedGraph":
        """Build from a :class:`~repro.ring.builder.RingIndex`.

        Decoding goes through the ring itself, which doubles as an
        integration test of its triple enumeration.
        """
        return cls(index.dictionary, index.ring.iter_triples())

    # ------------------------------------------------------------------

    def out_edges(self, node: int) -> list[tuple[int, int]]:
        """Outgoing ``(predicate, target)`` pairs of ``node``."""
        return self._out.get(node, [])

    def edges_of(self, pid: int) -> list[tuple[int, int]]:
        """All ``(subject, object)`` pairs labeled ``pid``."""
        return self._by_pred.get(pid, [])

    def targets(self, node: int, pid: int) -> list[int]:
        """Objects of ``(node, pid, ?o)`` — an SPO index probe.

        Real stores answer bound-subject, bound-predicate lookups from
        their SPO/PSO order without scanning the node's other edges;
        the ALP baselines use this for single-predicate steps.
        """
        return self._by_sp.get((node, pid), [])

    def predicate_count(self, pid: int) -> int:
        """Number of edges labeled ``pid``."""
        return len(self._by_pred.get(pid, ()))

    def size_in_bits(self) -> int:
        """Raw adjacency payload: 3 x 32-bit ids per (completed) triple,
        stored twice (out-adjacency + predicate index)."""
        return len(self.triples) * 3 * 32 * 2


class _Budget:
    """Wall-clock budget shared by one baseline evaluation."""

    __slots__ = ("deadline", "start", "ticks")

    def __init__(self, timeout: float | None):
        self.start = time.monotonic()
        self.deadline = None if timeout is None else self.start + timeout
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1
        if self.deadline is not None and self.ticks % _TICK_EVERY == 0:
            if time.monotonic() > self.deadline:
                raise QueryTimeoutError(
                    time.monotonic() - self.start, self.deadline - self.start
                )

    def elapsed(self) -> float:
        return time.monotonic() - self.start


class BaselineEngine:
    """Template for baseline engines: shared dispatch and bookkeeping.

    Subclasses implement :meth:`_evaluate` over integer node ids; this
    class handles parsing, unknown constants, timeout accounting and
    decoding back to labels.
    """

    #: Short identifier used by the registry and benchmark tables.
    name = "baseline"

    def __init__(self, graph: EncodedGraph):
        self.graph = graph
        self.dictionary = graph.dictionary

    # ------------------------------------------------------------------

    def evaluate(
        self,
        query: RPQ | str,
        timeout: float | None = None,
        limit: int | None = None,
    ) -> QueryResult:
        """Evaluate an RPQ under set semantics (same contract as the
        ring engine: partial results on timeout / result cap)."""
        rpq = as_query(query)
        stats = QueryStats()
        stats.backend = self.name
        budget = _Budget(timeout)
        result = QueryResult(stats=stats)

        if limit is not None and limit <= 0:
            # Same short-circuit as the ring engine: a non-positive cap
            # yields an empty truncated result without touching data.
            stats.truncated = True
            stats.elapsed = budget.elapsed()
            return result

        subject_id = object_id = None
        known = True
        if not rpq.subject_is_var:
            if self.dictionary.has_node(rpq.subject):
                subject_id = self.dictionary.node_id(rpq.subject)
            else:
                known = False
        if not rpq.object_is_var:
            if self.dictionary.has_node(rpq.object):
                object_id = self.dictionary.node_id(rpq.object)
            else:
                known = False

        if known:
            try:
                pairs = self._evaluate(
                    rpq.expr, subject_id, object_id, budget, limit, stats
                )
            except QueryTimeoutError:
                stats.timed_out = True
                pairs = set()
            label = self.dictionary.node_label
            result.pairs = {(label(s), label(o)) for s, o in pairs}
        stats.elapsed = budget.elapsed()
        return result

    # ------------------------------------------------------------------

    def _evaluate(
        self,
        expr: RegexNode,
        subject_id: int | None,
        object_id: int | None,
        budget: _Budget,
        limit: int | None,
        stats: QueryStats,
    ) -> set[tuple[int, int]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def atom_predicates(self, atom: Symbol | NegatedClass) -> frozenset[int]:
        """Predicate ids matched by an atom (shared resolution)."""
        return resolve_atom_to_predicates(atom, self.dictionary)

    def all_nodes(self) -> range:
        """Every node id (the zero-length-path domain)."""
        return range(self.graph.num_nodes)

    def zero_length_pairs(
        self, subject_id: int | None, object_id: int | None
    ) -> set[tuple[int, int]]:
        """Pairs contributed by the empty path for a nullable expression."""
        if subject_id is not None and object_id is not None:
            return {(subject_id, object_id)} if subject_id == object_id \
                else set()
        if subject_id is not None:
            return {(subject_id, subject_id)}
        if object_id is not None:
            return {(object_id, object_id)}
        return {(v, v) for v in self.all_nodes()}

    def size_in_bits(self) -> int:
        """Measured footprint of the engine's own data (adjacency)."""
        return self.graph.size_in_bits()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(|G|={len(self.graph.triples)})"
