"""SPARQL property-path evaluation via ALP (Arbitrary Length Paths).

Jena and Blazegraph implement the SPARQL 1.1 spec's navigational
procedure: fixed-length path fragments become joins, and ``*``/``+``
fragments run the ALP breadth-first walk once per start binding (§5:
*"Jena and Blazegraph implement a navigational BFS-style function
called ALP"*).  Two profiles are provided:

* :class:`AlpEngine` ("jena") — spec-faithful, no planning: paths are
  evaluated left to right, and an unbound start side means one ALP walk
  per *graph node*;
* :class:`AlpPlannerEngine` ("blazegraph") — the same machinery with
  two standard optimisations: the evaluation side is chosen by
  predicate cardinality, and unbound closures only start from nodes
  that can match the expression's first atom.

Both engines memoise single-step expansions within one query, playing
the role of the systems' triple caches.
"""

from __future__ import annotations

from collections import deque

from repro.automata.glushkov import build_glushkov
from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.baselines.base import BaselineEngine, _Budget
from repro.core.result import QueryStats
from repro.errors import ConstructionError


class AlpEngine(BaselineEngine):
    """Spec-faithful ALP evaluation, no query planning (Jena profile)."""

    name = "alp-jena"
    #: Whether the planner optimisations are active (subclass switch).
    plans = False

    # ------------------------------------------------------------------

    def _evaluate(
        self,
        expr: RegexNode,
        subject_id: int | None,
        object_id: int | None,
        budget: _Budget,
        limit: int | None,
        stats: QueryStats,
    ) -> set[tuple[int, int]]:
        flipped = False
        if subject_id is None and object_id is not None:
            # Both systems rewrite a bound-object path to its inverse —
            # that much is in the SPARQL spec's evaluation rules.
            expr = expr.reverse()
            subject_id, object_id = object_id, subject_id
            flipped = True
        elif (
            self.plans
            and subject_id is None
            and object_id is None
            and self._object_side_cheaper(expr)
        ):
            expr = expr.reverse()
            flipped = True

        evaluator = _AlpEvaluator(self, budget, stats, self.plans)
        seeds = None if subject_id is None else {subject_id}
        pairs = evaluator.eval(expr, seeds)
        if object_id is not None:
            pairs = {(s, o) for s, o in pairs if o == object_id}
        if flipped:
            pairs = {(o, s) for s, o in pairs}
        if limit is not None and len(pairs) > limit:
            stats.truncated = True
            pairs = set(sorted(pairs)[:limit])
        return pairs

    # ------------------------------------------------------------------

    def _object_side_cheaper(self, expr: RegexNode) -> bool:
        """Cardinality heuristic over the first/last atoms (planner)."""
        automaton = build_glushkov(expr)

        def side_cost(mask: int) -> int:
            total = 0
            seen: set[int] = set()
            state = mask
            position = 0
            while state:
                if state & 1 and position > 0:
                    atom = automaton.atoms[position - 1]
                    for pid in self.atom_predicates(atom):
                        if pid not in seen:
                            seen.add(pid)
                            total += self.graph.predicate_count(pid)
                state >>= 1
                position += 1
            return total

        return side_cost(automaton.last_mask) < side_cost(
            automaton.first_mask
        )


class AlpPlannerEngine(AlpEngine):
    """ALP with side selection and useful-start seeding (Blazegraph)."""

    name = "alp-blazegraph"
    plans = True


class _AlpEvaluator:
    """Left-to-right, seed-driven evaluation of one expression tree."""

    def __init__(self, engine: AlpEngine, budget: _Budget,
                 stats: QueryStats, plans: bool):
        self.engine = engine
        self.graph = engine.graph
        self.budget = budget
        self.stats = stats
        self.plans = plans
        self._step_memo: dict[tuple[int, int], frozenset[int]] = {}

    # ------------------------------------------------------------------

    def eval(self, expr: RegexNode,
             seeds: set[int] | None) -> set[tuple[int, int]]:
        """Pairs ``(s, o)`` matching ``expr`` with ``s`` restricted to
        ``seeds`` (``None`` = unrestricted)."""
        if isinstance(expr, Epsilon):
            domain = self.engine.all_nodes() if seeds is None else seeds
            return {(v, v) for v in domain}

        if isinstance(expr, (Symbol, NegatedClass)):
            return self._eval_atom(expr, seeds)

        if isinstance(expr, Union):
            pairs: set[tuple[int, int]] = set()
            for child in expr.children:
                pairs |= self.eval(child, seeds)
            return pairs

        if isinstance(expr, Concat):
            pairs = self.eval(expr.children[0], seeds)
            for child in expr.children[1:]:
                mid_to_subjects: dict[int, set[int]] = {}
                for s, mid in pairs:
                    mid_to_subjects.setdefault(mid, set()).add(s)
                next_pairs = self.eval(child, set(mid_to_subjects))
                pairs = set()
                for mid, o in next_pairs:
                    for s in mid_to_subjects.get(mid, ()):
                        pairs.add((s, o))
                        self.budget.tick()
            return pairs

        if isinstance(expr, Star):
            return self._closure(expr.child, seeds, include_zero=True)
        if isinstance(expr, Plus):
            return self._closure(expr.child, seeds, include_zero=False)
        if isinstance(expr, Optional):
            domain = self.engine.all_nodes() if seeds is None else seeds
            pairs = self.eval(expr.child, seeds)
            return pairs | {(v, v) for v in domain}

        raise ConstructionError(f"unknown regex node {type(expr).__name__}")

    # ------------------------------------------------------------------

    def _eval_atom(self, atom: Symbol | NegatedClass,
                   seeds: set[int] | None) -> set[tuple[int, int]]:
        pids = self.engine.atom_predicates(atom)
        pairs: set[tuple[int, int]] = set()
        if seeds is None:
            for pid in pids:
                edges = self.graph.edges_of(pid)
                self.stats.storage_ops += len(edges)
                for s, o in edges:
                    self.budget.tick()
                    pairs.add((s, o))
        elif isinstance(atom, Symbol):
            # Bound subject + bound predicate: an SPO index probe, the
            # way a real store evaluates it.
            for s in seeds:
                for pid in pids:
                    hits = self.graph.targets(s, pid)
                    self.stats.storage_ops += max(1, len(hits))
                    for o in hits:
                        self.budget.tick()
                        pairs.add((s, o))
        else:
            # Negated class: the store must scan the node's edges.
            for s in seeds:
                edges = self.graph.out_edges(s)
                self.stats.storage_ops += len(edges)
                for pid, o in edges:
                    self.budget.tick()
                    if pid in pids:
                        pairs.add((s, o))
        self.stats.product_edges += len(pairs)
        return pairs

    # ------------------------------------------------------------------

    def _closure(self, child: RegexNode, seeds: set[int] | None,
                 include_zero: bool) -> set[tuple[int, int]]:
        """The ALP procedure: one BFS per start binding."""
        # A nullable child makes E+ contain ε: zero-length pairs apply
        # even without the Kleene star's explicit zero case.
        include_zero = include_zero or child.length_range()[0] == 0
        if seeds is None:
            if self.plans:
                starts = self._useful_starts(child)
            else:
                starts = set(self.engine.all_nodes())
            if include_zero:
                # Zero-length paths range over every node regardless.
                zero = {(v, v) for v in self.engine.all_nodes()}
            else:
                zero = set()
        else:
            starts = set(seeds)
            zero = {(v, v) for v in starts} if include_zero else set()

        pairs = set(zero)
        child_key = id(child)
        for start in starts:
            self.budget.tick()
            reached = self._alp_walk(child, child_key, start)
            pairs.update((start, node) for node in reached)
        return pairs

    def _alp_walk(self, child: RegexNode, child_key: int,
                  start: int) -> set[int]:
        """Nodes reachable from ``start`` by one-or-more child steps."""
        visited: set[int] = set()
        frontier = deque(self._step(child, child_key, start))
        visited.update(frontier)
        while frontier:
            self.budget.tick()
            node = frontier.popleft()
            self.stats.product_nodes += 1
            for nxt in self._step(child, child_key, node):
                if nxt not in visited:
                    visited.add(nxt)
                    frontier.append(nxt)
        return visited

    def _step(self, child: RegexNode, child_key: int,
              node: int) -> frozenset[int]:
        # Only atomic steps are memoised: real systems cache triple
        # lookups, not the expansions of compound sub-path expressions,
        # which ALP re-evaluates on every step.
        atomic = isinstance(child, (Symbol, NegatedClass))
        memo_key = (child_key, node)
        if atomic:
            cached = self._step_memo.get(memo_key)
            if cached is not None:
                self.stats.storage_ops += 1
                return cached
        targets = frozenset(o for _, o in self.eval(child, {node}))
        if atomic:
            self._step_memo[memo_key] = targets
        return targets

    def _useful_starts(self, child: RegexNode) -> set[int]:
        """Planner seeding: nodes with an edge matching a first atom."""
        automaton = build_glushkov(child)
        useful: set[int] = set()
        position = 0
        mask = automaton.first_mask
        while mask:
            if mask & 1 and position > 0:
                atom = automaton.atoms[position - 1]
                for pid in self.engine.atom_predicates(atom):
                    for s, _ in self.graph.edges_of(pid):
                        useful.add(s)
            mask >>= 1
            position += 1
        return useful
