"""Engine registry: build every comparable engine from one index.

The benchmark harness asks for "all systems of Table 2"; this module
wires the ring engine and the three baseline profiles to a common
construction path, including the space model used for the table's
bytes-per-edge column (see :mod:`repro.bench.space` for the model's
derivation).
"""

from __future__ import annotations

from repro.baselines.alp import AlpEngine, AlpPlannerEngine
from repro.baselines.base import EncodedGraph
from repro.baselines.product_bfs import ProductBFSEngine
from repro.baselines.transitive import SemiNaiveEngine
from repro.core.engine import RingRPQEngine
from repro.errors import ConstructionError
from repro.ring.builder import RingIndex

#: Baseline engine classes by name.
BASELINE_CLASSES = {
    AlpEngine.name: AlpEngine,
    AlpPlannerEngine.name: AlpPlannerEngine,
    ProductBFSEngine.name: ProductBFSEngine,
    SemiNaiveEngine.name: SemiNaiveEngine,
}

#: The Table 2 line-up, in the paper's column order.
TABLE2_ENGINES = (
    "ring",
    AlpEngine.name,            # Jena
    SemiNaiveEngine.name,      # Virtuoso
    AlpPlannerEngine.name,     # Blazegraph
)

#: Pretty names matching the paper's columns.
PAPER_NAMES = {
    "ring": "Ring",
    AlpEngine.name: "Jena (ALP)",
    SemiNaiveEngine.name: "Virtuoso (semi-naive)",
    AlpPlannerEngine.name: "Blazegraph (ALP+plan)",
    ProductBFSEngine.name: "Product-BFS",
    "matrix": "Sparse matrix",
    "routed": "Routed (ring/matrix)",
}

#: Engines that need scipy (the matrix backend and its router); built
#: lazily so environments without scipy keep the rest of the registry.
MATRIX_ENGINES = ("matrix", "routed")


def _make_matrix_engine(name: str, index: RingIndex):
    try:
        from repro.matrix import MatrixRPQEngine, RoutedRPQEngine
    except ImportError as exc:
        raise ConstructionError(
            f"engine {name!r} needs scipy (sparse matrices): {exc}"
        ) from exc
    if name == "matrix":
        return MatrixRPQEngine(index)
    return RoutedRPQEngine(index)


def make_engine(name: str, index: RingIndex,
                encoded: EncodedGraph | None = None):
    """Instantiate one engine by registry name."""
    if name == "ring":
        return RingRPQEngine(index)
    if name in MATRIX_ENGINES:
        return _make_matrix_engine(name, index)
    cls = BASELINE_CLASSES.get(name)
    if cls is None:
        raise ConstructionError(
            f"unknown engine {name!r}; known: ring, "
            + ", ".join(sorted((*BASELINE_CLASSES, *MATRIX_ENGINES)))
        )
    if encoded is None:
        encoded = EncodedGraph.from_index(index)
    return cls(encoded)


def all_engines(index: RingIndex, names: tuple[str, ...] = TABLE2_ENGINES):
    """Build the requested engines, sharing one encoded graph."""
    encoded = EncodedGraph.from_index(index)
    return {name: make_engine(name, index, encoded) for name in names}
