"""Relational evaluation with a semi-naive transitive-closure operator.

Virtuoso evaluates SPARQL property paths by translating them onto its
relational engine, where arbitrary-length parts become a transitive
closure (§5: *"Virtuoso uses a transitive closure operator implemented
over its relational database engine"*).  This engine mirrors that
profile:

* every subexpression is materialised bottom-up as a set of
  ``(subject, object)`` pairs (joins for ``/``, unions for ``|``);
* ``*`` and ``+`` run a semi-naive fixpoint over the child relation;
* when the *whole* expression is a closure and one endpoint is a
  constant, the closure is evaluated goal-directed from that constant
  (Virtuoso's transitive operator is directional) — inner closures are
  always fully materialised.

The bulk-materialisation style makes it competitive on mid-size
workloads and prone to blow-ups on unrestricted closures, matching
Virtuoso's placing in the paper's Table 2.
"""

from __future__ import annotations

from collections import defaultdict, deque

from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.baselines.base import BaselineEngine, _Budget
from repro.core.result import QueryStats
from repro.errors import ConstructionError

Relation = set[tuple[int, int]]


class SemiNaiveEngine(BaselineEngine):
    """Bottom-up relational RPQ evaluation (Virtuoso profile)."""

    name = "seminaive-virtuoso"

    def _evaluate(
        self,
        expr: RegexNode,
        subject_id: int | None,
        object_id: int | None,
        budget: _Budget,
        limit: int | None,
        stats: QueryStats,
    ) -> Relation:
        evaluator = _RelationalEvaluator(self, budget, stats)

        anchored = self._anchored_toplevel_closure(
            expr, subject_id, object_id, evaluator
        )
        if anchored is not None:
            pairs = anchored
        else:
            pairs = evaluator.eval(expr)
            if subject_id is not None:
                pairs = {(s, o) for s, o in pairs if s == subject_id}
            if object_id is not None:
                pairs = {(s, o) for s, o in pairs if o == object_id}

        if limit is not None and len(pairs) > limit:
            stats.truncated = True
            pairs = set(sorted(pairs)[:limit])
        return pairs

    # ------------------------------------------------------------------

    def _anchored_toplevel_closure(
        self,
        expr: RegexNode,
        subject_id: int | None,
        object_id: int | None,
        evaluator: "_RelationalEvaluator",
    ) -> Relation | None:
        """Goal-directed closure when the root is ``*``/``+`` and one
        endpoint is fixed; ``None`` when not applicable."""
        if not isinstance(expr, (Star, Plus)):
            return None
        if subject_id is None and object_id is None:
            return None

        base = evaluator.eval(expr.child)
        include_zero = isinstance(expr, Star)

        if subject_id is not None:
            forward = _adjacency(base, forward=True)
            reached = _bfs(forward, subject_id, evaluator.budget)
            if include_zero:
                reached.add(subject_id)
            pairs = {(subject_id, o) for o in reached}
            if object_id is not None:
                pairs = {(s, o) for s, o in pairs if o == object_id}
            return pairs

        backward = _adjacency(base, forward=False)
        reached = _bfs(backward, object_id, evaluator.budget)
        if include_zero:
            reached.add(object_id)
        return {(s, object_id) for s in reached}

    def _evaluate_domain(self) -> range:
        return self.all_nodes()


class _RelationalEvaluator:
    """Materialises every subexpression as a relation."""

    def __init__(self, engine: SemiNaiveEngine, budget: _Budget,
                 stats: QueryStats):
        self.engine = engine
        self.graph = engine.graph
        self.budget = budget
        self.stats = stats

    def eval(self, expr: RegexNode) -> Relation:
        if isinstance(expr, Epsilon):
            return {(v, v) for v in self.engine.all_nodes()}

        if isinstance(expr, (Symbol, NegatedClass)):
            pairs: Relation = set()
            for pid in self.engine.atom_predicates(expr):
                edges = self.graph.edges_of(pid)
                self.stats.storage_ops += len(edges)
                for edge in edges:
                    self.budget.tick()
                    pairs.add(edge)
            self.stats.product_edges += len(pairs)
            return pairs

        if isinstance(expr, Union):
            out: Relation = set()
            for child in expr.children:
                out |= self.eval(child)
            return out

        if isinstance(expr, Concat):
            result = self.eval(expr.children[0])
            for child in expr.children[1:]:
                result = self._join(result, self.eval(child))
            return result

        if isinstance(expr, Star):
            return self._closure(self.eval(expr.child), include_zero=True)
        if isinstance(expr, Plus):
            return self._closure(self.eval(expr.child), include_zero=False)
        if isinstance(expr, Optional):
            zero = {(v, v) for v in self.engine.all_nodes()}
            return self.eval(expr.child) | zero

        raise ConstructionError(f"unknown regex node {type(expr).__name__}")

    # ------------------------------------------------------------------

    def _join(self, left: Relation, right: Relation) -> Relation:
        """Hash join on ``left.object = right.subject``."""
        by_subject: dict[int, list[int]] = defaultdict(list)
        for s, o in right:
            by_subject[s].append(o)
        out: Relation = set()
        for s, mid in left:
            hits = by_subject.get(mid, ())
            self.stats.storage_ops += max(1, len(hits))
            for o in hits:
                self.budget.tick()
                out.add((s, o))
        return out

    def _closure(self, base: Relation, include_zero: bool) -> Relation:
        """Semi-naive transitive closure of a pair relation."""
        adjacency = _adjacency(base, forward=True)
        total: Relation = set(base)
        delta: Relation = set(base)
        while delta:
            new_delta: Relation = set()
            for s, mid in delta:
                hits = adjacency.get(mid, ())
                self.stats.storage_ops += max(1, len(hits))
                for o in hits:
                    self.budget.tick()
                    pair = (s, o)
                    if pair not in total:
                        total.add(pair)
                        new_delta.add(pair)
            delta = new_delta
        self.stats.product_edges += len(total)
        if include_zero:
            total |= {(v, v) for v in self.engine.all_nodes()}
        return total


def _adjacency(relation: Relation, forward: bool) -> dict[int, list[int]]:
    adjacency: dict[int, list[int]] = defaultdict(list)
    for s, o in relation:
        if forward:
            adjacency[s].append(o)
        else:
            adjacency[o].append(s)
    return dict(adjacency)


def _bfs(adjacency: dict[int, list[int]], start: int,
         budget: _Budget) -> set[int]:
    """Nodes reachable from ``start`` via one-or-more adjacency steps."""
    visited: set[int] = set()
    frontier = deque(adjacency.get(start, ()))
    visited.update(frontier)
    while frontier:
        budget.tick()
        node = frontier.popleft()
        for nxt in adjacency.get(node, ()):
            if nxt not in visited:
                visited.add(nxt)
                frontier.append(nxt)
    return visited
