"""Classical product-graph BFS (the "traditional algorithm" of §1).

The query's expression is compiled to an ε-free NFA via Thompson's
construction; evaluation is a breadth-first search over (graph node,
NFA state) pairs, expanding the product graph lazily one node at a
time.  This is the algorithm the paper's complexity discussion is
anchored on, and the ablation counterpart of the ring engine's
bit-parallel multi-state traversal.
"""

from __future__ import annotations

from collections import deque

from repro.automata.syntax import RegexNode
from repro.automata.thompson import EpsilonFreeNFA, build_thompson
from repro.baselines.base import BaselineEngine, _Budget
from repro.core.result import QueryStats


class ProductBFSEngine(BaselineEngine):
    """Node-at-a-time BFS over the lazily expanded product graph."""

    name = "product-bfs"

    # ------------------------------------------------------------------

    def _compile(self, expr: RegexNode) -> tuple[EpsilonFreeNFA,
                                                 list[dict[int, list[int]]]]:
        """Thompson NFA plus per-state predicate→targets transition maps."""
        nfa = build_thompson(expr)
        delta: list[dict[int, list[int]]] = [dict() for _ in
                                             range(nfa.num_states)]
        for state in range(nfa.num_states):
            for atom, target in nfa.successors(state):
                for pid in self.atom_predicates(atom):
                    delta[state].setdefault(pid, []).append(target)
        return nfa, delta

    def _evaluate(
        self,
        expr: RegexNode,
        subject_id: int | None,
        object_id: int | None,
        budget: _Budget,
        limit: int | None,
        stats: QueryStats,
    ) -> set[tuple[int, int]]:
        # Normalise to a forward search from the subject side: a fixed
        # object becomes a fixed subject of the reversed expression.
        flipped = subject_id is None and object_id is not None
        if flipped:
            expr = expr.reverse()
            subject_id, object_id = object_id, subject_id

        nfa, delta = self._compile(expr)
        stats.nfa_states = max(stats.nfa_states, nfa.num_states)
        pairs: set[tuple[int, int]] = set()
        # Both endpoints fixed means at most one answer, so a cap of
        # >= 1 can never cut anything; the ring engine likewise never
        # tags its boolean path truncated.
        capped = limit is not None and (
            subject_id is None or object_id is None
        )

        nullable = nfa.initial in nfa.finals
        if nullable:
            # Zero-length pairs are of the form (v, v), so the flip
            # normalisation does not affect them.
            pairs |= self.zero_length_pairs(subject_id, object_id)

        if subject_id is not None:
            starts: list[int] = [subject_id]
        else:
            # Variable-to-variable: one BFS per node that has at least
            # one edge matching some initial NFA transition.
            useful = set()
            for pid in delta[nfa.initial]:
                for s, _ in self.graph.edges_of(pid):
                    useful.add(s)
            starts = sorted(useful)

        for start in starts:
            budget.tick()
            found = self._bfs(
                nfa, delta, start, object_id, budget, stats
            )
            if object_id is not None:
                found &= {object_id}
            for node in found:
                pairs.add((node, start) if flipped else (start, node))
                if capped and len(pairs) >= limit:
                    stats.truncated = True
                    return set(sorted(pairs)[:limit])
        if capped and len(pairs) >= limit:
            # The zero-length pairs of a nullable expression can reach
            # the cap before the search even starts; hitting the cap
            # exactly still tags the result (the engine stopped *at*
            # the cap and cannot know the answer set was complete).
            stats.truncated = True
            pairs = set(sorted(pairs)[:limit])
        return pairs

    # ------------------------------------------------------------------

    def _bfs(
        self,
        nfa: EpsilonFreeNFA,
        delta: list[dict[int, list[int]]],
        start: int,
        target: int | None,
        budget: _Budget,
        stats: QueryStats,
    ) -> set[int]:
        """All nodes reachable from ``start`` in an accepting NFA state
        via a non-empty path (empty paths are handled by the caller)."""
        visited = {(start, nfa.initial)}
        queue = deque(visited)
        found: set[int] = set()
        while queue:
            budget.tick()
            node, state = queue.popleft()
            stats.product_nodes += 1
            transitions = delta[state]
            if not transitions:
                continue
            edges = self.graph.out_edges(node)
            stats.storage_ops += len(edges)
            for pid, neighbour in edges:
                targets = transitions.get(pid)
                if not targets:
                    continue
                for next_state in targets:
                    key = (neighbour, next_state)
                    if key in visited:
                        continue
                    visited.add(key)
                    stats.product_edges += 1
                    if next_state in nfa.finals:
                        found.add(neighbour)
                        if target is not None and neighbour == target:
                            return found
                    queue.append(key)
        stats.visited_nodes = max(stats.visited_nodes, len(visited))
        return found
