"""Baseline RPQ engines the ring is compared against.

The paper benchmarks against Jena, Virtuoso and Blazegraph — external
Java/C++ servers that cannot be bundled here.  Following the
reproduction's substitution rule, this subpackage implements the
*algorithms* those systems use for property paths, over a shared
integer-encoded adjacency representation:

* :class:`~repro.baselines.product_bfs.ProductBFSEngine` — the
  classical product-graph BFS of §1 (node-at-a-time, Thompson NFA);
* :class:`~repro.baselines.alp.AlpEngine` — SPARQL's ALP (Arbitrary
  Length Paths) procedure, evaluated left-to-right with no planning:
  the Jena profile;
* :class:`~repro.baselines.alp.AlpPlannerEngine` — ALP plus
  cardinality-based side selection: the Blazegraph profile;
* :class:`~repro.baselines.transitive.SemiNaiveEngine` — bottom-up
  relational evaluation with a semi-naive transitive-closure operator:
  the Virtuoso profile.

All engines share the query model, set semantics, timeouts and result
caps of the core engine, so the benchmark harness can swap them in
behind a single interface (:class:`~repro.baselines.base.BaselineEngine`).
"""

from repro.baselines.alp import AlpEngine, AlpPlannerEngine
from repro.baselines.base import BaselineEngine, EncodedGraph
from repro.baselines.product_bfs import ProductBFSEngine
from repro.baselines.registry import all_engines, make_engine

from repro.baselines.transitive import SemiNaiveEngine

__all__ = [
    "AlpEngine",
    "AlpPlannerEngine",
    "BaselineEngine",
    "EncodedGraph",
    "ProductBFSEngine",
    "SemiNaiveEngine",
    "all_engines",
    "make_engine",
]
