"""Calibrated substrate cost model: modeled times on the paper's stack.

Why this exists
---------------
The paper compares a C++ ring against Java/C++ database servers; this
reproduction compares a pure-Python ring against pure-Python baselines.
The two substrates distort per-operation costs in *opposite*
directions: a wavelet-matrix rank costs ~3–4 µs under CPython (vs.
tens of nanoseconds in sdsl-based C++) while the baselines' elementary
operation — a dict/index probe — stays near C speed (~50 ns), far
*cheaper* than the per-triple cost of a real B+-tree-backed store.
``benchmarks/bench_microops.py`` measures this distortion at ~70x.

Wall-clock ratios therefore cannot transfer.  What does transfer is
the *work* each engine performs — the ``storage_ops`` counters every
engine maintains (wavelet ranks for the ring; index entries touched
for the baselines).  This module converts those counts into modeled
times using per-operation costs typical of the systems the engines
stand in for:

==================  ===========  =================================
engine              cost per op  provenance
==================  ===========  =================================
ring                60 ns        sdsl bitvector rank on RAM-resident
                                 data (published sdsl benchmarks;
                                 cache-missing reads ~50-100 ns)
alp-jena            1500 ns      Jena TDB per-triple iteration cost:
                                 B+-tree page walk + NodeId
                                 materialisation + JVM iterator
                                 overhead (commonly measured ~1-5 µs)
alp-blazegraph      1200 ns      Blazegraph statement-index iteration,
                                 same structure, leaner pipeline
seminaive-virtuoso  400 ns       Virtuoso column-store row scan
                                 (vectorised, C++)
product-bfs         100 ns       idealised in-memory adjacency list
==================  ===========  =================================

The constants are *inputs to a simulation*, documented and adjustable —
EXPERIMENTS.md reports modeled times clearly labeled as such, next to
(never instead of) the honest wall-clock measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.runner import BenchmarkResults, QueryRecord
from repro.bench.stats import Summary, summarize

#: Modeled per-storage-operation cost, in seconds.
DEFAULT_COSTS = {
    "ring": 60e-9,
    "alp-jena": 1500e-9,
    "alp-blazegraph": 1200e-9,
    "seminaive-virtuoso": 400e-9,
    "product-bfs": 100e-9,
}

#: The paper's timeout; modeled times are censored here.
MODELED_TIMEOUT = 60.0


@dataclass(frozen=True)
class CostModel:
    """Per-engine operation costs plus the modeled timeout."""

    costs: dict[str, float]
    timeout: float = MODELED_TIMEOUT

    @classmethod
    def default(cls) -> "CostModel":
        return cls(dict(DEFAULT_COSTS))

    def modeled_time(self, record: QueryRecord) -> float:
        """Modeled seconds for one query record.

        A query that hit the *wall-clock* timeout has censored
        operation counts, so it is pinned to the modeled timeout.
        """
        if record.timed_out:
            return self.timeout
        cost = self.costs.get(record.engine)
        if cost is None:
            raise KeyError(f"no cost model for engine {record.engine!r}")
        return min(self.timeout, record.storage_ops * cost)

    def summary(self, results: BenchmarkResults, engine: str,
                shape: str | None = None) -> Summary:
        """Table 2-style modeled summary for one engine."""
        records = [
            r for r in results.records
            if r.engine == engine and (shape is None or r.shape == shape)
        ]
        times = [self.modeled_time(r) for r in records]
        flags = [t >= self.timeout for t in times]
        return summarize(times, flags, self.timeout)

    def pattern_median(self, results: BenchmarkResults, engine: str,
                       pattern: str) -> float | None:
        """Median modeled time of one (engine, pattern) cell."""
        times = sorted(
            self.modeled_time(r)
            for r in results.records
            if r.engine == engine and r.pattern == pattern
        )
        if not times:
            return None
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2

    def pattern_wins(self, results: BenchmarkResults) -> dict[str, str]:
        """Per pattern, the engine with the lowest modeled median."""
        wins: dict[str, str] = {}
        for pattern in results.patterns():
            best, best_value = None, None
            for engine in results.engines():
                value = self.pattern_median(results, engine, pattern)
                if value is None:
                    continue
                if best_value is None or value < best_value:
                    best, best_value = engine, value
            if best is not None:
                wins[pattern] = best
        return wins
