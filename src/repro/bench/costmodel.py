"""Calibrated substrate cost model: modeled times on the paper's stack.

Why this exists
---------------
The paper compares a C++ ring against Java/C++ database servers; this
reproduction compares a pure-Python ring against pure-Python baselines.
The two substrates distort per-operation costs in *opposite*
directions: a wavelet-matrix rank costs ~3–4 µs under CPython (vs.
tens of nanoseconds in sdsl-based C++) while the baselines' elementary
operation — a dict/index probe — stays near C speed (~50 ns), far
*cheaper* than the per-triple cost of a real B+-tree-backed store.
``benchmarks/bench_microops.py`` measures this distortion at ~70x.

Wall-clock ratios therefore cannot transfer.  What does transfer is
the *work* each engine performs — the ``storage_ops`` counters every
engine maintains (wavelet ranks for the ring; index entries touched
for the baselines).  This module converts those counts into modeled
times using per-operation costs typical of the systems the engines
stand in for:

==================  ===========  =================================
engine              cost per op  provenance
==================  ===========  =================================
ring                60 ns        sdsl bitvector rank on RAM-resident
                                 data (published sdsl benchmarks;
                                 cache-missing reads ~50-100 ns)
alp-jena            1500 ns      Jena TDB per-triple iteration cost:
                                 B+-tree page walk + NodeId
                                 materialisation + JVM iterator
                                 overhead (commonly measured ~1-5 µs)
alp-blazegraph      1200 ns      Blazegraph statement-index iteration,
                                 same structure, leaner pipeline
seminaive-virtuoso  400 ns       Virtuoso column-store row scan
                                 (vectorised, C++)
product-bfs         100 ns       idealised in-memory adjacency list
==================  ===========  =================================

The constants are *inputs to a simulation*, documented and adjustable —
EXPERIMENTS.md reports modeled times clearly labeled as such, next to
(never instead of) the honest wall-clock measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.automata.glushkov import (
    build_glushkov,
    resolve_atom_to_predicates,
)
from repro.bench.runner import BenchmarkResults, QueryRecord
from repro.bench.stats import Summary, summarize
from repro.core.query import as_query

#: Modeled per-storage-operation cost, in seconds.
DEFAULT_COSTS = {
    "ring": 60e-9,
    "alp-jena": 1500e-9,
    "alp-blazegraph": 1200e-9,
    "seminaive-virtuoso": 400e-9,
    "product-bfs": 100e-9,
}

#: The paper's timeout; modeled times are censored here.
MODELED_TIMEOUT = 60.0


@dataclass(frozen=True)
class CostModel:
    """Per-engine operation costs plus the modeled timeout."""

    costs: dict[str, float]
    timeout: float = MODELED_TIMEOUT

    @classmethod
    def default(cls) -> "CostModel":
        return cls(dict(DEFAULT_COSTS))

    def modeled_time(self, record: QueryRecord) -> float:
        """Modeled seconds for one query record.

        A query that hit the *wall-clock* timeout has censored
        operation counts, so it is pinned to the modeled timeout.
        """
        if record.timed_out:
            return self.timeout
        cost = self.costs.get(record.engine)
        if cost is None:
            raise KeyError(f"no cost model for engine {record.engine!r}")
        return min(self.timeout, record.storage_ops * cost)

    def summary(self, results: BenchmarkResults, engine: str,
                shape: str | None = None) -> Summary:
        """Table 2-style modeled summary for one engine."""
        records = [
            r for r in results.records
            if r.engine == engine and (shape is None or r.shape == shape)
        ]
        times = [self.modeled_time(r) for r in records]
        flags = [t >= self.timeout for t in times]
        return summarize(times, flags, self.timeout)

    def pattern_median(self, results: BenchmarkResults, engine: str,
                       pattern: str) -> float | None:
        """Median modeled time of one (engine, pattern) cell."""
        times = sorted(
            self.modeled_time(r)
            for r in results.records
            if r.engine == engine and r.pattern == pattern
        )
        if not times:
            return None
        mid = len(times) // 2
        if len(times) % 2:
            return times[mid]
        return (times[mid - 1] + times[mid]) / 2

    def pattern_wins(self, results: BenchmarkResults) -> dict[str, str]:
        """Per pattern, the engine with the lowest modeled median."""
        wins: dict[str, str] = {}
        for pattern in results.patterns():
            best, best_value = None, None
            for engine in results.engines():
                value = self.pattern_median(results, engine, pattern)
                if value is None:
                    continue
                if best_value is None or value < best_value:
                    best, best_value = engine, value
            if best is not None:
                wins[pattern] = best
        return wins


# ----------------------------------------------------------------------
# Pre-execution work estimation (EXPLAIN)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PlanEstimate:
    """Predicted traversal work for one query, before running it.

    The estimates are coarse upper bounds derived from index statistics
    alone (predicate cardinalities off ``C_p``, alphabet sizes, wavelet
    heights) — the same inputs the §5 planner reads.  ``repro explain
    --analyze`` puts them next to the actual :class:`QueryStats`
    counters; large misestimation ratios are exactly where the
    ``B[v]``/``D[v]`` pruning beats (or loses to) the selectivity-only
    view of the query.
    """

    query: str
    shape: str
    #: Graph edges carrying any predicate of the automaton's B table.
    edges: int
    #: Bound on distinct product-graph node visits per traversal.
    touched_nodes: int
    #: Estimated Eq. 4–5 backward-search steps.
    backward_steps: int
    #: Estimated L_p wavelet nodes visited (§4.1 descents).
    lp_nodes: int
    #: Estimated L_s wavelet nodes visited (§4.2 descents).
    ls_nodes: int
    #: Estimated rank operations (2 per visited internal node).
    storage_ops: int
    #: ``storage_ops`` priced at the ring's modeled per-op cost.
    modeled_seconds: float

    def counts(self) -> dict[str, int]:
        """The estimated counters, keyed like ``QueryStats`` fields."""
        return {
            "lp_nodes": self.lp_nodes,
            "ls_nodes": self.ls_nodes,
            "backward_steps": self.backward_steps,
            "storage_ops": self.storage_ops,
        }


def estimate_rpq_cost(
    index, query, cost_per_op: float = DEFAULT_COSTS["ring"],
) -> PlanEstimate:
    """Estimate the traversal work of ``query`` against ``index``.

    The model, phase by phase:

    * every edge whose predicate appears in the automaton's ``B`` table
      can cross the traversal at most a constant number of times, so
      ``edges`` bounds the backward steps;
    * each product-graph expansion runs one L_p descent whose frontier
      can touch at most ``min(2^level, |B|)`` nodes per level (the
      descent forks only toward predicates in the ``B`` table);
      expansions are bounded by the nodes touched,
      ``min(|V|, edges)``;
    * each backward step runs one L_s descent; the ``D[v]`` marks make
      total L_s work output-sensitive — each *distinct* subject is
      discovered along one root-to-leaf path, giving
      ``touched × (height + 1)`` visited nodes;
    * variable-to-variable queries pay everything twice (the full-range
      binding pass, then the anchored runs over the reverse automaton).
    """
    rpq = as_query(query)
    shape = rpq.shape()
    automaton = build_glushkov(rpq.expr)
    dictionary = index.dictionary
    ring = index.ring
    b_masks = automaton.b_masks(
        lambda atom: resolve_atom_to_predicates(atom, dictionary)
    )
    pids = sorted(b_masks)
    edges = sum(ring.predicate_count(pid) for pid in pids)
    touched = min(ring.num_nodes, edges)

    n_preds = max(1, len(pids))
    lp_path = sum(
        min(1 << level, n_preds) for level in range(ring.L_p.height + 1)
    )
    descents = max(1, touched)
    lp_nodes = descents * lp_path
    ls_nodes = touched * (ring.L_s.height + 1)
    backward_steps = max(1, edges)

    if shape == "vv":
        lp_nodes *= 2
        ls_nodes *= 2
        backward_steps *= 2

    storage_ops = 2 * (lp_nodes + ls_nodes)
    return PlanEstimate(
        query=str(rpq),
        shape=shape,
        edges=edges,
        touched_nodes=touched,
        backward_steps=backward_steps,
        lp_nodes=lp_nodes,
        ls_nodes=ls_nodes,
        storage_ops=storage_ops,
        modeled_seconds=min(MODELED_TIMEOUT, storage_ops * cost_per_op),
    )


# ----------------------------------------------------------------------
# Backend routing (ring vs. sparse-matrix)
# ----------------------------------------------------------------------

#: Substrate-calibrated constants predicting *actual* wall-clock on
#: this Python stack (a different currency from ``modeled_seconds``,
#: which prices work on the paper's C++ substrate).  Calibrated
#: against the pinned trajectory workload; see docs/backends.md.
ROUTER_RING_OP_SECONDS = 7e-8
ROUTER_MATRIX_SETUP_SECONDS = 3e-4
ROUTER_MATRIX_MATMUL_SECONDS = 1.2e-4
ROUTER_MATRIX_NNZ_SECONDS = 6e-9
ROUTER_MATRIX_EMIT_SECONDS = 2e-9

#: Shape corrections for the ring prediction, fitted on the pinned
#: trajectory workload (3 000 nodes / 18 000 edges / 40 predicates):
#: ``storage_ops`` *underprices* variable-to-variable runs (the ring
#: restarts its product traversal per source, so constants per op do
#: not capture the fan-out — measured median 4.4x, p90 20x under) and
#: *overprices* anchored runs (a single anchored traversal touches a
#: small reachable cone; measured median 25x over).
ROUTER_RING_VV_FACTOR = 5.0
ROUTER_RING_ANCHORED_FACTOR = 0.05

#: An actual latency beyond this multiple of the chosen backend's
#: predicted seconds counts as a misroute (the model was wrong enough
#: that the decision cannot be trusted); the floor keeps sub-ms
#: queries from tripping the ratio on scheduler noise.
MISROUTE_MARGIN = 8.0
MISROUTE_FLOOR_SECONDS = 0.05


@dataclass(frozen=True)
class MatrixEstimate:
    """Predicted matrix-backend work for one query, before running it.

    The matrix engine's cost is dominated by sparse boolean multiplies:
    per closure round, one multiply per automaton position, each
    flowing roughly the step matrix's nonzeros plus the frontier's.
    Rounds are data-dependent (the closure depth of the product
    graph); the estimate uses ``m + log2 |V|`` — automaton depth plus
    the expected diameter of a random graph — as the planning bound.
    """

    query: str
    shape: str
    #: Automaton positions (one step matrix each).
    positions: int
    #: Graph edges carrying any predicate of the automaton's B table.
    edges: int
    #: Bound on distinct nodes entering any frontier.
    touched_nodes: int
    #: Estimated closure rounds to fixpoint.
    rounds: int
    #: Estimated sparse multiplies (``rounds x positions``).
    multiplies: int
    #: Estimated stored nonzeros flowing through all multiplies.
    flow_nnz: int
    #: Predicted wall-clock seconds on this substrate.
    predicted_seconds: float

    def counts(self) -> dict[str, int]:
        """The estimated counters, keyed like ``QueryStats`` fields."""
        return {
            "matmuls": self.multiplies,
            "product_edges": self.flow_nnz,
            "storage_ops": self.flow_nnz,
        }


def estimate_matrix_cost(index, query) -> MatrixEstimate:
    """Estimate the matrix backend's work for ``query``.

    Uses only index statistics (predicate cardinalities, node count)
    and the Glushkov automaton — the same inputs as
    :func:`estimate_rpq_cost`, so the router prices both backends from
    one pre-execution view of the query.
    """
    rpq = as_query(query)
    shape = rpq.shape()
    automaton = build_glushkov(rpq.expr)
    dictionary = index.dictionary
    ring = index.ring
    b_masks = automaton.b_masks(
        lambda atom: resolve_atom_to_predicates(atom, dictionary)
    )
    edges = sum(ring.predicate_count(pid) for pid in sorted(b_masks))
    n = ring.num_nodes
    touched = min(n, edges)

    m = max(1, automaton.m)
    rounds = m + int(math.log2(n + 1)) + 1
    multiplies = rounds * m

    # Per multiply the step matrix contributes ~edges/m nonzeros; the
    # frontier contributes up to ``touched`` entries for anchored runs
    # and up to ``touched`` entries *per live source row* for
    # variable-to-variable (the N x N closure) — approximated by one
    # extra ``touched`` factor spread over the rounds.
    per_multiply = edges // m + touched
    flow = multiplies * per_multiply
    results_bound = touched
    if shape == "vv":
        flow = multiplies * (edges // m) + rounds * touched * m
        flow += min(n * n, touched * touched)
        results_bound = min(n * n, touched * touched)

    predicted = (
        ROUTER_MATRIX_SETUP_SECONDS
        + multiplies * ROUTER_MATRIX_MATMUL_SECONDS
        + flow * ROUTER_MATRIX_NNZ_SECONDS
        + results_bound * ROUTER_MATRIX_EMIT_SECONDS
    )
    return MatrixEstimate(
        query=str(rpq),
        shape=shape,
        positions=automaton.m,
        edges=edges,
        touched_nodes=touched,
        rounds=rounds,
        multiplies=multiplies,
        flow_nnz=flow,
        predicted_seconds=min(MODELED_TIMEOUT, predicted),
    )


@dataclass(frozen=True)
class BackendChoice:
    """One routing decision: both backends priced, cheaper one chosen.

    ``ring_seconds`` / ``matrix_seconds`` are substrate-calibrated
    wall-clock predictions (this Python stack), *not* the sdsl-priced
    ``modeled_seconds`` of :class:`PlanEstimate` — the router compares
    what will actually run, the EXPLAIN comparison tables keep the
    paper-substrate currency.
    """

    backend: str
    ring_seconds: float
    matrix_seconds: float
    ring_estimate: PlanEstimate
    matrix_estimate: MatrixEstimate

    @property
    def chosen_seconds(self) -> float:
        """Predicted seconds of the backend that was picked."""
        return (self.ring_seconds if self.backend == "ring"
                else self.matrix_seconds)

    def is_misroute(self, actual_seconds: float,
                    margin: float = MISROUTE_MARGIN,
                    floor: float = MISROUTE_FLOOR_SECONDS) -> bool:
        """Whether an observed latency discredits this decision."""
        return actual_seconds > max(floor, margin * self.chosen_seconds)

    def to_dict(self) -> dict:
        """JSON-friendly routing summary for EXPLAIN output."""
        return {
            "backend": self.backend,
            "ring_seconds": self.ring_seconds,
            "matrix_seconds": self.matrix_seconds,
        }


def choose_backend(
    index,
    query,
    ring_op_seconds: float = ROUTER_RING_OP_SECONDS,
) -> BackendChoice:
    """Price a query on both backends and pick the cheaper one.

    The ring side reuses :func:`estimate_rpq_cost`'s work counts but
    prices them at the *Python* substrate cost (a wavelet step here is
    dict-and-int-ops, not an sdsl rank); the matrix side comes from
    :func:`estimate_matrix_cost`.  Both are coarse upper bounds built
    from the same index statistics, so their *ratio* is meaningful
    even where their absolute values are loose.
    """
    ring_est = estimate_rpq_cost(index, query)
    matrix_est = estimate_matrix_cost(index, query)
    shape_factor = (
        ROUTER_RING_VV_FACTOR if matrix_est.shape == "vv"
        else ROUTER_RING_ANCHORED_FACTOR
    )
    ring_seconds = min(MODELED_TIMEOUT, ring_est.storage_ops
                       * ring_op_seconds * shape_factor)
    backend = "ring" if ring_seconds <= matrix_est.predicted_seconds \
        else "matrix"
    return BackendChoice(
        backend=backend,
        ring_seconds=ring_seconds,
        matrix_seconds=matrix_est.predicted_seconds,
        ring_estimate=ring_est,
        matrix_estimate=matrix_est,
    )
