"""Aggregation helpers for benchmark timings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Average/median/timeouts over one set of query timings."""

    count: int
    average: float
    median: float
    timeouts: int

    def __str__(self) -> str:
        return (
            f"n={self.count} avg={self.average:.4f}s "
            f"med={self.median:.4f}s timeouts={self.timeouts}"
        )


def summarize(times: list[float], timed_out: list[bool],
              timeout: float) -> Summary:
    """Aggregate, counting timed-out queries at the timeout value.

    This is the paper's convention: a 60-second cap enters the average
    as 60 seconds (Jena's v-to-v *median* in Table 2 is literally
    60.00 — more than half its v-to-v queries timed out).
    """
    if not times:
        return Summary(0, 0.0, 0.0, 0)
    clamped = np.array(
        [timeout if flag else min(t, timeout)
         for t, flag in zip(times, timed_out)],
        dtype=np.float64,
    )
    return Summary(
        count=len(times),
        average=float(clamped.mean()),
        median=float(np.median(clamped)),
        timeouts=int(sum(timed_out)),
    )


@dataclass(frozen=True)
class FiveNumber:
    """Five-number summary backing one boxplot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "FiveNumber":
        arr = np.asarray(values, dtype=np.float64)
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return cls(float(arr.min()), float(q1), float(med), float(q3),
                   float(arr.max()))

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Deterministic and numpy-free on purpose: the target rank is
    ``(n - 1) * q / 100`` over the sorted values, interpolating
    linearly between the two bracketing order statistics (the same
    "linear" method as ``numpy.percentile``'s default, spelled out so
    trajectory files cannot drift with library versions).
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    if not values:
        raise ValueError("percentile of an empty sequence")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * fraction


#: The percentile levels trajectory files report per timing cell.
REPORT_PERCENTILES = (50.0, 90.0, 95.0, 99.0)


def percentiles(
    values: list[float], qs: tuple[float, ...] = REPORT_PERCENTILES,
) -> dict[str, float]:
    """``{"p50": ..., "p90": ..., ...}`` plus ``"max"`` for ``values``.

    Empty input returns ``{}`` so callers can splice the result into a
    report unconditionally.
    """
    if not values:
        return {}
    out = {f"p{q:g}": percentile(values, q) for q in qs}
    out["max"] = max(values)
    return out


def geometric_mean(values: list[float], floor: float = 1e-6) -> float:
    """Geometric mean with a floor to absorb zero timings."""
    arr = np.maximum(np.asarray(values, dtype=np.float64), floor)
    return float(np.exp(np.log(arr).mean()))
