"""Aggregation helpers for benchmark timings."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Average/median/timeouts over one set of query timings."""

    count: int
    average: float
    median: float
    timeouts: int

    def __str__(self) -> str:
        return (
            f"n={self.count} avg={self.average:.4f}s "
            f"med={self.median:.4f}s timeouts={self.timeouts}"
        )


def summarize(times: list[float], timed_out: list[bool],
              timeout: float) -> Summary:
    """Aggregate, counting timed-out queries at the timeout value.

    This is the paper's convention: a 60-second cap enters the average
    as 60 seconds (Jena's v-to-v *median* in Table 2 is literally
    60.00 — more than half its v-to-v queries timed out).
    """
    if not times:
        return Summary(0, 0.0, 0.0, 0)
    clamped = np.array(
        [timeout if flag else min(t, timeout)
         for t, flag in zip(times, timed_out)],
        dtype=np.float64,
    )
    return Summary(
        count=len(times),
        average=float(clamped.mean()),
        median=float(np.median(clamped)),
        timeouts=int(sum(timed_out)),
    )


@dataclass(frozen=True)
class FiveNumber:
    """Five-number summary backing one boxplot."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def of(cls, values: list[float]) -> "FiveNumber":
        arr = np.asarray(values, dtype=np.float64)
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return cls(float(arr.min()), float(q1), float(med), float(q3),
                   float(arr.max()))

    def as_tuple(self) -> tuple[float, float, float, float, float]:
        return (self.minimum, self.q1, self.median, self.q3, self.maximum)


def geometric_mean(values: list[float], floor: float = 1e-6) -> float:
    """Geometric mean with a floor to absorb zero timings."""
    arr = np.maximum(np.asarray(values, dtype=np.float64), floor)
    return float(np.exp(np.log(arr).mean()))
