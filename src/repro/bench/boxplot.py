"""Text rendering of timing boxplots (Fig. 8).

Each (pattern, engine) cell becomes one line: a log-scaled axis with
``|-----[==M==]-----|`` marking min, quartiles, median and max —
enough to read the same story as the paper's figure (which systems
win which patterns, and by how much).
"""

from __future__ import annotations

import math

from repro.bench.stats import FiveNumber

_AXIS_WIDTH = 46


def _position(value: float, lo: float, hi: float) -> int:
    """Map a value into [0, width) on a log scale."""
    if hi <= lo:
        return 0
    v = math.log10(max(value, lo))
    span = math.log10(hi) - math.log10(lo)
    frac = (v - math.log10(lo)) / span if span > 0 else 0.0
    return min(_AXIS_WIDTH - 1, max(0, round(frac * (_AXIS_WIDTH - 1))))


def render_box(summary: FiveNumber, lo: float, hi: float) -> str:
    """One boxplot line on a shared log axis ``[lo, hi]``."""
    cells = [" "] * _AXIS_WIDTH
    p_min = _position(summary.minimum, lo, hi)
    p_q1 = _position(summary.q1, lo, hi)
    p_med = _position(summary.median, lo, hi)
    p_q3 = _position(summary.q3, lo, hi)
    p_max = _position(summary.maximum, lo, hi)
    for i in range(p_min, p_max + 1):
        cells[i] = "-"
    for i in range(p_q1, p_q3 + 1):
        cells[i] = "="
    cells[p_min] = "|"
    cells[p_max] = "|"
    if p_q1 < p_q3:
        cells[p_q1] = "["
        cells[p_q3] = "]"
    cells[p_med] = "M"
    return "".join(cells)


def render_pattern_boxplots(
    results,
    floor: float = 1e-4,
) -> str:
    """The full Fig. 8 text figure from a
    :class:`~repro.bench.runner.BenchmarkResults`."""
    engines = results.engines()
    lo = floor
    hi = results.timeout
    name_width = max(len(e) for e in engines)
    lines: list[str] = []
    lines.append(
        f"time axis (log scale): {lo:g}s {'.' * (_AXIS_WIDTH - 14)} {hi:g}s"
    )
    for pattern in results.patterns():
        lines.append(f"\npattern: {pattern}")
        for engine in engines:
            summary = results.pattern_summary(engine, pattern)
            if summary is None:
                continue
            box = render_box(summary, lo, hi)
            lines.append(
                f"  {engine:<{name_width}} {box} "
                f"med={summary.median:.4f}s"
            )
    return "\n".join(lines)


def boxplot_csv(results) -> str:
    """Fig. 8 as CSV: one row per (pattern, engine) five-number summary."""
    rows = ["pattern,engine,min,q1,median,q3,max"]
    for pattern in results.patterns():
        for engine in results.engines():
            summary = results.pattern_summary(engine, pattern)
            if summary is None:
                continue
            mn, q1, med, q3, mx = summary.as_tuple()
            rows.append(
                f"\"{pattern}\",{engine},{mn:.6f},{q1:.6f},"
                f"{med:.6f},{q3:.6f},{mx:.6f}"
            )
    return "\n".join(rows) + "\n"
