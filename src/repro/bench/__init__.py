"""Benchmark harness: workload generation, timing, space accounting.

One module per concern:

* :mod:`repro.bench.patterns` — RPQ pattern classification and the
  paper's Table 1 reference distribution;
* :mod:`repro.bench.workload` — synthetic query-log generation that
  follows the Table 1 pattern mix;
* :mod:`repro.bench.space` — index space models (Table 2's
  bytes-per-edge column);
* :mod:`repro.bench.runner` — executing a query log across engines
  with timeouts and result caps;
* :mod:`repro.bench.stats` — aggregation (averages, medians, timeout
  counts, five-number summaries);
* :mod:`repro.bench.boxplot` — text rendering of Fig. 8's boxplots;
* :mod:`repro.bench.context` — one-stop benchmark environment builder;
* :mod:`repro.bench.table1` / :mod:`repro.bench.table2` /
  :mod:`repro.bench.fig8` — drivers that regenerate each published
  artifact (also runnable as ``python -m repro.bench.tableN``).
"""

from repro.bench.context import BenchmarkContext, build_context
from repro.bench.patterns import TABLE1_REFERENCE, classify_query
from repro.bench.runner import BenchmarkResults, run_benchmark
from repro.bench.workload import generate_query_log

__all__ = [
    "BenchmarkContext",
    "BenchmarkResults",
    "TABLE1_REFERENCE",
    "build_context",
    "classify_query",
    "generate_query_log",
    "run_benchmark",
]
