"""Index space accounting (Table 2's bytes-per-edge column).

Two kinds of numbers are produced:

* **measured** — actual bits allocated by our own structures (ring
  wavelet matrices with their rank directories; raw adjacency arrays
  for the baselines);
* **modeled** — the storage profile of the real systems the baselines
  stand in for, derived from their documented index layouts rather
  than hardcoded to the paper's table:

  - *Jena TDB*: three B+-tree triple indexes (SPO/POS/OSP), 3×8-byte
    NodeId entries, ~75% page fill;
  - *Blazegraph*: three B+-tree statement indexes with journal
    overhead (~7%) at ~85% fill;
  - *Virtuoso*: two full-row orders (PSOG/POGS) plus partial
    projections, column-compressed to ~56% of row size.

  The paper measures 95.83 / 90.79 / 60.07 bytes per edge for these
  systems; the models land within a few percent, which is the point:
  the 3–5× gap to the ring follows from layout arithmetic, not tuning.

All per-edge figures are normalised to edges of the *original* graph
(the ring internally stores 2n completed triples; the paper's 16.41
bytes/edge likewise includes the doubling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ring.builder import RingIndex


@dataclass(frozen=True)
class SystemModel:
    """Documented storage profile of one comparison system."""

    name: str
    index_orders: int
    entry_bytes: int
    page_fill: float
    overhead_factor: float

    def bytes_per_edge(self) -> float:
        """Modeled bytes per input edge."""
        return (
            self.index_orders * self.entry_bytes / self.page_fill
            * self.overhead_factor
        )


#: Models keyed by engine registry name.
SYSTEM_MODELS = {
    "alp-jena": SystemModel(
        name="Jena TDB",
        index_orders=3, entry_bytes=24, page_fill=0.75,
        overhead_factor=1.0,
    ),
    "alp-blazegraph": SystemModel(
        name="Blazegraph",
        index_orders=3, entry_bytes=24, page_fill=0.85,
        overhead_factor=1.07,
    ),
    "seminaive-virtuoso": SystemModel(
        name="Virtuoso",
        index_orders=2, entry_bytes=24, page_fill=0.90,
        overhead_factor=1.125,
    ),
    "product-bfs": SystemModel(
        name="Adjacency store",
        index_orders=2, entry_bytes=12, page_fill=1.0,
        overhead_factor=1.0,
    ),
}


def ring_bytes_per_edge(index: RingIndex) -> float:
    """Measured ring size per original (pre-completion) edge."""
    completed = len(index.ring)
    original = max(1, completed // 2) if completed else 1
    return index.ring.size_in_bits() / 8 / original


def ring_model_bytes_per_edge(index: RingIndex) -> float:
    """sdsl-modeled ring size per original edge (§5 layout)."""
    completed = len(index.ring)
    original = max(1, completed // 2) if completed else 1
    return index.ring.size_in_bits_model() / 8 / original


def packed_bytes_per_edge(index: RingIndex) -> float:
    """The paper's "packed form" baseline: ceil(log) bits per component
    of each original triple."""
    dictionary = index.dictionary
    node_bits = max(1, (dictionary.num_nodes - 1).bit_length())
    pred_bits = max(1, (max(1, dictionary.num_predicates // 2) - 1)
                    .bit_length())
    return (2 * node_bits + pred_bits) / 8


def engine_bytes_per_edge(name: str, index: RingIndex) -> float:
    """Modeled bytes per edge for any registry engine name."""
    if name == "ring":
        return ring_bytes_per_edge(index)
    model = SYSTEM_MODELS.get(name)
    if model is None:
        raise KeyError(f"no space model for engine {name!r}")
    return model.bytes_per_edge()


def query_working_set_bytes(index: RingIndex, nfa_bits: int = 16) -> float:
    """Absolute query-time working space of the ring engine, in bytes.

    Mirrors §5: the ``D`` visited array is one ``nfa_bits`` cell per
    node plus the lazy-initialisation structure, and ``B`` one cell per
    predicate — both tiny relative to the index.  This is the
    pre-execution estimate EXPLAIN prints; per-edge normalisation lives
    in :func:`working_space_bytes_per_edge`.
    """
    d_bits = index.dictionary.num_nodes * (nfa_bits + 2)
    b_bits = index.dictionary.num_predicates * nfa_bits
    return (d_bits + b_bits) / 8


def working_space_bytes_per_edge(index: RingIndex,
                                 nfa_bits: int = 16) -> float:
    """Query-time working space of the ring engine per original edge."""
    completed = len(index.ring)
    original = max(1, completed // 2) if completed else 1
    return query_working_set_bytes(index, nfa_bits) / original
