"""Synthetic query-log generation following the Table 1 pattern mix.

The paper's benchmark queries are the 1,952 unique timeout RPQs of the
Wikidata query logs — unavailable here, so the generator reproduces
their two structural properties:

* the *pattern mix* of Table 1 (stored in
  :data:`repro.bench.patterns.TABLE1_REFERENCE`), and
* the predicate/constant choices of real logs: predicates are drawn
  with probability proportional to their edge count (timeout queries
  hit popular predicates), and constants are drawn from nodes actually
  incident to the sampled predicate, so queries are non-trivially
  satisfiable like their Wikidata counterparts.
"""

from __future__ import annotations

import random

from repro.bench.patterns import TABLE1_REFERENCE, classify_query
from repro.core.query import RPQ
from repro.graph.model import Graph, is_inverse_label


class WorkloadGenerator:
    """Draws RPQs over a given graph following the Table 1 mix."""

    def __init__(self, graph: Graph, seed: int = 0):
        self.graph = graph
        self.rng = random.Random(seed)
        self._predicates = [
            p for p in graph.predicates if not is_inverse_label(p)
        ]
        if not self._predicates:
            raise ValueError("graph has no forward predicates")
        weights = [len(graph.edges_with_predicate(p))
                   for p in self._predicates]
        total = sum(weights)
        self._weights = [w / total for w in weights]
        # Endpoint pools per predicate, built lazily.
        self._subject_pool: dict[str, list[str]] = {}
        self._object_pool: dict[str, list[str]] = {}

    # ------------------------------------------------------------------

    def sample_predicates(self, k: int) -> list[str]:
        """``k`` predicates, popularity-weighted, repetition allowed."""
        return self.rng.choices(
            self._predicates, weights=self._weights, k=k
        )

    def _pool(self, predicate: str, side: str) -> list[str]:
        cache = self._subject_pool if side == "s" else self._object_pool
        pool = cache.get(predicate)
        if pool is None:
            edges = self.graph.edges_with_predicate(predicate)
            pool = sorted({s for s, _ in edges} if side == "s"
                          else {o for _, o in edges})
            cache[predicate] = pool
        return pool

    def sample_constant(self, predicate: str, side: str) -> str:
        """A node incident to ``predicate``: a subject or an object."""
        pool = self._pool(predicate, side)
        if not pool:
            return self.rng.choice(self.graph.nodes)
        return self.rng.choice(pool)

    # ------------------------------------------------------------------

    def make_query(self, subject_kind: str, template: str,
                   object_kind: str) -> RPQ:
        """Instantiate one pattern template into a concrete RPQ."""
        n_slots = template.count("{")
        predicates = self.sample_predicates(max(1, n_slots))
        expr_text = template.format(*predicates)

        if subject_kind == "c":
            # Anchor at a subject that actually starts a matching edge:
            # pick a subject of the first predicate.
            subject = self.sample_constant(predicates[0], "s")
        else:
            subject = "?x"
        if object_kind == "c":
            # Anchor at an object of the last predicate in the template.
            obj = self.sample_constant(predicates[-1], "o")
        else:
            obj = "?y"
        return RPQ.of(subject, expr_text, obj)


def generate_query_log(
    graph: Graph,
    scale: float = 1.0,
    seed: int = 0,
    min_per_pattern: int = 1,
) -> list[RPQ]:
    """A query log following Table 1, scaled by ``scale``.

    ``scale=1.0`` reproduces the reference counts (1,661 queries across
    the top-20 patterns); smaller scales shrink every pattern's count
    proportionally but keep at least ``min_per_pattern`` per pattern so
    every Fig. 8 row stays populated.  Queries are deduplicated, so the
    result can be slightly shorter than the target on small graphs.
    """
    generator = WorkloadGenerator(graph, seed)
    queries: list[RPQ] = []
    seen: set[str] = set()
    for pattern, count, s_kind, template, o_kind in TABLE1_REFERENCE:
        target = max(min_per_pattern, round(count * scale))
        attempts = 0
        produced = 0
        while produced < target and attempts < target * 20:
            attempts += 1
            query = generator.make_query(s_kind, template, o_kind)
            if classify_query(query) != pattern:
                raise AssertionError(
                    f"generator produced {classify_query(query)!r} "
                    f"for pattern {pattern!r}"
                )
            key = str(query)
            if key in seen:
                continue
            seen.add(key)
            queries.append(query)
            produced += 1
    return queries
