"""Figure 8 regenerator: per-pattern query-time boxplots.

Runs the same benchmark as Table 2 and renders, for every RPQ pattern
of the log, one boxplot per engine on a shared log-scale axis —
the text analogue of the paper's Fig. 8.  Also reports which engine
wins each pattern and what share of the log the ring-winning patterns
cover (the paper: best in 9/20 patterns ≈ 45.39% of the log, all of
them containing ``*`` or ``+``).

Run as ``python -m repro.bench.fig8 [--csv OUT.csv] [size knobs]``.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.bench.boxplot import boxplot_csv, render_pattern_boxplots
from repro.bench.context import BenchmarkContext, build_context
from repro.bench.costmodel import CostModel
from repro.bench.patterns import RECURSIVE_PATTERNS, classify_query
from repro.bench.runner import BenchmarkResults, run_benchmark


def compute_fig8(context: BenchmarkContext) -> BenchmarkResults:
    """Run the benchmark backing the figure."""
    return run_benchmark(
        context.engines,
        context.queries,
        timeout=context.timeout,
        limit=context.limit,
    )


def win_report(context: BenchmarkContext,
               results: BenchmarkResults) -> str:
    """Which engine wins each pattern, wall-clock and modeled."""
    wins = results.pattern_wins()
    model = CostModel.default()
    model_wins = model.pattern_wins(results)
    counts = Counter(classify_query(q) for q in context.queries)
    total = sum(counts.values())

    def share(winner_map: dict[str, str]) -> tuple[int, float]:
        ring_patterns = [p for p, e in winner_map.items() if e == "ring"]
        return (
            len(ring_patterns),
            sum(counts[p] for p in ring_patterns) / max(1, total),
        )

    lines = [
        "",
        "per-pattern winners (lowest median: wall-clock | modeled):",
    ]
    for pattern in results.patterns():
        marker = " (recursive)" if pattern in RECURSIVE_PATTERNS else ""
        lines.append(
            f"  {pattern:<14} -> {wins.get(pattern, '-'):<20} | "
            f"{model_wins.get(pattern, '-')}{marker}"
        )
    wall_n, wall_share = share(wins)
    model_n, model_share = share(model_wins)
    lines += [
        "",
        f"wall-clock: ring wins {wall_n}/{len(wins)} patterns "
        f"({100 * wall_share:.1f}% of the log)",
        f"modeled substrate: ring wins {model_n}/{len(model_wins)} "
        f"patterns ({100 * model_share:.1f}% of the log) "
        "(paper: 9/20 patterns, 45.39% of the log, all recursive)",
    ]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", type=str, default=None,
                        help="also write the five-number summaries as CSV")
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.edges is not None:
        overrides["n_edges"] = args.edges
    if args.scale is not None:
        overrides["log_scale"] = args.scale
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    context = build_context(seed=args.seed, **overrides)
    results = compute_fig8(context)

    print("Figure 8: distribution of query times per pattern\n")
    print(render_pattern_boxplots(results))
    print(win_report(context, results))

    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(boxplot_csv(results))
        print(f"\nwrote {args.csv}")


if __name__ == "__main__":
    main()
