"""Table 2 regenerator: index space and query-time statistics.

Builds the standard benchmark context, runs the full query log on the
Table 2 engine line-up (ring / Jena-ALP / Virtuoso-semi-naive /
Blazegraph-ALP+plan) and prints the same rows the paper reports:

* Space (bytes per edge),
* Average / Median query time and timeout counts,
* the c-to-v and v-to-v breakdowns,

plus the §5 in-text working-space figures and the paper's headline
ratios (space ratio vs the smallest competitor, speed-up vs the next
best average).

Run as ``python -m repro.bench.table2 [--nodes N] [--edges M] ...``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.bench.context import BenchmarkContext, build_context
from repro.bench.costmodel import CostModel
from repro.bench.runner import BenchmarkResults, run_benchmark
from repro.bench.space import (
    engine_bytes_per_edge,
    packed_bytes_per_edge,
    ring_bytes_per_edge,
    working_space_bytes_per_edge,
)
from repro.baselines.registry import PAPER_NAMES


@dataclass
class Table2:
    """The computed table, ready for rendering or assertions."""

    context: BenchmarkContext
    results: BenchmarkResults
    space: dict[str, float]

    def engines(self) -> list[str]:
        return self.results.engines()

    def speedup_vs_next_best(self) -> tuple[float, str]:
        """Ring's average-time speed-up over the best non-ring engine."""
        ring_avg = self.results.summary("ring").average
        best_other, best_name = None, ""
        for engine in self.engines():
            if engine == "ring":
                continue
            avg = self.results.summary(engine).average
            if best_other is None or avg < best_other:
                best_other, best_name = avg, engine
        if not best_other or not ring_avg:
            return (float("inf"), best_name)
        return (best_other / ring_avg, best_name)

    def space_ratio_range(self) -> tuple[float, float]:
        """min/max ratio of competitor space to ring space."""
        ring = self.space["ring"]
        others = [v for k, v in self.space.items() if k != "ring"]
        return (min(others) / ring, max(others) / ring)


def compute_table2(context: BenchmarkContext) -> Table2:
    """Run the benchmark and assemble the table."""
    results = run_benchmark(
        context.engines,
        context.queries,
        timeout=context.timeout,
        limit=context.limit,
    )
    space = {
        name: engine_bytes_per_edge(name, context.index)
        for name in context.engines
    }
    return Table2(context=context, results=results, space=space)


def _format_ops(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def format_table2(table: Table2) -> str:
    """Render the table in the paper's layout."""
    context = table.context
    results = table.results
    engines = table.engines()
    width = max(len(PAPER_NAMES.get(e, e)) for e in engines)

    def row(label: str, cells: list[str]) -> str:
        return f"{label:<16}" + "".join(f"{c:>{width + 2}}" for c in cells)

    header = [PAPER_NAMES.get(e, e) for e in engines]
    lines = [
        "Table 2: index space (bytes per edge) and query time statistics",
        f"graph: |V|={context.notes['n_nodes']} "
        f"|E|={len(context.graph)} |P|={context.notes['n_predicates']} "
        f"queries={len(context.queries)} timeout={context.timeout}s",
        "",
        row("", header),
        row("Space", [f"{table.space[e]:.2f}" for e in engines]),
        row("Average", [f"{results.summary(e).average:.3f}"
                        for e in engines]),
        row("Median", [f"{results.summary(e).median:.3f}"
                       for e in engines]),
        row("Timeouts", [str(results.summary(e).timeouts)
                         for e in engines]),
        row("Average c-to-v", [
            f"{results.summary(e, 'c-to-v').average:.3f}" for e in engines
        ]),
        row("Median c-to-v", [
            f"{results.summary(e, 'c-to-v').median:.3f}" for e in engines
        ]),
        row("Average v-to-v", [
            f"{results.summary(e, 'v-to-v').average:.3f}" for e in engines
        ]),
        row("Median v-to-v", [
            f"{results.summary(e, 'v-to-v').median:.3f}" for e in engines
        ]),
        row("Ops (mean)", [
            _format_ops(results.mean_storage_ops(e)) for e in engines
        ]),
        row("Ops c-to-v", [
            _format_ops(results.mean_storage_ops(e, "c-to-v"))
            for e in engines
        ]),
        row("Ops v-to-v", [
            _format_ops(results.mean_storage_ops(e, "v-to-v"))
            for e in engines
        ]),
    ]

    model = CostModel.default()
    lines += [
        "",
        "modeled on the paper's substrate (storage ops x documented "
        "per-op costs; see repro/bench/costmodel.py):",
        row("Model avg", [
            f"{model.summary(results, e).average:.3f}" for e in engines
        ]),
        row("Model median", [
            f"{model.summary(results, e).median:.3f}" for e in engines
        ]),
        row("Model c-to-v", [
            f"{model.summary(results, e, 'c-to-v').average:.3f}"
            for e in engines
        ]),
        row("Model v-to-v", [
            f"{model.summary(results, e, 'v-to-v').average:.3f}"
            for e in engines
        ]),
    ]
    ring_model = model.summary(results, "ring").average
    other_models = [
        (model.summary(results, e).average, e)
        for e in engines if e != "ring"
    ]
    if ring_model > 0 and other_models:
        best_other, best_name = min(other_models)
        lines.append(
            f"modeled ring speed-up vs next best "
            f"({PAPER_NAMES.get(best_name, best_name)}): "
            f"{best_other / ring_model:.2f}x (paper: 1.67x)"
        )

    packed = packed_bytes_per_edge(context.index)
    working = working_space_bytes_per_edge(context.index)
    speedup, runner_up = table.speedup_vs_next_best()
    lo, hi = table.space_ratio_range()
    lines += [
        "",
        f"packed data baseline: {packed:.2f} bytes/edge "
        f"(ring = {ring_bytes_per_edge(context.index) / packed:.2f}x "
        "packed; the paper's ring is ~1.9x its packed form)",
        f"ring query-time working space: +{working:.2f} bytes/edge (§5 "
        "reports +3.09 for D and +~0 for B)",
        f"space ratio vs others: {lo:.1f}x - {hi:.1f}x "
        "(paper: 3-5x smaller than alternatives)",
        f"ring speed-up vs next best ({PAPER_NAMES.get(runner_up, runner_up)}): "
        f"{speedup:.2f}x on average (paper: 1.67x vs Blazegraph)",
    ]
    disagreements = results.consistency_check()
    if disagreements:
        lines.append("")
        lines.append("WARNING: engines disagreed on "
                     f"{len(disagreements)} queries!")
        lines.extend(f"  {d}" for d in disagreements[:5])
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--edges", type=int, default=None)
    parser.add_argument("--predicates", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None,
                        help="query-log scale (1.0 = paper counts)")
    parser.add_argument("--timeout", type=float, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    overrides = {}
    if args.nodes is not None:
        overrides["n_nodes"] = args.nodes
    if args.edges is not None:
        overrides["n_edges"] = args.edges
    if args.predicates is not None:
        overrides["n_predicates"] = args.predicates
    if args.scale is not None:
        overrides["log_scale"] = args.scale
    if args.timeout is not None:
        overrides["timeout"] = args.timeout
    context = build_context(seed=args.seed, **overrides)
    table = compute_table2(context)
    print(format_table2(table))


if __name__ == "__main__":
    main()
