"""Table 1 regenerator: the 20 most popular RPQ patterns in the log.

Generates a query log with :func:`~repro.bench.workload.generate_query_log`,
re-classifies every query with the pattern taxonomy, and prints the
histogram next to the paper's published counts.  With ``scale=1.0``
the two columns must agree exactly (that is asserted by the tests) —
the experiment validates that the classifier and the generator are
inverses and that the reproduced log has the right mix.

Run as ``python -m repro.bench.table1 [--scale S] [--seed N]``.
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro.bench.patterns import TABLE1_REFERENCE, classify_query
from repro.bench.workload import generate_query_log
from repro.graph.generators import wikidata_like
from repro.graph.model import Graph


def regenerate_table1(
    graph: Graph, scale: float = 1.0, seed: int = 0
) -> list[tuple[str, int, int]]:
    """Rows of ``(pattern, reproduced_count, paper_count)``."""
    queries = generate_query_log(graph, scale=scale, seed=seed)
    histogram = Counter(classify_query(q) for q in queries)
    return [
        (pattern, histogram.get(pattern, 0), paper_count)
        for pattern, paper_count, _, _, _ in TABLE1_REFERENCE
    ]


def format_table1(rows: list[tuple[str, int, int]],
                  scale: float) -> str:
    """Human-readable rendering of the regenerated table."""
    lines = [
        "Table 1: the 20 most popular RPQ patterns in the query log",
        f"(reproduced at scale={scale:g}; paper column is the published "
        "count)",
        "",
        f"{'pattern':<14} {'reproduced':>10} {'paper':>8}",
        "-" * 36,
    ]
    total_rep = total_paper = 0
    for pattern, reproduced, paper in rows:
        lines.append(f"{pattern:<14} {reproduced:>10} {paper:>8}")
        total_rep += reproduced
        total_paper += paper
    lines.append("-" * 36)
    lines.append(f"{'total':<14} {total_rep:>10} {total_paper:>8}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fraction of the paper's per-pattern counts")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--nodes", type=int, default=2_000)
    parser.add_argument("--edges", type=int, default=12_000)
    parser.add_argument("--predicates", type=int, default=40)
    args = parser.parse_args(argv)

    graph = wikidata_like(
        n_nodes=args.nodes, n_edges=args.edges,
        n_predicates=args.predicates, seed=args.seed,
    )
    rows = regenerate_table1(graph, scale=args.scale, seed=args.seed)
    print(format_table1(rows, args.scale))


if __name__ == "__main__":
    main()
