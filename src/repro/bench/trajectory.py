"""Perf-trajectory driver: regenerate ``BENCH_engine.json``.

Every PR that touches the query path re-runs this driver at the
standard calibration scale and commits the refreshed report at the
repo root, so the per-pattern-class wall-clock numbers form a
commit-over-commit trajectory.  The scale is larger than the default
:func:`~repro.bench.context.build_context` knobs on the query-log side
(``log_scale=0.2``) so the v-to-v classes contribute enough queries
for stable means, and the timeout is generous enough that nothing
times out on the reference machine — timeouts would clamp the mean and
hide regressions.

Run as ``python -m repro.bench.trajectory [--out BENCH_engine.json]``.
"""

from __future__ import annotations

import argparse

import json
from pathlib import Path

from repro.bench.context import build_context
from repro.bench.runner import (
    engine_bench_report,
    run_benchmark,
    service_throughput_report,
    stage_decomposition_report,
)

#: The pinned trajectory scale — change it only deliberately, because
#: numbers are only comparable across PRs at identical parameters.
TRAJECTORY_PARAMS = dict(
    n_nodes=3_000,
    n_edges=18_000,
    n_predicates=40,
    log_scale=0.2,
    timeout=10.0,
    limit=100_000,
    seed=0,
)

#: The pinned serving-throughput scale: pool sizes and replay rounds
#: for the ``workers`` section of ``BENCH_engine.json``.  The cache
#: must cover the ~331-query working set — an undersized cache thrashes
#: (round N+1 replays evict round N before it is reused) and the
#: section would measure LRU churn instead of serving throughput.
#: ``pool_workers`` / ``pool_kinds`` pin the uncached thread-vs-process
#: scaling axis; ``burst_pending`` the open-loop overload probe.
WORKERS_PARAMS = dict(
    workers=(1, 4),
    rounds=3,
    cache_size=512,
    pool_workers=(1, 2, 4),
    pool_kinds=("threads", "processes"),
    burst_pending=8,
)

#: The pinned audit-plane scale: how many log queries feed the
#: per-stage latency decomposition of the ``stages`` section, and the
#: pool size both tiers run at while decomposing.
STAGES_PARAMS = dict(
    sample=40,
    workers=2,
)

#: How many prior runs' headline numbers the report's ``history``
#: section retains — enough for a commit-over-commit trend, small
#: enough that BENCH_engine.json stays reviewable.
HISTORY_LIMIT = 8


def space_section(context) -> dict:
    """The ``space`` section: bits per completed triple for each tier.

    Audits the built ring with the space-audit plane
    (:mod:`repro.obs.space`), the sparse-matrix backend when scipy is
    available, and the snapshot segment layout (from the manifest, no
    live segment needed) — making space regressions visible in the
    trajectory exactly like latency regressions.
    """
    from repro.errors import ConstructionError
    from repro.ring.snapshot import snapshot_index

    index = context.index
    n = len(index.ring)

    def tier(nbytes: int) -> dict:
        return {
            "bytes": int(nbytes),
            "bits_per_triple": nbytes * 8 / max(1, n),
        }

    ring_node = index.ring.measure("ring")
    section = {
        "n_triples": n,
        "ring": {
            **tier(ring_node.nbytes),
            "breakdown": {
                child.name: child.nbytes for child in ring_node.children
            },
        },
    }
    try:
        from repro.matrix.matrices import PredicateMatrices

        store = PredicateMatrices.from_index(index)
    except (ImportError, ConstructionError):
        store = None
    if store is not None:
        section["matrix"] = tier(store.measure("matrix").nbytes)
    manifest, _ = snapshot_index(index, include_matrices=store is not None)
    section["snapshot"] = {
        **tier(manifest["total_bytes"]),
        "buffers": len(manifest["buffers"]),
    }
    return section


def _carry_history(old_report: "dict | None") -> "list[dict]":
    """The ``history`` list for a new report: the old report's history
    plus its own headline, capped at :data:`HISTORY_LIMIT`.

    This is the bookkeeping fix for the trajectory file being
    overwritten wholesale each run — the last N runs' headline numbers
    (now including ring bits/triple) survive the rewrite.
    """
    if not isinstance(old_report, dict) or "overall" not in old_report:
        return []
    history = [
        entry for entry in old_report.get("history", ())
        if isinstance(entry, dict)
    ]
    overall = old_report.get("overall") or {}
    tails = overall.get("percentiles") or {}
    meta = old_report.get("meta") or {}
    space = old_report.get("space") or {}
    history.append({
        "label": meta.get("label"),
        "count": overall.get("count"),
        "mean_seconds": overall.get("mean_seconds"),
        "p50_seconds": tails.get("p50"),
        "p99_seconds": tails.get("p99"),
        "timeouts": overall.get("timeouts"),
        "ring_bits_per_triple": (space.get("ring") or {}).get(
            "bits_per_triple"
        ),
    })
    return history[-HISTORY_LIMIT:]


def matrix_section(context) -> "dict | None":
    """The ``matrix`` section: both alternate backends on the pinned
    workload, plus the router's decision tally.

    Runs the sparse-matrix engine and the cost-model router over the
    same query log the ring section used, reports each with the same
    per-shape/per-pattern tails, and folds in the router counters
    (decisions, per-backend splits, misroutes and the misroute rate —
    the same numbers the live ``/metrics`` endpoint exports).  Returns
    ``None`` when scipy is unavailable, so the trajectory file can
    still be produced on a minimal interpreter.
    """
    from repro.errors import ConstructionError

    try:
        from repro.baselines.registry import make_engine

        engines = {
            "matrix": make_engine("matrix", context.index),
            "routed": make_engine("routed", context.index),
        }
    except ConstructionError:
        return None
    from repro.obs.metrics import Metrics

    registry = Metrics()
    engines["routed"].metrics = registry
    results = run_benchmark(
        engines,
        context.queries,
        timeout=context.timeout,
        limit=context.limit,
    )
    routed = engines["routed"]
    return {
        "engines": {
            name: engine_bench_report(results, engine=name)
            for name in engines
        },
        "router": {
            "decisions": registry.count("router.decisions"),
            "to_ring": registry.count("router.to_ring"),
            "to_matrix": registry.count("router.to_matrix"),
            "misroutes": registry.count("router.misroutes"),
            "misroute_rate": routed.misroute_rate,
        },
        "matrix_store_bits": routed.size_in_bits(),
    }


def run_trajectory(out_path: str = "BENCH_engine.json",
                   meta: "dict[str, object] | None" = None,
                   workers: "tuple[int, ...] | None" = None,
                   pool_kinds: "tuple[str, ...] | None" = None) -> dict:
    """Run the ring engine over the pinned workload and write the report.

    ``workers`` (default: the pinned ``WORKERS_PARAMS`` pool sizes)
    additionally measures serving-tier aggregate throughput over the
    same query log and records it as the report's ``workers`` section;
    pass an empty tuple to skip it.  ``pool_kinds`` restricts the
    uncached thread-vs-process scaling axis (default: both kinds).
    """
    from repro.obs.sampler import ResourceSampler
    from repro.obs.sampling_profiler import SamplingProfiler

    context = build_context(engine_names=("ring",), **TRAJECTORY_PARAMS)
    # The trajectory run doubles as a resource trajectory: a sampler
    # plus statistical profiler ride along so each committed report
    # also records peak RSS, CPU seconds and which §4 phases the
    # benchmark actually spent its samples in.
    profiler = SamplingProfiler()
    sampler = ResourceSampler(interval=0.1, profiler=profiler)
    with sampler:
        results = run_benchmark(
            context.engines,
            context.queries,
            timeout=context.timeout,
            limit=context.limit,
        )
    full_meta = {
        **context.notes,
        "timeout": context.timeout,
        "limit": context.limit,
        "seed": context.seed,
        "n_queries": len(context.queries),
    }
    if meta:
        full_meta.update(meta)
    report = engine_bench_report(results, engine="ring", meta=full_meta)
    vitals = sampler.process_metrics()
    report["telemetry"] = {
        "peak_rss_bytes": sampler.peak("process.rss_bytes"),
        "cpu_seconds": vitals.get("process.cpu_seconds"),
        "sample_ticks": sampler.ticks,
        "profile_samples": profiler.samples,
        "hot_phases": profiler.hot_phases(),
    }
    alternates = matrix_section(context)
    if alternates is not None:
        report["matrix"] = alternates
    report["space"] = space_section(context)
    if workers is None:
        workers = WORKERS_PARAMS["workers"]
    if pool_kinds is None:
        pool_kinds = WORKERS_PARAMS["pool_kinds"]
    if pool_kinds:
        # The per-request audit plane's trajectory: where a served
        # query's latency goes, per tier, at the pinned sample scale.
        report["stages"] = stage_decomposition_report(
            context.index,
            context.queries,
            sample=STAGES_PARAMS["sample"],
            timeout=context.timeout,
            limit=context.limit,
            workers=STAGES_PARAMS["workers"],
            pool_kinds=tuple(pool_kinds),
        )
    if pool_kinds:
        # The network tier's trajectory: seeded open-loop arrivals
        # against the live front-door socket, per pool kind — the
        # nominal profile for client-observed tails, the overload
        # profile to exercise (and record) the fast-reject path.
        from repro.bench.loadgen import http_load_report

        report["http"] = http_load_report(
            context.index,
            [str(query) for query in context.queries],
            pool_kinds=tuple(pool_kinds),
        )
    if workers:
        report["workers"] = service_throughput_report(
            context.index,
            context.queries,
            workers=tuple(workers),
            rounds=WORKERS_PARAMS["rounds"],
            timeout=context.timeout,
            limit=context.limit,
            cache_size=WORKERS_PARAMS["cache_size"],
            pool_kinds=tuple(pool_kinds),
            pool_workers=WORKERS_PARAMS["pool_workers"],
            burst_pending=WORKERS_PARAMS["burst_pending"],
        )
    out = Path(out_path)
    old_report = None
    if out.exists():
        try:
            old_report = json.loads(out.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            old_report = None
    report["history"] = _carry_history(old_report)
    out.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate the BENCH_engine.json perf trajectory file"
    )
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default: ./BENCH_engine.json)")
    parser.add_argument("--label", default=None,
                        help="free-form label recorded in the report meta")
    parser.add_argument("--workers", type=int, nargs="*", default=None,
                        metavar="N",
                        help="QueryService pool sizes for the throughput "
                             "section (default: %s; pass no values to "
                             "skip)" % (WORKERS_PARAMS["workers"],))
    parser.add_argument("--pool", nargs="*", default=None,
                        choices=("threads", "processes"),
                        metavar="KIND",
                        help="serving tiers for the uncached pools axis "
                             "(default: %s)" % (
                                 " ".join(WORKERS_PARAMS["pool_kinds"]),))
    args = parser.parse_args(argv)
    meta = {"label": args.label} if args.label else None
    workers = None if args.workers is None else tuple(args.workers)
    pool_kinds = None if args.pool is None else tuple(args.pool)
    report = run_trajectory(args.out, meta=meta, workers=workers,
                            pool_kinds=pool_kinds)
    overall = report["overall"]
    tails = overall["percentiles"]
    print(f"wrote {args.out}: {overall['count']} queries, "
          f"mean {overall['mean_seconds']:.4f}s "
          f"p50={tails['p50']:.4f}s p95={tails['p95']:.4f}s "
          f"p99={tails['p99']:.4f}s")
    for shape, summary in sorted(report["shapes"].items()):
        tails = summary["percentiles"]
        print(f"  {shape}: n={summary['count']} "
              f"mean={summary['mean_seconds']:.4f}s "
              f"median={summary['median_seconds']:.4f}s "
              f"p95={tails['p95']:.4f}s p99={tails['p99']:.4f}s "
              f"timeouts={summary['timeouts']}")
    telemetry = report.get("telemetry")
    if telemetry:
        peak = telemetry.get("peak_rss_bytes") or 0.0
        hot = ", ".join(
            f"{phase}={count}"
            for phase, count in list(telemetry["hot_phases"].items())[:4]
        ) or "(no samples)"
        print(f"  telemetry: peak RSS {peak / 1e6:.1f} MB, "
              f"cpu {telemetry['cpu_seconds']:.1f}s, "
              f"hot phases: {hot}")
    alternates = report.get("matrix")
    if alternates:
        router = alternates["router"]
        print(f"  router: {router['decisions']} decisions "
              f"({router['to_ring']} ring / {router['to_matrix']} matrix), "
              f"misroute rate {router['misroute_rate']:.3f}")
        for name, section in sorted(alternates["engines"].items()):
            overall = section["overall"]
            tails = overall["percentiles"]
            print(f"  {name}: mean={overall['mean_seconds']:.4f}s "
                  f"p95={tails['p95']:.4f}s p99={tails['p99']:.4f}s "
                  f"timeouts={overall['timeouts']}")
    space = report.get("space")
    if space:
        parts = []
        for key in ("ring", "matrix", "snapshot"):
            tier = space.get(key)
            if tier:
                parts.append(f"{key}={tier['bits_per_triple']:.2f}")
        print(f"  space (bits/triple over {space['n_triples']} triples): "
              + ", ".join(parts))
    history = report.get("history")
    if history:
        last = history[-1]
        mean = last.get("mean_seconds")
        mean_text = "n/a" if mean is None else f"{mean * 1e3:.2f} ms"
        print(f"  history: {len(history)} prior run(s) retained "
              f"(last: {last.get('label') or 'unlabeled'}, "
              f"mean {mean_text})")
    stages = report.get("stages")
    if stages:
        for kind in sorted(stages["tiers"]):
            tier = stages["tiers"][kind]
            top = sorted(
                tier["stages"].items(),
                key=lambda item: -item[1]["mean_seconds"],
            )[:3]
            top_txt = ", ".join(
                f"{name}={entry['share_of_e2e']:.0%}"
                for name, entry in top
            )
            print(f"  stages {kind}: e2e mean "
                  f"{tier['e2e_mean_seconds'] * 1e3:.2f}ms, "
                  f"ipc overhead {tier['ipc_overhead_share']:.0%} "
                  f"({tier['ipc_overhead_mean_seconds'] * 1e3:.2f}ms), "
                  f"top: {top_txt}")
    section = report.get("workers")
    if section:
        base = section["baseline"]
        print(f"  workers baseline (sequential, uncached): "
              f"{base['qps']:.1f} qps over {section['rounds']} rounds")
        for key in sorted(section["cached"], key=int):
            pool = section["cached"][key]
            print(f"  cached threads={pool['workers']}: "
                  f"{pool['qps']:.1f} qps "
                  f"({pool['speedup_vs_baseline']:.2f}x), "
                  f"cache hit rate {pool['cache_hit_rate']:.2f}, "
                  f"rejected={pool['rejected']}")
        for kind in sorted(section["pools"]):
            entries = section["pools"][kind]
            for key in sorted(entries, key=int):
                pool = entries[key]
                eff = pool["scaling_efficiency"]
                eff_txt = f"{eff:.2f}" if eff is not None else "n/a"
                print(f"  uncached {kind}={pool['workers']}: "
                      f"{pool['qps']:.1f} qps, "
                      f"scaling efficiency {eff_txt}")
        burst = section.get("burst")
        if burst:
            print(f"  burst (open-loop, max_pending="
                  f"{burst['max_pending']}): {burst['offered']} offered, "
                  f"{burst['accepted']} accepted, "
                  f"{burst['rejected']} rejected")
    http_section = report.get("http")
    if http_section:
        for kind in sorted(http_section["tiers"]):
            tier = http_section["tiers"][kind]
            for name in sorted(tier):
                profile = tier[name]
                tails = profile["latency_seconds"]
                tail_txt = (
                    f"p50={tails['p50'] * 1e3:.1f}ms "
                    f"p99={tails['p99'] * 1e3:.1f}ms"
                    if tails else "no accepted requests"
                )
                print(f"  http {kind}/{name}: "
                      f"offered={profile['offered']} "
                      f"accepted={profile['accepted']} "
                      f"rejected={profile['rejected']} "
                      f"qps={profile['qps']:.1f} {tail_txt}")


if __name__ == "__main__":
    main()
