"""Perf-trajectory driver: regenerate ``BENCH_engine.json``.

Every PR that touches the query path re-runs this driver at the
standard calibration scale and commits the refreshed report at the
repo root, so the per-pattern-class wall-clock numbers form a
commit-over-commit trajectory.  The scale is larger than the default
:func:`~repro.bench.context.build_context` knobs on the query-log side
(``log_scale=0.2``) so the v-to-v classes contribute enough queries
for stable means, and the timeout is generous enough that nothing
times out on the reference machine — timeouts would clamp the mean and
hide regressions.

Run as ``python -m repro.bench.trajectory [--out BENCH_engine.json]``.
"""

from __future__ import annotations

import argparse

from repro.bench.context import build_context
from repro.bench.runner import run_benchmark, write_engine_bench_json

#: The pinned trajectory scale — change it only deliberately, because
#: numbers are only comparable across PRs at identical parameters.
TRAJECTORY_PARAMS = dict(
    n_nodes=3_000,
    n_edges=18_000,
    n_predicates=40,
    log_scale=0.2,
    timeout=10.0,
    limit=100_000,
    seed=0,
)


def run_trajectory(out_path: str = "BENCH_engine.json",
                   meta: "dict[str, object] | None" = None) -> dict:
    """Run the ring engine over the pinned workload and write the report."""
    context = build_context(engine_names=("ring",), **TRAJECTORY_PARAMS)
    results = run_benchmark(
        context.engines,
        context.queries,
        timeout=context.timeout,
        limit=context.limit,
    )
    full_meta = {
        **context.notes,
        "timeout": context.timeout,
        "limit": context.limit,
        "seed": context.seed,
        "n_queries": len(context.queries),
    }
    if meta:
        full_meta.update(meta)
    return write_engine_bench_json(results, out_path, engine="ring",
                                  meta=full_meta)


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        description="regenerate the BENCH_engine.json perf trajectory file"
    )
    parser.add_argument("--out", default="BENCH_engine.json",
                        help="output path (default: ./BENCH_engine.json)")
    parser.add_argument("--label", default=None,
                        help="free-form label recorded in the report meta")
    args = parser.parse_args(argv)
    meta = {"label": args.label} if args.label else None
    report = run_trajectory(args.out, meta=meta)
    overall = report["overall"]
    tails = overall["percentiles"]
    print(f"wrote {args.out}: {overall['count']} queries, "
          f"mean {overall['mean_seconds']:.4f}s "
          f"p50={tails['p50']:.4f}s p95={tails['p95']:.4f}s "
          f"p99={tails['p99']:.4f}s")
    for shape, summary in sorted(report["shapes"].items()):
        tails = summary["percentiles"]
        print(f"  {shape}: n={summary['count']} "
              f"mean={summary['mean_seconds']:.4f}s "
              f"median={summary['median_seconds']:.4f}s "
              f"p95={tails['p95']:.4f}s p99={tails['p99']:.4f}s "
              f"timeouts={summary['timeouts']}")


if __name__ == "__main__":
    main()
