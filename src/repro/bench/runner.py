"""Executing a query log across engines.

:func:`run_benchmark` evaluates every query of a log on every engine
under a shared timeout and result cap, and returns a
:class:`BenchmarkResults` able to answer all the questions Table 2 and
Fig. 8 ask: overall and per-shape summaries, per-pattern timing
distributions, and win counts.  :func:`write_engine_bench_json`
serialises one engine's view of a run into the ``BENCH_engine.json``
trajectory file tracked across PRs.
"""

from __future__ import annotations

import json
import time
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.patterns import classify_query
from repro.bench.stats import (
    FiveNumber,
    Summary,
    percentile,
    percentiles,
    summarize,
)
from repro.core.query import RPQ


@dataclass
class QueryRecord:
    """Timing of one query on one engine."""

    query: RPQ
    pattern: str
    shape: str  # "cv-class": "c-to-v" or "v-to-v"
    engine: str
    elapsed: float
    timed_out: bool
    truncated: bool
    n_results: int
    storage_ops: int = 0
    #: The full named operation-counter record of the evaluation
    #: (:meth:`QueryStats.operation_counts`): wavelet nodes visited vs
    #: pruned per phase, backward steps, object ranges, …
    counters: dict[str, int] = field(default_factory=dict)


def query_shape_class(query: RPQ) -> str:
    """The paper's two timing buckets: "c-to-v" (at least one constant
    endpoint) vs "v-to-v" (both ends variable)."""
    return "v-to-v" if query.shape() == "vv" else "c-to-v"


@dataclass
class BenchmarkResults:
    """All records of one benchmark run, with aggregation helpers."""

    timeout: float
    records: list[QueryRecord] = field(default_factory=list)

    # ------------------------------------------------------------------

    def engines(self) -> list[str]:
        """Engine names present, insertion-ordered."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.engine, None)
        return list(seen)

    def _select(self, engine: str, shape: str | None = None,
                pattern: str | None = None) -> list[QueryRecord]:
        return [
            r for r in self.records
            if r.engine == engine
            and (shape is None or r.shape == shape)
            and (pattern is None or r.pattern == pattern)
        ]

    def summary(self, engine: str, shape: str | None = None) -> Summary:
        """Table 2 row: average / median / timeout count."""
        selected = self._select(engine, shape=shape)
        return summarize(
            [r.elapsed for r in selected],
            [r.timed_out for r in selected],
            self.timeout,
        )

    def mean_storage_ops(self, engine: str,
                         shape: str | None = None) -> float:
        """Average substrate-neutral work (storage operations) per query.

        Timed-out queries contribute the operations they managed to do
        before the deadline, so this *underestimates* the work of the
        engines that time out most.
        """
        selected = self._select(engine, shape=shape)
        if not selected:
            return 0.0
        return sum(r.storage_ops for r in selected) / len(selected)

    def mean_counter(
        self,
        engine: str,
        name: str,
        shape: str | None = None,
        pattern: str | None = None,
    ) -> float:
        """Average of one named operation counter per query.

        ``name`` is any key of
        :meth:`~repro.core.result.QueryStats.operation_counts`; records
        without the counter (e.g. baselines, which only report
        ``storage_ops``) contribute zero.
        """
        selected = self._select(engine, shape=shape, pattern=pattern)
        if not selected:
            return 0.0
        return sum(r.counters.get(name, 0) for r in selected) / len(selected)

    def clamped_times(self, engine: str, shape: str | None = None,
                      pattern: str | None = None) -> list[float]:
        """Per-query timings clamped at the timeout for one cell."""
        return [
            self.timeout if r.timed_out else min(r.elapsed, self.timeout)
            for r in self._select(engine, shape=shape, pattern=pattern)
        ]

    def counter_names(self, engine: str) -> list[str]:
        """All counter names this engine's records carry, sorted."""
        names: set[str] = set()
        for record in self._select(engine):
            names.update(record.counters)
        return sorted(names)

    def operations_by_pattern(
        self, engine: str, names: "list[str] | None" = None
    ) -> dict[str, dict[str, dict[str, float]]]:
        """Operation-count distributions per pattern class for one engine.

        This is the observability companion of the Fig. 8 timing
        boxplots: for every pattern class and every named counter it
        reports ``{"mean", "p50", "p90", "p99"}``, so claims like
        "pruning suppresses wavelet work on ``p*`` queries" become
        checkable numbers instead of wall-clock anecdotes — and a mean
        inflated by one pathological query is visible as a mean far
        above its own p90.
        """
        if names is None:
            names = self.counter_names(engine)
        table: dict[str, dict[str, dict[str, float]]] = {}
        for pattern in self.patterns():
            selected = self._select(engine, pattern=pattern)
            row: dict[str, dict[str, float]] = {}
            for name in names:
                values = [float(r.counters.get(name, 0))
                          for r in selected]
                if not values:
                    row[name] = {"mean": 0.0, "p50": 0.0,
                                 "p90": 0.0, "p99": 0.0}
                    continue
                row[name] = {
                    "mean": sum(values) / len(values),
                    "p50": percentile(values, 50),
                    "p90": percentile(values, 90),
                    "p99": percentile(values, 99),
                }
            table[pattern] = row
        return table

    def pattern_times(self, engine: str, pattern: str) -> list[float]:
        """Clamped per-query timings for one (engine, pattern) cell."""
        return self.clamped_times(engine, pattern=pattern)

    def pattern_summary(self, engine: str,
                        pattern: str) -> FiveNumber | None:
        """Fig. 8 boxplot data for one (engine, pattern) cell."""
        times = self.pattern_times(engine, pattern)
        if not times:
            return None
        return FiveNumber.of(times)

    def patterns(self) -> list[str]:
        """All patterns present, by descending query count."""
        counts: dict[str, int] = defaultdict(int)
        for record in self.records:
            if record.engine == self.engines()[0]:
                counts[record.pattern] += 1
        return sorted(counts, key=lambda p: (-counts[p], p))

    def pattern_wins(self) -> dict[str, str]:
        """Per pattern, the engine with the lowest median time."""
        wins: dict[str, str] = {}
        for pattern in self.patterns():
            best_engine, best_median = None, None
            for engine in self.engines():
                summary = self.pattern_summary(engine, pattern)
                if summary is None:
                    continue
                if best_median is None or summary.median < best_median:
                    best_engine, best_median = engine, summary.median
            if best_engine is not None:
                wins[pattern] = best_engine
        return wins

    def consistency_check(self) -> list[str]:
        """Queries where engines disagree on (untruncated) result counts.

        Returns human-readable descriptions; empty means all engines
        agreed everywhere they completed.
        """
        by_query: dict[str, dict[str, QueryRecord]] = defaultdict(dict)
        for record in self.records:
            by_query[str(record.query)][record.engine] = record
        problems: list[str] = []
        for query_text, by_engine in by_query.items():
            counts = {
                r.n_results
                for r in by_engine.values()
                if not r.timed_out and not r.truncated
            }
            if len(counts) > 1:
                detail = {e: r.n_results for e, r in by_engine.items()
                          if not r.timed_out and not r.truncated}
                problems.append(f"{query_text}: {detail}")
        return problems


#: Counters worth tracking across PRs in the trajectory file.  A
#: subset of :meth:`QueryStats.operation_counts` — the high-level work
#: measures, not every phase bucket.
TRAJECTORY_COUNTERS = (
    "storage_ops",
    "wavelet_nodes",
    "product_nodes",
    "product_edges",
    "backward_steps",
    "rank_ops",
    "lp_nodes",
    "lp_pruned",
    "ls_nodes",
    "ls_pruned",
    "object_ranges",
    "subqueries",
)


def engine_bench_report(
    results: BenchmarkResults,
    engine: str,
    meta: "dict[str, object] | None" = None,
) -> dict:
    """One engine's run as a plain JSON-ready dict.

    The report carries per-shape (``c-to-v`` / ``v-to-v``) and
    per-pattern-class mean/median wall-clock, tail percentiles
    (p50/p90/p95/p99/max of the clamped timings), and mean operation
    counters, so successive PRs can be compared number-for-number —
    including tail regressions a mean would smooth over.
    """

    def _summary_dict(summary: Summary, times: list[float]) -> dict:
        return {
            "count": summary.count,
            "mean_seconds": summary.average,
            "median_seconds": summary.median,
            "timeouts": summary.timeouts,
            "percentiles": percentiles(times),
        }

    shapes = {}
    for shape in ("c-to-v", "v-to-v"):
        summary = results.summary(engine, shape=shape)
        if summary.count:
            shapes[shape] = _summary_dict(
                summary, results.clamped_times(engine, shape=shape)
            )

    patterns = {}
    for pattern in results.patterns():
        times = results.pattern_times(engine, pattern)
        if not times:
            continue
        selected = results._select(engine, pattern=pattern)
        summary = summarize(
            [r.elapsed for r in selected],
            [r.timed_out for r in selected],
            results.timeout,
        )
        entry = _summary_dict(summary, times)
        entry["shape"] = selected[0].shape
        entry["counters"] = {
            name: results.mean_counter(engine, name, pattern=pattern)
            for name in TRAJECTORY_COUNTERS
        }
        patterns[pattern] = entry

    report = {
        "schema": "bench-engine/v2",
        "engine": engine,
        "overall": _summary_dict(
            results.summary(engine), results.clamped_times(engine)
        ),
        "shapes": shapes,
        "patterns": patterns,
    }
    if meta:
        report["meta"] = dict(meta)
    return report


def write_engine_bench_json(
    results: BenchmarkResults,
    path: "str | Path",
    engine: str = "ring",
    meta: "dict[str, object] | None" = None,
) -> dict:
    """Write :func:`engine_bench_report` to ``path`` and return it."""
    report = engine_bench_report(results, engine, meta=meta)
    Path(path).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return report


def _make_pool_service(kind: str, index, workers: int, max_pending: int,
                       cache_size: int, timeout, limit,
                       metrics=None, flight=None):
    from repro.serve import ProcessQueryService, QueryService

    if kind == "threads":
        cls = QueryService
    elif kind == "processes":
        cls = ProcessQueryService
    else:
        raise ValueError(f"unknown pool kind {kind!r}")
    return cls(
        index,
        workers=workers,
        max_pending=max_pending,
        cache_size=cache_size,
        default_timeout=timeout,
        default_limit=limit,
        metrics=metrics,
        flight=flight,
    )


def service_throughput_report(
    index,
    queries: list[RPQ],
    workers: tuple[int, ...] = (1, 4),
    rounds: int = 3,
    timeout: "float | None" = None,
    limit: "int | None" = 100_000,
    cache_size: int = 256,
    pool_kinds: tuple[str, ...] = ("threads", "processes"),
    pool_workers: tuple[int, ...] = (1, 2, 4),
    burst_pending: int = 8,
) -> dict:
    """Aggregate-QPS scaling of the serving tiers.

    Four measurements over the same query log:

    * ``baseline`` — a bare engine, sequential and uncached, replayed
      ``rounds`` times; the denominator for every speedup.
    * ``cached`` — the thread tier at each ``workers`` count with the
      result cache on, replayed ``rounds`` times.  Repeated rounds are
      the representative serving workload, and the speedup here is
      earned by the cache answering repeats plus bookkeeping overlap —
      under CPython's GIL threads cannot parallelise the index walks
      themselves; each entry's cache hit rate says so explicitly.
    * ``pools`` — the honest parallelism axis: ``threads`` vs
      ``processes`` (:class:`~repro.serve.ProcessQueryService` over one
      shared-memory snapshot) at each ``pool_workers`` count, cache
      *disabled*, one uncached pass each.  ``scaling_efficiency`` is
      ``qps / (single-worker qps × workers)`` within the same kind —
      the number that shows whether extra workers buy real throughput.
      Only the process tier can exceed thread-tier numbers on
      CPU-bound RPQs, and only when the machine has cores to spare.
    * ``burst`` — an open-loop overload probe: every query submitted
      at once (no retry, nobody waits before submitting more) against
      a deliberately small admission bound, so the fast-reject path is
      exercised and ``rejected > 0`` is observed rather than assumed.
    """
    from repro.core.engine import RingRPQEngine
    from repro.errors import OverloadedError
    from repro.serve.batch import drain_queries

    engine = RingRPQEngine(index)
    t0 = time.perf_counter()
    completed = 0
    for _ in range(rounds):
        for query in queries:
            engine.evaluate(query, timeout=timeout, limit=limit)
            completed += 1
    baseline_elapsed = time.perf_counter() - t0
    baseline_qps = (
        completed / baseline_elapsed if baseline_elapsed > 0 else 0.0
    )

    report: dict = {
        "n_queries": len(queries),
        "rounds": rounds,
        "cache_size": cache_size,
        "baseline": {
            "mode": "sequential-uncached",
            "completed": completed,
            "elapsed_seconds": baseline_elapsed,
            "qps": baseline_qps,
        },
        "cached": {},
        "pools": {},
    }
    texts = [str(query) for query in queries]
    for n in workers:
        service = _make_pool_service(
            "threads", index, n, max(64, len(queries) + n),
            cache_size, timeout, limit,
        )
        try:
            summary = drain_queries(
                service, texts, rounds=rounds, timeout=timeout, limit=limit
            )
        finally:
            service.close()
        cache = summary["service"]["cache"]
        report["cached"][str(n)] = {
            "workers": n,
            "completed": summary["completed"],
            "rejected": summary["rejected"],
            "elapsed_seconds": summary["elapsed_seconds"],
            "qps": summary["qps"],
            "speedup_vs_baseline": (
                summary["qps"] / baseline_qps if baseline_qps > 0 else 0.0
            ),
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "cache_hit_rate": cache["hit_rate"],
        }

    for kind in pool_kinds:
        section: dict = {}
        for n in pool_workers:
            service = _make_pool_service(
                kind, index, n, max(64, len(queries) + n),
                0, timeout, limit,
            )
            try:
                summary = drain_queries(
                    service, texts, rounds=1, timeout=timeout, limit=limit
                )
            finally:
                service.close()
            section[str(n)] = {
                "workers": n,
                "mode": "uncached",
                "completed": summary["completed"],
                "elapsed_seconds": summary["elapsed_seconds"],
                "qps": summary["qps"],
            }
        single = section.get("1")
        single_qps = single["qps"] if single else 0.0
        for entry in section.values():
            n = entry["workers"]
            if single_qps > 0:
                entry["speedup_vs_1"] = entry["qps"] / single_qps
                entry["scaling_efficiency"] = entry["speedup_vs_1"] / n
            else:
                entry["speedup_vs_1"] = None
                entry["scaling_efficiency"] = None
        report["pools"][kind] = section

    if burst_pending:
        burst_workers = 2
        service = _make_pool_service(
            "threads", index, burst_workers, burst_pending,
            0, timeout, limit,
        )
        accepted = []
        rejected = 0
        t0 = time.perf_counter()
        try:
            for query in texts:
                try:
                    accepted.append(service.submit(
                        query, timeout=timeout, limit=limit
                    ))
                except OverloadedError:
                    rejected += 1
            for ticket in accepted:
                ticket.result()
        finally:
            service.close()
        report["burst"] = {
            "mode": "open-loop",
            "workers": burst_workers,
            "max_pending": burst_pending,
            "offered": len(texts),
            "accepted": len(accepted),
            "rejected": rejected,
            "elapsed_seconds": time.perf_counter() - t0,
        }
    return report


def stage_decomposition_report(
    index,
    queries: list[RPQ],
    sample: int = 40,
    timeout: "float | None" = None,
    limit: "int | None" = 100_000,
    workers: int = 2,
    pool_kinds: tuple[str, ...] = ("threads", "processes"),
) -> dict:
    """Per-stage latency decomposition of both serving tiers.

    Replays the first ``sample`` queries of the log through each
    serving tier with the audit plane on (metrics registry + flight
    recorder, cache disabled so every query pays the full path) and
    reports, per tier, every ``serve.stage.*`` histogram as
    mean/p50/p90 seconds plus its share of mean end-to-end latency.
    The process tier's ``request_serialize`` + ``pipe_to_worker`` +
    ``reply_transfer`` stages sum to ``ipc_overhead_mean_seconds`` —
    the per-query price of crossing the process boundary, which is
    what the thread-vs-process decision in ``docs/serving.md`` trades
    against GIL-free execution.

    Stage durations are telescoping differences of one monotonic
    timeline, so per query they sum to the end-to-end latency exactly;
    ``stage_sum_over_e2e`` reports the aggregate ratio as a built-in
    self-check (1.0 up to clock-skew clamping).
    """
    from repro.obs.flight import FlightRecorder
    from repro.obs.metrics import Metrics

    texts = [str(query) for query in queries[:sample]]
    report: dict = {
        "sample_queries": len(texts),
        "workers": workers,
        "note": (
            "stage means are single-machine numbers; on a single-core "
            "runner the process tier's execute stage also absorbs "
            "scheduling delay, so compare the IPC overhead stages, "
            "not absolute execute time, across environments"
        ),
        "tiers": {},
    }
    for kind in pool_kinds:
        registry = Metrics()
        flight = FlightRecorder(len(texts) or 1)
        service = _make_pool_service(
            kind, index, workers, max(64, len(texts) + workers),
            0, timeout, limit, metrics=registry, flight=flight,
        )
        try:
            for text in texts:
                service.evaluate(text)
        finally:
            service.close()
        e2e = registry.histogram("serve.e2e_seconds")
        e2e_mean = (e2e.total / e2e.count) if e2e and e2e.count else 0.0
        stages: dict[str, dict] = {}
        stage_mean_sum = 0.0
        for name in sorted(registry.histograms):
            if not name.startswith("serve.stage."):
                continue
            hist = registry.histograms[name]
            mean = hist.total / hist.count if hist.count else 0.0
            stage_mean_sum += hist.total
            summary = hist.summary()
            stages[name[len("serve.stage."):]] = {
                "count": hist.count,
                "mean_seconds": mean,
                "p50_seconds": summary["p50"],
                "p90_seconds": summary["p90"],
                "share_of_e2e": (mean / e2e_mean) if e2e_mean else 0.0,
            }
        ipc = sum(
            stages[stage]["mean_seconds"]
            for stage in ("request_serialize", "pipe_to_worker",
                          "reply_transfer")
            if stage in stages
        )
        report["tiers"][kind] = {
            "e2e_mean_seconds": e2e_mean,
            "stages": stages,
            "ipc_overhead_mean_seconds": ipc,
            "ipc_overhead_share": (ipc / e2e_mean) if e2e_mean else 0.0,
            "stage_sum_over_e2e": (
                stage_mean_sum / (e2e.total or 1.0) if e2e else 0.0
            ),
            "flight_recorded": flight.total_recorded,
        }
    return report


def run_benchmark(
    engines: dict[str, object],
    queries: list[RPQ],
    timeout: float = 2.0,
    limit: int | None = 100_000,
    slow_log=None,
) -> BenchmarkResults:
    """Evaluate every query on every engine.

    Engines must expose ``evaluate(query, timeout=..., limit=...)``
    returning a :class:`~repro.core.result.QueryResult` — both the ring
    engine and every baseline do.  Pass a
    :class:`~repro.obs.slowlog.SlowQueryLog` as ``slow_log`` to retain
    the K worst (engine, query) evaluations of the run with their
    counter snapshots.
    """
    results = BenchmarkResults(timeout=timeout)
    for query in queries:
        pattern = classify_query(query)
        shape = query_shape_class(query)
        for name, engine in engines.items():
            outcome = engine.evaluate(query, timeout=timeout, limit=limit)
            stats = outcome.stats
            results.records.append(
                QueryRecord(
                    query=query,
                    pattern=pattern,
                    shape=shape,
                    engine=name,
                    elapsed=stats.elapsed,
                    timed_out=stats.timed_out,
                    truncated=stats.truncated,
                    n_results=len(outcome),
                    storage_ops=stats.storage_ops,
                    counters=stats.operation_counts(),
                )
            )
            if slow_log is not None and slow_log.would_keep(stats.elapsed):
                slow_log.record(
                    str(query), stats.elapsed,
                    n_results=len(outcome),
                    timed_out=stats.timed_out,
                    truncated=stats.truncated,
                    counters=stats.operation_counts(),
                    engine=name,
                )
            elif slow_log is not None:
                slow_log.total_recorded += 1
    return results
