"""RPQ pattern classification (the taxonomy behind Table 1 and Fig. 8).

The paper classifies log queries *"by mapping nodes to constant/
variable types and erasing their predicates (keeping only RPQ
operators)"*.  We do exactly that: the pattern of a query is
``"<s> <skeleton> <o>"`` where ``<s>``/``<o>`` are ``c`` or ``v`` and
``<skeleton>`` is the expression rendered with every atom erased —
``(?x, p1/p2*, Q42)`` classifies as ``v /* c``.

``TABLE1_REFERENCE`` records the paper's 20 most popular patterns with
their counts.  A few rows of the published table are ambiguous in the
source material (OCR collisions like two ``v * c`` rows); those
substitutions are marked and documented in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.core.query import RPQ
from repro.graph.model import is_inverse_label


def expression_skeleton(expr: RegexNode) -> str:
    """The expression with atoms erased, keeping only the operators."""
    if isinstance(expr, Epsilon):
        return "ε"
    if isinstance(expr, Symbol):
        return "^" if is_inverse_label(expr.label) else ""
    if isinstance(expr, NegatedClass):
        return "^!" if expr.inverse else "!"
    if isinstance(expr, Concat):
        return "/".join(
            _wrap_skeleton(c) for c in expr.children
        )
    if isinstance(expr, Union):
        return "|".join(expression_skeleton(c) for c in expr.children)
    if isinstance(expr, Star):
        return f"{_wrap_skeleton(expr.child)}*"
    if isinstance(expr, Plus):
        return f"{_wrap_skeleton(expr.child)}+"
    if isinstance(expr, Optional):
        return f"{_wrap_skeleton(expr.child)}?"
    raise TypeError(f"unknown regex node {type(expr).__name__}")


def _wrap_skeleton(child: RegexNode) -> str:
    inner = expression_skeleton(child)
    if isinstance(child, (Union, Concat)) and inner:
        return f"({inner})"
    return inner


def classify_query(query: RPQ) -> str:
    """The pattern string of a query, e.g. ``"v /* c"``."""
    s = "v" if query.subject_is_var else "c"
    o = "v" if query.object_is_var else "c"
    skeleton = expression_skeleton(query.expr)
    if skeleton:
        return f"{s} {skeleton} {o}"
    return f"{s} {o}"


#: The paper's Table 1: the 20 most popular RPQ patterns in the
#: Wikidata timeout-query log, as ``(pattern, count, template)``.
#: ``template`` is the expression template used by the workload
#: generator, with ``{i}`` placeholders for sampled predicates.
#: Rows whose published spelling was ambiguous carry a trailing
#: comment with the substitution choice.
TABLE1_REFERENCE: tuple[tuple[str, int, str, str, str], ...] = (
    # pattern, count, subject, expression template, object
    ("v /* c", 537, "v", "{0}/{1}*", "c"),
    ("v * c", 433, "v", "{0}*", "c"),
    ("v + c", 109, "v", "{0}+", "c"),
    ("c * v", 99, "c", "{0}*", "v"),
    ("c /* v", 95, "c", "{0}/{1}*", "v"),
    ("v / c", 54, "v", "{0}/{1}", "c"),
    ("v */* c", 44, "v", "{0}*/{1}*", "c"),
    ("v / v", 41, "v", "{0}/{1}", "v"),
    ("c + v", 36, "c", "{0}+", "v"),          # published row ambiguous
    ("v | v", 31, "v", "{0}|{1}", "v"),
    ("v */*/*/* c", 28, "v", "{0}*/{1}*/{2}*/{3}*", "c"),
    ("v ^ v", 26, "v", "^{0}", "v"),
    ("v /* v", 25, "v", "{0}/{1}*", "v"),
    ("v * v", 25, "v", "{0}*", "v"),
    ("v /? c", 22, "v", "{0}/{1}?", "c"),
    ("v + v", 17, "v", "{0}+", "v"),
    ("v /+ c", 12, "v", "{0}/{1}+", "c"),
    ("v | c", 10, "v", "{0}|{1}", "c"),       # published row ambiguous
    ("v ^/ v", 10, "v", "^{0}/{1}", "v"),     # published row ambiguous
    ("v /^ v", 7, "v", "{0}/^{1}", "v"),
)

#: Patterns containing a Kleene closure — the class the paper reports
#: the ring winning on ("each of these 9 patterns have at least one
#: ``*`` or ``+``").
RECURSIVE_PATTERNS = frozenset(
    pattern for pattern, _, _, _, _ in TABLE1_REFERENCE
    if "*" in pattern or "+" in pattern
)


def table1_total() -> int:
    """Total query count across the reference patterns."""
    return sum(count for _, count, _, _, _ in TABLE1_REFERENCE)
