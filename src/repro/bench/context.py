"""One-stop benchmark environment builder.

Every experiment driver (Table 2, Fig. 8, the ablations and the
pytest-benchmark targets) needs the same setup: a Wikidata-like graph,
a ring index, the engine line-up and a Table 1-mix query log.
:func:`build_context` builds all of it deterministically from a few
size knobs, so results are reproducible and drivers stay tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.registry import TABLE2_ENGINES, all_engines
from repro.bench.workload import generate_query_log
from repro.core.query import RPQ
from repro.graph.generators import wikidata_like
from repro.graph.model import Graph
from repro.ring.builder import RingIndex


@dataclass
class BenchmarkContext:
    """Everything one benchmark run needs."""

    graph: Graph
    index: RingIndex
    engines: dict[str, object]
    queries: list[RPQ]
    timeout: float
    limit: int
    seed: int = 0
    notes: dict[str, object] = field(default_factory=dict)


#: Default sizes: chosen so a full Table 2 run (4 engines x ~170
#: queries) completes in a few minutes of pure Python.
DEFAULT_NODES = 3_000
DEFAULT_EDGES = 18_000
DEFAULT_PREDICATES = 40
DEFAULT_SCALE = 0.1
DEFAULT_TIMEOUT = 2.0
DEFAULT_LIMIT = 100_000


def build_context(
    n_nodes: int = DEFAULT_NODES,
    n_edges: int = DEFAULT_EDGES,
    n_predicates: int = DEFAULT_PREDICATES,
    log_scale: float = DEFAULT_SCALE,
    timeout: float = DEFAULT_TIMEOUT,
    limit: int = DEFAULT_LIMIT,
    seed: int = 0,
    engine_names: tuple[str, ...] = TABLE2_ENGINES,
) -> BenchmarkContext:
    """Build the standard benchmark environment.

    ``log_scale`` scales the Table 1 pattern counts (1.0 = the paper's
    1,661 top-20 queries; the default 0.1 keeps ~170 queries).
    """
    graph = wikidata_like(
        n_nodes=n_nodes,
        n_edges=n_edges,
        n_predicates=n_predicates,
        seed=seed,
    )
    index = RingIndex.from_graph(graph)
    engines = all_engines(index, engine_names)
    queries = generate_query_log(graph, scale=log_scale, seed=seed + 1)
    return BenchmarkContext(
        graph=graph,
        index=index,
        engines=engines,
        queries=queries,
        timeout=timeout,
        limit=limit,
        seed=seed,
        notes={
            "n_nodes": n_nodes,
            "n_edges": n_edges,
            "n_predicates": n_predicates,
            "log_scale": log_scale,
        },
    )


def tiny_context(seed: int = 0, **overrides) -> BenchmarkContext:
    """A miniature context for tests and pytest-benchmark targets."""
    params = dict(
        n_nodes=400,
        n_edges=2_400,
        n_predicates=16,
        log_scale=0.02,
        timeout=5.0,
        limit=50_000,
        seed=seed,
    )
    params.update(overrides)
    return build_context(**params)
