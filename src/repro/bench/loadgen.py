"""Open-loop HTTP load generation against the real front-door socket.

The serving benchmarks so far replay queries *closed-loop*: each
client waits for a completion before offering the next query, so the
offered load self-regulates and the admission controller rarely sees a
queue it has to refuse.  Real front doors face **open-loop** arrivals:
requests arrive on the arrival process's schedule whether or not the
previous ones finished, so overload shows up as real queueing and the
fast-reject path actually runs.  This module generates that traffic
against :class:`~repro.serve.http.HTTPQueryServer` over TCP — every
number in the resulting report is *client-observed* through the whole
stack (socket, HTTP parse, admission, engine, NDJSON streaming), not a
server-side self-measurement.

The arrival process is a seeded **Poisson + Pareto mixture**: with
probability ``1 - pareto_share`` the next inter-arrival gap is
exponential (the memoryless Poisson baseline), otherwise Pareto with
tail index ``pareto_alpha`` scaled to the *same mean* — so the mixture
keeps the configured average rate while adding the bursty clustering
heavy-tailed think times produce.  Bursts are the point: a generator
whose arrivals are evenly spaced never exercises the admission bound
at rates a queue can drain on average.

``python -m repro.bench.loadgen`` runs the pinned nominal + overload
profiles against a freshly built benchmark index and prints the
report; ``--assert-rejections`` exits non-zero unless the overload
profile observed at least one 429 with ``Retry-After`` — the CI smoke
contract.
"""

from __future__ import annotations

import argparse
import http.client
import json
import random
import threading
import time

from repro.bench.stats import percentile

#: The pinned load profiles — comparable across PRs only at identical
#: parameters, like TRAJECTORY_PARAMS.  ``overload`` offers arrivals
#: well above the single-worker service rate at a deliberately small
#: admission bound, so a non-zero rejection rate is the *expected*
#: outcome, not a flake.  The cache is disabled: cache hits settle at
#: submit without occupying a queue slot, so a cached service can
#: absorb any offered rate and the overload profile would prove
#: nothing.
LOADGEN_PARAMS = dict(
    profiles=dict(
        nominal=dict(rate=30.0, duration=3.0),
        overload=dict(rate=400.0, duration=3.0),
    ),
    pareto_share=0.3,
    pareto_alpha=1.3,
    timeout_ms=2_000.0,
    page_size=500,
    workers=1,
    max_pending=4,
    cache_size=0,
    seed=0x5EED,
)


def generate_arrivals(
    rate: float,
    duration: float,
    rng: random.Random,
    pareto_share: float = 0.3,
    pareto_alpha: float = 1.3,
) -> list[float]:
    """Arrival instants (seconds from start) of the mixture process.

    Each gap is exponential with mean ``1/rate``, or — with
    probability ``pareto_share`` — Pareto(``pareto_alpha``) rescaled
    to that same mean (``paretovariate`` has mean ``α/(α-1)``, so the
    scale factor is ``(α-1)/α · 1/rate``).  The sequence is fully
    determined by ``rng``.
    """
    if rate <= 0:
        raise ValueError("rate must be > 0")
    if not 1.0 < pareto_alpha:
        raise ValueError("pareto_alpha must be > 1 (finite mean)")
    mean_gap = 1.0 / rate
    pareto_scale = mean_gap * (pareto_alpha - 1.0) / pareto_alpha
    arrivals: list[float] = []
    t = 0.0
    while True:
        if rng.random() < pareto_share:
            gap = pareto_scale * rng.paretovariate(pareto_alpha)
        else:
            gap = rng.expovariate(rate)
        t += gap
        if t >= duration:
            return arrivals
        arrivals.append(t)


def _one_request(host: str, port: int, query: str, timeout_ms: float,
                 page_size: int, outcomes: list, lock: threading.Lock,
                 client_timeout: float) -> None:
    """Fire one ``POST /query`` and record what the client observed."""
    body = json.dumps({
        "query": query,
        "timeout_ms": timeout_ms,
        "page_size": page_size,
    }).encode("utf-8")
    outcome = {"status": 0, "latency": 0.0, "retry_after": None,
               "timed_out": None, "error": None}
    t0 = time.perf_counter()
    try:
        conn = http.client.HTTPConnection(host, port,
                                          timeout=client_timeout)
        try:
            conn.request("POST", "/query", body=body,
                         headers={"Content-Type": "application/json"})
            resp = conn.getresponse()
            payload = resp.read()    # drain the full stream
            outcome["status"] = resp.status
            if resp.status == 429:
                outcome["retry_after"] = resp.getheader("Retry-After")
            elif resp.status == 200:
                trailer = json.loads(
                    payload.decode("utf-8").splitlines()[-1]
                )
                outcome["timed_out"] = trailer["stats"]["timed_out"]
        finally:
            conn.close()
    except Exception as exc:  # noqa: BLE001 - loadgen records, never dies
        outcome["error"] = type(exc).__name__
    outcome["latency"] = time.perf_counter() - t0
    with lock:
        outcomes.append(outcome)


def run_open_loop(
    host: str,
    port: int,
    queries: list[str],
    arrivals: list[float],
    timeout_ms: float = 2_000.0,
    page_size: int = 500,
    seed: int = 0,
    client_timeout: float = 30.0,
) -> dict:
    """Drive ``arrivals`` against a live socket, open-loop.

    One thread per arrival, started at its scheduled instant whether
    or not earlier requests completed — nothing a slow server does can
    reduce the offered load.  Queries are drawn round-robin from
    ``queries`` after a seeded shuffle.  Returns the raw client-side
    summary; see :func:`summarize_outcomes` for the derived rates.
    """
    order = list(queries)
    random.Random(seed).shuffle(order)
    outcomes: list = []
    lock = threading.Lock()
    threads: list[threading.Thread] = []
    start = time.perf_counter()
    for i, at in enumerate(arrivals):
        delay = at - (time.perf_counter() - start)
        if delay > 0:
            time.sleep(delay)
        thread = threading.Thread(
            target=_one_request,
            args=(host, port, order[i % len(order)], timeout_ms,
                  page_size, outcomes, lock, client_timeout),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=client_timeout)
    elapsed = time.perf_counter() - start
    return summarize_outcomes(outcomes, offered=len(arrivals),
                              elapsed=elapsed)


def summarize_outcomes(outcomes: list, offered: int,
                       elapsed: float) -> dict:
    """Client-observed rates and tails from raw request outcomes."""
    accepted = [o for o in outcomes if o["status"] == 200]
    rejected = [o for o in outcomes if o["status"] == 429]
    errors = [o for o in outcomes
              if o["error"] is not None or o["status"] not in (200, 429)]
    completed = len(outcomes)
    latencies = sorted(o["latency"] for o in accepted)
    tails = {}
    if latencies:
        tails = {
            "mean": sum(latencies) / len(latencies),
            "p50": percentile(latencies, 50),
            "p90": percentile(latencies, 90),
            "p99": percentile(latencies, 99),
            "max": latencies[-1],
        }
    deadline_met = sum(1 for o in accepted if o["timed_out"] is False)
    return {
        "offered": offered,
        "completed": completed,
        "accepted": len(accepted),
        "rejected": len(rejected),
        "errors": len(errors),
        "rejection_rate": (
            len(rejected) / completed if completed else 0.0
        ),
        "retry_after_observed": sum(
            1 for o in rejected if o["retry_after"] is not None
        ),
        "deadline_met": deadline_met,
        "timed_out": sum(1 for o in accepted if o["timed_out"] is True),
        "elapsed_seconds": elapsed,
        "qps": len(accepted) / elapsed if elapsed > 0 else 0.0,
        "latency_seconds": tails,
    }


def http_load_report(
    index,
    queries: list[str],
    pool_kinds: tuple = ("threads", "processes"),
    params: "dict | None" = None,
) -> dict:
    """The ``http`` section of ``BENCH_engine.json``.

    Per pool tier, per pinned profile: a fresh service (pinned small
    worker/admission configuration, cache off) behind a fresh
    :class:`HTTPQueryServer` on an ephemeral port, driven by the
    seeded open-loop generator.  The overload profile is expected to
    record ``rejected > 0`` *and* ``retry_after_observed > 0`` — the
    acceptance criterion that the fast-reject path is observable from
    outside the process.
    """
    from repro.bench.runner import _make_pool_service
    from repro.serve.http import HTTPQueryServer

    p = dict(LOADGEN_PARAMS)
    if params:
        p.update(params)
    report: dict = {
        "params": {
            key: value for key, value in p.items() if key != "profiles"
        },
        "profiles": {
            name: dict(profile)
            for name, profile in p["profiles"].items()
        },
        "tiers": {},
    }
    for kind in pool_kinds:
        tier: dict = {}
        for name, profile in p["profiles"].items():
            service = _make_pool_service(
                kind, index, p["workers"], p["max_pending"],
                p["cache_size"], None, None,
            )
            try:
                with HTTPQueryServer(service, port=0) as server:
                    rng = random.Random(p["seed"])
                    arrivals = generate_arrivals(
                        profile["rate"], profile["duration"], rng,
                        pareto_share=p["pareto_share"],
                        pareto_alpha=p["pareto_alpha"],
                    )
                    tier[name] = run_open_loop(
                        server.host, server.port, queries, arrivals,
                        timeout_ms=p["timeout_ms"],
                        page_size=p["page_size"],
                        seed=p["seed"],
                    )
            finally:
                service.close()
        report["tiers"][kind] = tier
    return report


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        description="open-loop HTTP load against the serving front door"
    )
    parser.add_argument("--pool", nargs="*", default=("threads",),
                        choices=("threads", "processes"), metavar="KIND",
                        help="serving tiers to drive (default: threads)")
    parser.add_argument("--duration", type=float, default=None,
                        help="override both profiles' duration (seconds)")
    parser.add_argument("--rate", type=float, default=None,
                        help="override the overload profile's arrival rate")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the arrival-process seed")
    parser.add_argument("--out", default=None,
                        help="write the http report section to this path")
    parser.add_argument("--assert-rejections", action="store_true",
                        help="exit 1 unless the overload profile observed "
                             "rejected > 0 with Retry-After")
    args = parser.parse_args(argv)

    from repro.bench.context import build_context

    context = build_context(
        engine_names=(), n_nodes=600, n_edges=3_600, n_predicates=12,
        log_scale=0.1, seed=0,
    )
    queries = [str(query) for query in context.queries]
    params: dict = {}
    profiles = {
        name: dict(profile)
        for name, profile in LOADGEN_PARAMS["profiles"].items()
    }
    if args.duration is not None:
        for profile in profiles.values():
            profile["duration"] = args.duration
    if args.rate is not None:
        profiles["overload"]["rate"] = args.rate
    params["profiles"] = profiles
    if args.seed is not None:
        params["seed"] = args.seed

    report = http_load_report(
        context.index, queries, pool_kinds=tuple(args.pool),
        params=params,
    )
    for kind, tier in report["tiers"].items():
        for name, summary in tier.items():
            tails = summary["latency_seconds"]
            tail_txt = (
                f"p50={tails['p50'] * 1e3:.1f}ms "
                f"p99={tails['p99'] * 1e3:.1f}ms"
                if tails else "no accepted requests"
            )
            print(f"{kind}/{name}: offered={summary['offered']} "
                  f"accepted={summary['accepted']} "
                  f"rejected={summary['rejected']} "
                  f"(rate {summary['rejection_rate']:.2f}, "
                  f"retry-after seen {summary['retry_after_observed']}) "
                  f"qps={summary['qps']:.1f} {tail_txt}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.assert_rejections:
        for kind, tier in report["tiers"].items():
            overload = tier.get("overload")
            if overload is None:
                continue
            if overload["rejected"] < 1:
                print(f"FAIL: {kind}/overload recorded no rejections")
                return 1
            if overload["retry_after_observed"] < 1:
                print(f"FAIL: {kind}/overload 429s carried no Retry-After")
                return 1
            print(f"OK: {kind}/overload rejected="
                  f"{overload['rejected']} with Retry-After")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
