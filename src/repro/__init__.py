"""Ring-RPQ: time- and space-efficient regular path queries on graphs.

A from-scratch Python reproduction of Arroyuelo, Hogan, Navarro &
Rojas-Ledesma, *"Time- and Space-Efficient Regular Path Queries on
Graphs"*: a compressed (BWT + wavelet matrix) graph index — the *ring*
— paired with a bit-parallel Glushkov automaton simulation that
evaluates 2RPQs by walking only the product subgraph induced by the
query.

Quickstart::

    from repro import RingIndex
    from repro.graph import santiago_transport

    index = RingIndex.from_graph(santiago_transport())
    for s, o in index.evaluate("(Baq, l5+/bus, ?y)"):
        print(s, "→", o)

Package layout:

* :mod:`repro.succinct` — bitvectors, wavelet trees/matrices;
* :mod:`repro.graph` — labeled graph model, datasets, generators;
* :mod:`repro.ring` — the ring index and its dictionary;
* :mod:`repro.automata` — regex frontend, Glushkov/Thompson automata,
  bit-parallel simulation;
* :mod:`repro.core` — the Ring-RPQ engine (the paper's contribution);
* :mod:`repro.baselines` — the comparison engines of the evaluation;
* :mod:`repro.bench` — the harness regenerating every published table
  and figure;
* :mod:`repro.obs` — observability: operation counters, phase timers,
  trace hooks and the ``repro profile`` machinery;
* :mod:`repro.serve` — the concurrent query service: worker pool,
  admission control, deadlines/cancellation, result caching;
* :mod:`repro.testing` — brute-force oracles for differential testing.
"""

from repro.automata.parser import parse_regex
from repro.core.engine import RingRPQEngine
from repro.core.query import RPQ, Variable
from repro.core.result import QueryResult, QueryStats
from repro.errors import (
    ConstructionError,
    OverloadedError,
    QueryCancelledError,
    QueryTimeoutError,
    RegexSyntaxError,
    ReproError,
    ResultLimitExceeded,
    UnknownSymbolError,
    WorkerCrashedError,
)
from repro.graph.model import Graph
from repro.obs.metrics import NULL_METRICS, Metrics
from repro.obs.profile import ProfileReport, profile_query
from repro.ring.builder import RingIndex
from repro.ring.dictionary import Dictionary
from repro.ring.ring import Ring
from repro.serve.pool import ProcessQueryService
from repro.serve.service import QueryService

__version__ = "1.0.0"

__all__ = [
    "ConstructionError",
    "Dictionary",
    "Graph",
    "Metrics",
    "NULL_METRICS",
    "OverloadedError",
    "ProcessQueryService",
    "ProfileReport",
    "QueryCancelledError",
    "QueryResult",
    "QueryService",
    "QueryStats",
    "QueryTimeoutError",
    "RegexSyntaxError",
    "ReproError",
    "ResultLimitExceeded",
    "Ring",
    "RingIndex",
    "RingRPQEngine",
    "RPQ",
    "UnknownSymbolError",
    "Variable",
    "WorkerCrashedError",
    "__version__",
    "parse_regex",
    "profile_query",
]
