"""Zero-copy snapshots of a built ring index (`ring-snapshot/v1`).

The ring is a small, *immutable* succinct index — exactly the shape
that one physical copy in ``multiprocessing.shared_memory`` can serve
to N worker processes (the one-copy-many-readers layout of "Evaluating
Regular Path Queries on Compressed Adjacency Matrices").  This module
flattens a built :class:`~repro.ring.builder.RingIndex` into one
contiguous byte payload plus a small JSON manifest, and reconstructs
*views* — no copies — over that payload:

* :class:`SharedIndexHandle` — parent-side owner of one shared-memory
  segment per index; hands out a picklable :meth:`token
  <SharedIndexHandle.token>` that workers turn back into a live
  :class:`RingIndex` with :func:`attach_token`.
* :func:`save_snapshot` / :func:`load_snapshot` — the same manifest
  written to a file; loading ``mmap``-s the payload for instant cold
  start (the seed of the ROADMAP's on-disk index format).

Layout
------
The payload is a sequence of 64-byte-aligned numpy buffers.  The
manifest records, for every buffer, ``{dtype, shape, offset}`` under a
dotted name:

=====================  =====================================================
``lp.level{i}.words``  packed ``uint64`` words of L_p's level-``i``
                       bitvector **plus one zero sentinel word** (the
                       :meth:`BitVector.batch_data` shape)
``lp.level{i}.cum64``  the level's ``int64`` rank directory
``lp.counts`` etc.     L_p's symbol counts / class offsets / bottom starts
``ls.*`` / ``lo.*``    the same for L_s and (optional) L_o
``c_o`` ``c_p``        the boundary arrays, plain ``int64`` (an
``c_s``                Elias-Fano-compressed source ring is decoded once
                       at snapshot time; attach always yields plain)
``mat.{pid}.indptr``   per-predicate CSR triplets of the sparse boolean
``mat.{pid}.indices``  backend (present only when scipy is available and
``mat.{pid}.data``     ``include_matrices`` was left on)
=====================  =====================================================

Structural metadata (``n``, ``sigma`` per column, node/predicate
labels, the inverse-predicate involution, the serve-layer CRC-32
fingerprint) lives in the manifest itself, so an attached index is
cache-key-compatible with the index it was snapped from.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
from multiprocessing import shared_memory

import numpy as np

from repro.errors import ConstructionError
from repro.ring.dictionary import Dictionary
from repro.ring.ring import BoundaryArray, Ring
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix

SNAPSHOT_FORMAT = "ring-snapshot/v1"
_ALIGN = 64
_FILE_MAGIC = b"RPQSNAP1"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------------------
# Flattening
# ----------------------------------------------------------------------


def _column_buffers(prefix: str, wm: WaveletMatrix, buffers: dict) -> dict:
    """Collect one wavelet matrix's buffers; return its manifest entry."""
    levels = []
    for i, bv in enumerate(wm._levels):
        words_ext, cum64, n = bv.batch_data()
        buffers[f"{prefix}.level{i}.words"] = words_ext
        buffers[f"{prefix}.level{i}.cum64"] = cum64
        levels.append({"n": n})
    buffers[f"{prefix}.counts"] = wm._counts
    buffers[f"{prefix}.class_cum"] = wm._class_cum
    buffers[f"{prefix}.bottom_start"] = wm._bottom_start
    return {"n": len(wm), "sigma": wm.sigma, "levels": levels}


def snapshot_index(index, include_matrices: bool = True):
    """Flatten a built index into ``(manifest, buffers)``.

    ``buffers`` maps manifest buffer names to the live numpy arrays of
    the source index (no copying happens here — the copy is the single
    ``memcpy`` into the segment or file).  The manifest's ``buffers``
    table is filled with dtype/shape/offset; ``total_bytes`` is the
    aligned payload size.
    """
    from repro.serve.keys import index_fingerprint

    ring = index.ring
    dictionary = index.dictionary
    buffers: dict[str, np.ndarray] = {}
    manifest: dict = {
        "format": SNAPSHOT_FORMAT,
        "fingerprint": index_fingerprint(index),
        "n": len(ring),
        "num_nodes": ring.num_nodes,
        "num_predicates": ring.num_predicates,
        "dictionary": {
            "nodes": list(dictionary.node_labels),
            "predicates": list(dictionary.predicate_labels),
            "inverse_ids": [
                dictionary.inverse_predicate(p)
                for p in range(dictionary.num_predicates)
            ],
        },
        "columns": {
            "lp": _column_buffers("lp", ring.L_p, buffers),
            "ls": _column_buffers("ls", ring.L_s, buffers),
        },
    }
    buffers["c_o"] = ring.C_o.to_array().astype(np.int64, copy=False)
    buffers["c_p"] = ring.C_p.to_array().astype(np.int64, copy=False)
    if ring.L_o is not None and ring.C_s is not None:
        manifest["columns"]["lo"] = _column_buffers("lo", ring.L_o, buffers)
        buffers["c_s"] = ring.C_s.to_array().astype(np.int64, copy=False)

    matrix_pids: list[int] = []
    if include_matrices:
        store = _matrix_store(index)
        if store is not None:
            for pid in store.predicates:
                m = store.matrix(pid)
                buffers[f"mat.{pid}.indptr"] = m.indptr
                buffers[f"mat.{pid}.indices"] = m.indices
                buffers[f"mat.{pid}.data"] = m.data
                matrix_pids.append(int(pid))
    manifest["matrix_pids"] = matrix_pids

    table = {}
    offset = 0
    for name, arr in buffers.items():
        arr = np.ascontiguousarray(arr)
        buffers[name] = arr
        offset = _align(offset)
        table[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        }
        offset += arr.nbytes
    manifest["buffers"] = table
    manifest["total_bytes"] = _align(offset)
    return manifest, buffers


def _matrix_store(index):
    """The index's compiled sparse backend, or ``None`` without scipy."""
    try:
        from repro.matrix.matrices import PredicateMatrices
    except ImportError:  # scipy not installed: ring-only snapshot
        return None
    return PredicateMatrices.from_index(index)


def _write_payload(manifest: dict, buffers: dict, target) -> None:
    """Copy every buffer into ``target`` (a writable buffer object)."""
    view = np.frombuffer(target, dtype=np.uint8)
    for name, meta in manifest["buffers"].items():
        arr = buffers[name]
        start = meta["offset"]
        view[start:start + arr.nbytes] = np.frombuffer(arr, dtype=np.uint8)
    del view


# ----------------------------------------------------------------------
# Reconstruction (views, no copies)
# ----------------------------------------------------------------------


def _buffer_view(manifest: dict, payload, name: str) -> np.ndarray:
    meta = manifest["buffers"][name]
    dtype = np.dtype(meta["dtype"])
    count = int(np.prod(meta["shape"], dtype=np.int64))
    arr = np.frombuffer(
        payload, dtype=dtype, count=count, offset=meta["offset"]
    )
    arr.flags.writeable = False
    return arr.reshape(meta["shape"])


def _column_view(prefix: str, meta: dict, manifest: dict,
                 payload) -> WaveletMatrix:
    levels = [
        BitVector.from_packed(
            _buffer_view(manifest, payload, f"{prefix}.level{i}.words"),
            _buffer_view(manifest, payload, f"{prefix}.level{i}.cum64"),
            level["n"],
        )
        for i, level in enumerate(meta["levels"])
    ]
    return WaveletMatrix.from_parts(
        levels,
        meta["n"],
        meta["sigma"],
        _buffer_view(manifest, payload, f"{prefix}.counts"),
        _buffer_view(manifest, payload, f"{prefix}.class_cum"),
        _buffer_view(manifest, payload, f"{prefix}.bottom_start"),
    )


def attach_index(manifest: dict, payload):
    """Reconstruct a :class:`RingIndex` of views over ``payload``.

    ``payload`` is any buffer object holding the snapshot bytes — a
    shared-memory ``buf``, an ``mmap``, or plain ``bytes``.  Nothing is
    copied; the caller is responsible for keeping ``payload`` alive as
    long as the index (the public entry points pin it on the returned
    object as ``_snapshot_source``).
    """
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise ConstructionError(
            f"unsupported snapshot format {manifest.get('format')!r}; "
            f"expected {SNAPSHOT_FORMAT!r}"
        )
    from repro.ring.builder import RingIndex

    cols = manifest["columns"]
    L_p = _column_view("lp", cols["lp"], manifest, payload)
    L_s = _column_view("ls", cols["ls"], manifest, payload)
    C_o = BoundaryArray(_buffer_view(manifest, payload, "c_o"))
    C_p = BoundaryArray(_buffer_view(manifest, payload, "c_p"))
    L_o = C_s = None
    if "lo" in cols:
        L_o = _column_view("lo", cols["lo"], manifest, payload)
        C_s = BoundaryArray(_buffer_view(manifest, payload, "c_s"))
    ring = Ring.from_parts(
        L_p, C_o, L_s, C_p,
        n=manifest["n"],
        num_nodes=manifest["num_nodes"],
        num_predicates=manifest["num_predicates"],
        L_o=L_o,
        C_s=C_s,
    )
    d = manifest["dictionary"]
    dictionary = Dictionary(d["nodes"], d["predicates"], d["inverse_ids"])
    index = RingIndex(dictionary, ring)
    index._serve_fingerprint = manifest["fingerprint"]
    if manifest.get("matrix_pids"):
        store = _attach_matrices(manifest, payload)
        if store is not None:
            index._matrix_store = store
    return index


def _attach_matrices(manifest: dict, payload):
    try:
        import scipy.sparse as sp

        from repro.matrix.matrices import PredicateMatrices
    except ImportError:  # snapshot carries matrices but reader lacks scipy
        return None
    store = PredicateMatrices.__new__(PredicateMatrices)
    store.num_nodes = manifest["num_nodes"]
    shape = (store.num_nodes, store.num_nodes)
    store._matrices = {}
    for pid in manifest["matrix_pids"]:
        store._matrices[pid] = sp.csr_matrix(
            (
                _buffer_view(manifest, payload, f"mat.{pid}.data"),
                _buffer_view(manifest, payload, f"mat.{pid}.indices"),
                _buffer_view(manifest, payload, f"mat.{pid}.indptr"),
            ),
            shape=shape,
            copy=False,
        )
    return store


# ----------------------------------------------------------------------
# Shared-memory plane
# ----------------------------------------------------------------------


# Names created by THIS process (or inherited over fork from the
# creator).  Kept so close() can tell which names it owns.
_created_names: set[str] = set()


def _tracker_preexisting() -> bool:
    """True when this process already talks to a resource tracker.

    Multiprocessing children — fork *and* spawn — inherit the parent's
    tracker connection, so their attach registrations land in the same
    cache the parent's ``unlink`` will clear: unregistering from a
    child would strip that shared entry early.  An *independent*
    process (no pre-existing connection) starts its own tracker on
    attach, and that private tracker would unlink the segment when the
    process exits — yanking the index out from under its siblings — so
    there the registration must be removed.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._fd is not None
    except Exception:
        return False


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Remove an attach registration from a process-private tracker.

    On Python < 3.13 every ``SharedMemory(name=...)`` attach registers
    the segment with the process's resource tracker; only the creating
    parent may unlink.  See :func:`_tracker_preexisting` for when this
    is (and is not) the right call.
    """
    if shm.name in _created_names:
        return
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedIndexHandle:
    """Parent-side owner of one shared-memory snapshot of an index.

    Created once per served index; every worker process turns
    :meth:`token` back into a live view-backed :class:`RingIndex` with
    :func:`attach_token`.  :meth:`close` releases the parent mapping
    and (by default) unlinks the segment — after which no new worker
    can attach, and the memory is freed once the last attached worker
    exits.
    """

    def __init__(self, manifest: dict, shm: shared_memory.SharedMemory):
        self.manifest = manifest
        self._shm = shm
        self._closed = False

    @classmethod
    def create(cls, index, include_matrices: bool = True,
               name: str | None = None) -> "SharedIndexHandle":
        """Snapshot ``index`` into a fresh shared-memory segment."""
        manifest, buffers = snapshot_index(
            index, include_matrices=include_matrices
        )
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, manifest["total_bytes"]), name=name
        )
        try:
            _write_payload(manifest, buffers, shm.buf)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        _created_names.add(shm.name)
        return cls(manifest, shm)

    @property
    def nbytes(self) -> int:
        """Payload size of the segment in bytes."""
        return int(self.manifest["total_bytes"])

    @property
    def name(self) -> str:
        """OS-level name of the segment (under ``/dev/shm`` on Linux)."""
        return self._shm.name

    def measure(self, name: str = "shm_segment"):
        """Space-audit tree of the live segment: the manifest's buffer
        layout (alignment padding accounted explicitly), so the tree's
        total equals :attr:`nbytes` — the ``/dev/shm`` file size modulo
        the kernel's final page rounding."""
        from repro.obs.space import audit_manifest

        node = audit_manifest(self.manifest, name)
        node.detail["segment"] = self._shm.name
        return node

    def token(self) -> dict:
        """A picklable attach token: segment name plus manifest."""
        return {"shm": self._shm.name, "manifest": self.manifest}

    def attach_local(self):
        """Attach in *this* process (views over the parent mapping)."""
        index = attach_index(self.manifest, self._shm.buf)
        index._snapshot_source = self
        return index

    def close(self, unlink: bool = True) -> None:
        """Release the parent mapping; ``unlink`` removes the segment.

        Safe to call twice.  Note any index returned by
        :meth:`attach_local` holds views into the mapping, so it must
        be dropped before closing — this is why the process tier hands
        local attaches only to short-lived differential tests, never
        to the serving path.
        """
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _created_names.discard(self._shm.name)

    def __enter__(self) -> "SharedIndexHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class _PinnedSharedMemory(shared_memory.SharedMemory):
    """An attach-only mapping pinned for the process lifetime.

    The attached index exports numpy views into the mapping, so the
    inherited ``__del__`` → ``close()`` at interpreter shutdown would
    die with ``BufferError: cannot close exported pointers exist``.
    Workers never unmap — the OS reclaims the mapping at process exit —
    so teardown is a deliberate no-op.
    """

    def __del__(self):  # noqa: D105 - see class docstring
        pass

    def close(self) -> None:  # pragma: no cover - defensive no-op
        pass


def attach_token(token: dict):
    """Worker-side attach: token → live view-backed :class:`RingIndex`.

    The returned index pins the :class:`SharedMemory` mapping (as
    ``_snapshot_source``) so the views stay valid for the index's
    lifetime; the segment itself is never unlinked from here — that is
    the creating parent's job.
    """
    shared_tracker = _tracker_preexisting()
    shm = _PinnedSharedMemory(name=token["shm"])
    if not shared_tracker:
        _untrack(shm)
    index = attach_index(token["manifest"], shm.buf)
    index._snapshot_source = shm
    return index


# ----------------------------------------------------------------------
# File plane (mmap cold start)
# ----------------------------------------------------------------------


def save_snapshot(index, path, include_matrices: bool = True) -> int:
    """Write the snapshot to ``path``; returns bytes written.

    Format: ``RPQSNAP1`` magic, little-endian ``uint64`` manifest
    length, the UTF-8 JSON manifest, zero padding to a 64-byte
    boundary, then the payload described by the manifest.
    """
    manifest, buffers = snapshot_index(
        index, include_matrices=include_matrices
    )
    blob = json.dumps(manifest, separators=(",", ":")).encode("utf-8")
    header = _FILE_MAGIC + len(blob).to_bytes(8, "little") + blob
    pad = _align(len(header)) - len(header)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(b"\0" * pad)
        payload = bytearray(manifest["total_bytes"])
        _write_payload(manifest, buffers, payload)
        fh.write(payload)
        return fh.tell()


def load_snapshot(path, mmap: bool = True):
    """Load a snapshot file as a view-backed :class:`RingIndex`.

    With ``mmap=True`` (default) the payload is memory-mapped
    copy-on-read: cold start touches only the pages a query actually
    walks, and N processes loading the same file share the page cache.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_FILE_MAGIC))
        if magic != _FILE_MAGIC:
            raise ConstructionError(
                f"{path}: not a ring snapshot (bad magic {magic!r})"
            )
        manifest_len = int.from_bytes(fh.read(8), "little")
        manifest = json.loads(fh.read(manifest_len).decode("utf-8"))
        payload_start = _align(len(_FILE_MAGIC) + 8 + manifest_len)
        if mmap:
            mapped = _mmap.mmap(
                fh.fileno(), 0, access=_mmap.ACCESS_READ
            )
            payload = memoryview(mapped)[payload_start:]
            index = attach_index(manifest, payload)
            index._snapshot_source = (mapped, payload)
            return index
        fh.seek(payload_start, os.SEEK_SET)
        payload = fh.read()
    index = attach_index(manifest, payload)
    index._snapshot_source = payload
    return index
