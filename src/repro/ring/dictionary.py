"""Dictionary encoding of nodes and predicates.

The ring operates on integers: nodes get ids ``0..|V|-1`` (subjects and
objects share the id space, §4) and predicates of the *completed* graph
get ids ``0..|P⁺|-1``.  Following §5 of the paper, the inverse of an
original predicate ``p`` normally receives id ``id(p) + |P|``; symmetric
predicates (whose edges are stored in both directions under one label)
are their own inverses and get no twin.

The dictionary also remembers which ids are inverse labels so query
results and explanations can be rendered back in the user's vocabulary.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import ConstructionError, UnknownSymbolError
from repro.graph.model import Graph, inverse_label, is_inverse_label


class Dictionary:
    """Bidirectional mapping between labels and dense integer ids."""

    def __init__(
        self,
        nodes: Sequence[str],
        predicates: Sequence[str],
        inverse_ids: Sequence[int],
    ):
        if len(predicates) != len(inverse_ids):
            raise ConstructionError("inverse_ids must match predicates")
        self._nodes = tuple(nodes)
        self._preds = tuple(predicates)
        self._inverse = tuple(inverse_ids)
        self._node_id = {name: i for i, name in enumerate(self._nodes)}
        self._pred_id = {name: i for i, name in enumerate(self._preds)}
        if len(self._node_id) != len(self._nodes):
            raise ConstructionError("duplicate node labels")
        if len(self._pred_id) != len(self._preds):
            raise ConstructionError("duplicate predicate labels")
        for p, q in enumerate(self._inverse):
            if not 0 <= q < len(self._preds) or self._inverse[q] != p:
                raise ConstructionError("inverse mapping is not an involution")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        node_order: Iterable[str] | None = None,
        predicate_order: Iterable[str] | None = None,
    ) -> "Dictionary":
        """Build the dictionary for (the completion of) ``graph``.

        ``node_order`` / ``predicate_order`` override the default sorted
        id assignment — used to replicate the paper's Fig. 3 numbering.
        Predicates listed must be those of the *original* graph;
        inverse labels are appended automatically for every
        non-symmetric predicate.
        """
        nodes = list(node_order) if node_order is not None else graph.nodes
        node_set = set(nodes)
        for n in graph.nodes:
            if n not in node_set:
                raise ConstructionError(f"node_order misses node {n!r}")

        originals = [p for p in graph.predicates if not is_inverse_label(p)]
        if predicate_order is not None:
            ordered = [p for p in predicate_order if not is_inverse_label(p)]
            if set(ordered) != set(originals):
                raise ConstructionError(
                    "predicate_order must list exactly the original "
                    "predicates"
                )
            originals = ordered

        predicates = list(originals)
        inverse: dict[str, str] = {}
        for p in originals:
            if p in graph.symmetric_predicates:
                inverse[p] = p
            else:
                predicates.append(inverse_label(p))
                inverse[p] = inverse_label(p)
                inverse[inverse_label(p)] = p

        pred_index = {name: i for i, name in enumerate(predicates)}
        inverse_ids = [pred_index[inverse[p]] for p in predicates]
        return cls(nodes, predicates, inverse_ids)

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of distinct nodes, ``|V|``."""
        return len(self._nodes)

    @property
    def num_predicates(self) -> int:
        """Number of predicates in the completed alphabet, ``|P⁺|``."""
        return len(self._preds)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def node_id(self, label: str) -> int:
        """Id of a node label; raises ``UnknownSymbolError`` if absent."""
        try:
            return self._node_id[label]
        except KeyError:
            raise UnknownSymbolError("node", label) from None

    def node_label(self, node_id: int) -> str:
        """Label of a node id."""
        return self._nodes[node_id]

    def has_node(self, label: str) -> bool:
        """True when the node label is known."""
        return label in self._node_id

    def predicate_id(self, label: str) -> int:
        """Id of a predicate label (accepts ``^p`` inverse spellings)."""
        try:
            return self._pred_id[label]
        except KeyError:
            raise UnknownSymbolError("predicate", label) from None

    def predicate_label(self, pred_id: int) -> str:
        """Label of a predicate id."""
        return self._preds[pred_id]

    def has_predicate(self, label: str) -> bool:
        """True when the predicate label is known."""
        return label in self._pred_id

    def inverse_predicate(self, pred_id: int) -> int:
        """Id of the inverse of a predicate id (an involution)."""
        return self._inverse[pred_id]

    @property
    def node_labels(self) -> tuple[str, ...]:
        """All node labels, id order."""
        return self._nodes

    @property
    def predicate_labels(self) -> tuple[str, ...]:
        """All predicate labels of the completed alphabet, id order."""
        return self._preds

    # ------------------------------------------------------------------
    # Encoding triples
    # ------------------------------------------------------------------

    def encode_triples(self, graph: Graph) -> list[tuple[int, int, int]]:
        """Integer-encode the triples of an (already completed) graph."""
        return [
            (self.node_id(s), self.predicate_id(p), self.node_id(o))
            for s, p, o in graph
        ]

    def decode_triple(self, triple: tuple[int, int, int]) -> tuple[str, str, str]:
        """Map an integer triple back to labels."""
        s, p, o = triple
        return (self._nodes[s], self._preds[p], self._nodes[o])

    def size_in_bits(self) -> int:
        """Rough dictionary footprint: UTF-8 label bytes + offsets."""
        label_bytes = sum(len(x.encode("utf-8")) for x in self._nodes)
        label_bytes += sum(len(x.encode("utf-8")) for x in self._preds)
        offsets = (len(self._nodes) + len(self._preds)) * 32
        return label_bytes * 8 + offsets
