"""The ring: a BWT-based, wavelet-indexed representation of a triple set.

This subpackage implements §3.4 of the paper: the three BWT columns of
the triple set, their wavelet-matrix indexes, the per-column ``C``
boundary arrays, LF-steps and range backward search (Eqs. 3–5).

* :class:`~repro.ring.dictionary.Dictionary` — string↔integer encoding
  of nodes and predicates, including the inverse-predicate mapping used
  by two-way RPQs;
* :class:`~repro.ring.ring.Ring` — the integer-level index;
* :class:`~repro.ring.builder.RingIndex` — the user-facing bundle of a
  dictionary plus a ring built from a string-labeled graph.
"""

from repro.ring.builder import RingIndex
from repro.ring.dictionary import Dictionary
from repro.ring.ring import Ring

__all__ = ["Dictionary", "Ring", "RingIndex"]
