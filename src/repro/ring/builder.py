"""User-facing index: dictionary + ring built from a labeled graph.

:class:`RingIndex` is the main entry point of the library::

    from repro import RingIndex
    from repro.graph import santiago_transport

    index = RingIndex.from_graph(santiago_transport())
    for s, o in index.evaluate("(?x, l5+/bus, ?y)"):
        print(s, "→", o)

It owns the string↔id dictionary, the completed triple set, the ring,
and a lazily constructed RPQ engine.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.model import Graph, Triple
from repro.ring.dictionary import Dictionary
from repro.ring.ring import Ring


class RingIndex:
    """A ring plus the dictionary that maps labels to its integer ids."""

    def __init__(self, dictionary: Dictionary, ring: Ring):
        self.dictionary = dictionary
        self.ring = ring
        self._engine = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        node_order: Iterable[str] | None = None,
        predicate_order: Iterable[str] | None = None,
        keep_object_column: bool = False,
        compressed_boundaries: bool = False,
    ) -> "RingIndex":
        """Build the index from a (non-completed) string-labeled graph.

        The graph is completed first — every edge gains its reverse
        twin labeled with the inverse predicate (§5, "Index
        construction"), which doubles the edge count unless some
        predicates are declared symmetric on the graph.
        """
        completed = graph.completion()
        dictionary = Dictionary.from_graph(
            graph, node_order=node_order, predicate_order=predicate_order
        )
        triples = dictionary.encode_triples(completed)
        ring = Ring(
            triples,
            num_nodes=dictionary.num_nodes,
            num_predicates=dictionary.num_predicates,
            keep_object_column=keep_object_column,
            compressed_boundaries=compressed_boundaries,
        )
        return cls(dictionary, ring)

    @classmethod
    def from_triples(
        cls, triples: Iterable[Triple], **kwargs
    ) -> "RingIndex":
        """Convenience wrapper: build from raw string triples."""
        return cls.from_graph(Graph(triples), **kwargs)

    # ------------------------------------------------------------------
    # Queries (delegated to the core engine)
    # ------------------------------------------------------------------

    @property
    def engine(self):
        """The Ring-RPQ engine bound to this index (built lazily)."""
        if self._engine is None:
            from repro.core.engine import RingRPQEngine

            self._engine = RingRPQEngine(self)
        return self._engine

    def evaluate(self, query, **kwargs):
        """Evaluate an RPQ; accepts a query string or an ``RPQ`` object.

        Returns a set of ``(subject, object)`` label pairs; see
        :meth:`repro.core.engine.RingRPQEngine.evaluate`.
        """
        return self.engine.evaluate(query, **kwargs)

    # ------------------------------------------------------------------
    # Triple-pattern access (the ring's original join-support role)
    # ------------------------------------------------------------------

    def match_pattern(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        object: str | None = None,
    ):
        """Iterate the completed graph's triples matching an SPO pattern.

        ``None`` components are wildcards.  All access paths run on the
        ring itself (backward-search steps and wavelet-range listings);
        patterns with a fixed subject are answered through the inverse
        predicate of the completed graph, which is how the RPQ engine
        handles direction throughout.

        Yields ``(subject, predicate, object)`` label triples.
        """
        d = self.dictionary
        ring = self.ring
        if subject is not None and not d.has_node(subject):
            return
        if object is not None and not d.has_node(object):
            return
        if predicate is not None and not d.has_predicate(predicate):
            return

        if predicate is not None and subject is not None:
            # (s, p, ?o)  ==  (?o, ^p, s) on the completed graph; a
            # fully bound pattern additionally filters the object.
            inv = d.predicate_label(
                d.inverse_predicate(d.predicate_id(predicate))
            )
            for o_label, _, s_label in self.match_pattern(
                None, inv, subject
            ):
                if object is None or o_label == object:
                    yield (s_label, predicate, o_label)
            return

        if predicate is not None and object is not None:
            b_o, e_o = ring.object_range(d.node_id(object))
            b_s, e_s = ring.backward_step(b_o, e_o, d.predicate_id(predicate))
            for s_id, rb, re in ring.L_s.range_distinct(b_s, e_s):
                for _ in range(re - rb):
                    yield (d.node_label(s_id), predicate, object)
            return

        if predicate is not None:
            # (?s, p, ?o): §5's single-predicate listing.
            pid = d.predicate_id(predicate)
            inv = d.inverse_predicate(pid)
            b, e = ring.predicate_range(pid)
            for s_id, _, _ in ring.L_s.range_distinct(b, e):
                ob, oe = ring.object_range(s_id)
                tb, te = ring.backward_step(ob, oe, inv)
                for o_id, rb, re in ring.L_s.range_distinct(tb, te):
                    for _ in range(re - rb):
                        yield (
                            d.node_label(s_id), predicate,
                            d.node_label(o_id),
                        )
            return

        if object is not None and subject is None:
            # (?s, ?p, o): predicates from the object's L_p range.
            b_o, e_o = ring.object_range(d.node_id(object))
            for pid, _, _ in ring.L_p.range_distinct(b_o, e_o):
                yield from self.match_pattern(
                    None, d.predicate_label(pid), object
                )
            return

        if subject is not None and object is None:
            # (s, ?p, ?o): invert the edges arriving at s.
            b_o, e_o = ring.object_range(d.node_id(subject))
            for pid, _, _ in ring.L_p.range_distinct(b_o, e_o):
                inv_label = d.predicate_label(d.inverse_predicate(pid))
                yield from self.match_pattern(subject, inv_label, None)
            return

        if subject is not None and object is not None:
            # (s, ?p, o): filter the object's predicates by subject.
            b_o, e_o = ring.object_range(d.node_id(object))
            s_id = d.node_id(subject)
            for pid, _, _ in ring.L_p.range_distinct(b_o, e_o):
                b_s, e_s = ring.backward_step(b_o, e_o, pid)
                rb, re = ring.L_s.rank_pair(s_id, b_s, e_s)
                for _ in range(re - rb):
                    yield (subject, d.predicate_label(pid), object)
            return

        # Fully unbound: enumerate everything.
        for triple in ring.iter_triples():
            yield d.decode_triple(triple)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def size_in_bits(self, include_dictionary: bool = False) -> int:
        """Index size; the paper reports the ring without the dictionary."""
        bits = self.ring.size_in_bits()
        if include_dictionary:
            bits += self.dictionary.size_in_bits()
        return bits

    def bytes_per_triple(self) -> float:
        """Bytes per *completed* triple (the paper's space unit)."""
        n = max(1, len(self.ring))
        return self.ring.size_in_bits() / 8 / n

    def measure(self, name: str = "index"):
        """Space-audit tree: ring columns + dictionary, plus the sparse
        backend when it has already been compiled for this index (the
        audit never forces a compile)."""
        from repro.obs.space import SpaceNode

        children = [
            self.ring.measure("ring"),
            SpaceNode("dictionary", self.dictionary.size_in_bits() // 8,
                      kind="dictionary",
                      detail={"nodes": self.dictionary.num_nodes,
                              "predicates": self.dictionary.num_predicates}),
        ]
        store = getattr(self, "_matrix_store", None)
        if store is not None:
            children.append(store.measure("matrix"))
        return SpaceNode(name, children=children, kind="index",
                         detail={"n_triples": len(self.ring)})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingIndex({self.ring!r})"
