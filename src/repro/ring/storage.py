"""Persistence: save / load a :class:`~repro.ring.builder.RingIndex`.

The index is written as a single ``.npz`` archive: the packed word
buffers of every wavelet-matrix level, the boundary arrays, and the
dictionary labels (as JSON inside the archive).  Loading restores the
exact structures without re-sorting the triples — the same property a
production store gets from persisting its index pages.

::

    from repro.ring.storage import load_index, save_index

    save_index(index, "wikidata.ring.npz")
    index = load_index("wikidata.ring.npz")
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro._util.bits import unpack_words
from repro.errors import ConstructionError
from repro.obs.metrics import NULL_METRICS
from repro.ring.builder import RingIndex
from repro.ring.dictionary import Dictionary
from repro.ring.ring import Ring
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix

#: Bumped whenever the on-disk layout changes.
FORMAT_VERSION = 1


def _bitvector_payload(bv: BitVector) -> np.ndarray:
    """The packed word buffer of a bitvector (little-endian uint64)."""
    return bv._words  # noqa: SLF001 - storage is a friend module


def _restore_bitvector(words: np.ndarray, n: int) -> BitVector:
    return BitVector(unpack_words(words, n))


def _dump_matrix(prefix: str, matrix: WaveletMatrix,
                 payload: dict[str, np.ndarray]) -> dict:
    meta = {
        "n": len(matrix),
        "sigma": matrix.sigma,
        "height": matrix.height,
        "zeros": matrix._zeros,  # noqa: SLF001
        "level_lengths": [len(bv) for bv in matrix._levels],  # noqa: SLF001
    }
    for i, bv in enumerate(matrix._levels):  # noqa: SLF001
        payload[f"{prefix}_level{i}"] = _bitvector_payload(bv)
    return meta


def _load_matrix(prefix: str, meta: dict, archive) -> WaveletMatrix:
    matrix = WaveletMatrix.__new__(WaveletMatrix)
    levels = []
    for i, length in enumerate(meta["level_lengths"]):
        words = archive[f"{prefix}_level{i}"]
        levels.append(_restore_bitvector(words, length))
    # Reconstruct derived tables exactly as the constructor would.
    n = int(meta["n"])
    sigma = int(meta["sigma"])
    matrix._n = n
    matrix._sigma = sigma
    matrix._height = int(meta["height"])
    matrix._levels = levels
    matrix._zeros = [int(z) for z in meta["zeros"]]
    matrix._batch_cache = None
    counts = np.zeros(sigma, dtype=np.int64)
    if n:
        # Recover symbol counts by replaying the bottom-level layout:
        # decode each symbol once via access() would be O(n log σ);
        # instead rebuild counts from the sequence itself.
        decoded = np.fromiter(
            (matrix.access(i) for i in range(n)), dtype=np.int64, count=n
        )
        counts = np.bincount(decoded, minlength=sigma).astype(np.int64)
    matrix._counts = counts
    class_cum = np.zeros(sigma + 1, dtype=np.int64)
    np.cumsum(counts, out=class_cum[1:])
    matrix._class_cum = class_cum
    from repro.succinct.wavelet_matrix import _bit_reverse

    bottom_start = np.zeros(sigma, dtype=np.int64)
    order = sorted(range(sigma),
                   key=lambda c: _bit_reverse(c, matrix._height))
    acc = 0
    for c in order:
        bottom_start[c] = acc
        acc += int(counts[c])
    matrix._bottom_start = bottom_start
    return matrix


def save_index(index: RingIndex, path: str | Path) -> None:
    """Write the index (ring + dictionary) to an ``.npz`` archive."""
    ring = index.ring
    payload: dict[str, np.ndarray] = {}
    meta = {
        "format": FORMAT_VERSION,
        "n": len(ring),
        "num_nodes": ring.num_nodes,
        "num_predicates": ring.num_predicates,
        "has_object_column": ring.L_o is not None,
        "L_p": _dump_matrix("L_p", ring.L_p, payload),
        "L_s": _dump_matrix("L_s", ring.L_s, payload),
        "dictionary": {
            "nodes": list(index.dictionary.node_labels),
            "predicates": list(index.dictionary.predicate_labels),
            "inverse": [
                index.dictionary.inverse_predicate(p)
                for p in range(index.dictionary.num_predicates)
            ],
        },
    }
    payload["C_o"] = ring.C_o.to_array()
    payload["C_p"] = ring.C_p.to_array()
    if ring.L_o is not None:
        meta["L_o"] = _dump_matrix("L_o", ring.L_o, payload)
        payload["C_s"] = ring.C_s.to_array()
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **payload)


def load_index(path: str | Path) -> RingIndex:
    """Restore an index written by :func:`save_index`."""
    archive = np.load(path)
    meta = json.loads(bytes(archive["meta_json"]).decode("utf-8"))
    if meta.get("format") != FORMAT_VERSION:
        raise ConstructionError(
            f"unsupported ring archive format {meta.get('format')!r}"
        )

    ring = Ring.__new__(Ring)
    ring._n = int(meta["n"])
    ring._num_nodes = int(meta["num_nodes"])
    ring._num_preds = int(meta["num_predicates"])
    ring.obs = NULL_METRICS
    ring.L_p = _load_matrix("L_p", meta["L_p"], archive)
    ring.L_s = _load_matrix("L_s", meta["L_s"], archive)
    from repro.ring.ring import BoundaryArray

    ring.C_o = BoundaryArray(archive["C_o"])
    ring.C_p = BoundaryArray(archive["C_p"])
    if meta["has_object_column"]:
        ring.L_o = _load_matrix("L_o", meta["L_o"], archive)
        ring.C_s = BoundaryArray(archive["C_s"])
    else:
        ring.L_o = None
        ring.C_s = None

    dict_meta = meta["dictionary"]
    dictionary = Dictionary(
        dict_meta["nodes"], dict_meta["predicates"],
        [int(x) for x in dict_meta["inverse"]],
    )
    return RingIndex(dictionary, ring)
