"""The ring data structure (§3.4 of the paper).

The ring regards each triple ``(s, p, o)`` as a circular string and
keeps the last column of each of the three sorted rotation families:

* ``L_p`` — the predicate preceding each ``osp`` rotation: the
  predicate column of the triples sorted by ``(o, s)``;
* ``L_s`` — the subject preceding each ``pos`` rotation: the subject
  column of the triples sorted by ``(p, o)``;
* ``L_o`` — the object preceding each ``spo`` rotation: the object
  column of the triples sorted by ``(s, p)``.

``C_o`` partitions ``L_p`` by object, ``C_p`` partitions ``L_s`` by
predicate and ``C_s`` partitions ``L_o`` by subject.  ``L_p`` and
``L_s`` carry wavelet-matrix indexes; they are all the RPQ algorithm
needs (§4: *"we use the wavelet trees representing sequences L_p and
L_s, as well as all the arrays C"*).  ``L_o`` is optional — the RPQ
engine never touches it, but keeping it restores the full ring and
enables triple-pattern enumeration from any column, so it is retained
behind a flag for the join-support use case of the original ring paper.

All positions are 0-based and ranges half-open, unlike the paper's
1-based prose; the worked-example tests translate explicitly.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import ConstructionError
from repro.obs.metrics import NULL_METRICS
from repro.succinct.elias_fano import EliasFano
from repro.succinct.wavelet_matrix import WaveletMatrix

IntTriple = tuple[int, int, int]


class BoundaryArray:
    """A monotone boundary array, plain (numpy) or Elias-Fano encoded.

    The ring's ``C`` arrays are non-decreasing sequences of triple
    positions; the paper's implementation stores ``C_o`` as a (sparse)
    bitvector, which is exactly what the Elias-Fano option provides
    here while keeping the plain-array representation as the fast
    default.
    """

    __slots__ = ("_plain", "_ef", "_py")

    def __init__(self, values: np.ndarray, compressed: bool = False):
        if compressed:
            self._plain = None
            self._ef = EliasFano(int(v) for v in values)
        else:
            self._plain = values
            self._ef = None
        self._py = None

    def gather(self, indices) -> np.ndarray:
        """Vectorized multi-index read, as an ``int64`` array.

        Plain arrays use one numpy fancy-index gather; the Elias-Fano
        encoding falls back to a per-index loop.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if self._plain is not None:
            return self._plain[idx].astype(np.int64, copy=False)
        return np.fromiter(
            (self._ef.get(int(i)) for i in idx), dtype=np.int64,
            count=len(idx),
        )

    def fast_list(self) -> "list[int] | None":
        """Plain Python-int list view, or ``None`` when Elias-Fano
        encoded (callers then fall back to ``__getitem__``)."""
        if self._plain is None:
            return None
        if self._py is None:
            self._py = self._plain.tolist()
        return self._py

    def __len__(self) -> int:
        return len(self._plain) if self._plain is not None else len(self._ef)

    def __getitem__(self, i: int) -> int:
        if self._plain is not None:
            return int(self._plain[i])
        return self._ef.get(i)

    def bracket(self, position: int) -> int:
        """Largest index ``i`` with ``self[i] <= position``."""
        if self._plain is not None:
            return int(
                np.searchsorted(self._plain, position, side="right")
            ) - 1
        return self._ef.successor_index(position + 1) - 1

    def to_array(self) -> np.ndarray:
        """Decode to a plain int64 numpy array (for persistence)."""
        if self._plain is not None:
            return self._plain
        return np.fromiter(self._ef, dtype=np.int64, count=len(self._ef))

    @property
    def is_compressed(self) -> bool:
        """True when backed by the Elias-Fano encoding."""
        return self._ef is not None

    def size_in_bits(self) -> int:
        """Actually allocated bits."""
        if self._plain is not None:
            return self._plain.nbytes * 8
        return self._ef.size_in_bits()

    def measure(self, name: str = "boundary"):
        """Space-audit node, reporting which form backs the array.

        The lazy ``_py`` decode cache is excluded by the library-wide
        mirror convention.
        """
        from repro.obs.space import SpaceNode

        if self._plain is not None:
            child = SpaceNode("plain_int64", self._plain.nbytes, kind="buffer",
                              detail={"dtype": str(self._plain.dtype)})
            form = "plain-int64"
        else:
            child = self._ef.measure("elias_fano")
            form = "elias-fano"
        return SpaceNode(name, children=[child], kind="boundary_array",
                         detail={"form": form, "entries": len(self)})


class Ring:
    """BWT-style index over a set of integer triples.

    Parameters
    ----------
    triples:
        The triples of the *completed* graph, integer-encoded.
    num_nodes, num_predicates:
        Alphabet sizes (``|V|`` and ``|P⁺|``).
    keep_object_column:
        Also build ``L_o`` (with its wavelet matrix); off by default
        since RPQ evaluation does not need it.
    compressed_boundaries:
        Store the ``C`` arrays Elias-Fano encoded (the sdsl
        ``sd_vector`` representation the paper's code uses for
        ``C_o``) instead of plain int64 arrays: considerably smaller,
        slightly slower per access.
    """

    def __init__(
        self,
        triples: Sequence[IntTriple],
        num_nodes: int,
        num_predicates: int,
        keep_object_column: bool = False,
        compressed_boundaries: bool = False,
    ):
        triples = sorted(set(triples))
        n = len(triples)
        self._n = n
        self._num_nodes = int(num_nodes)
        self._num_preds = int(num_predicates)
        #: Observability sink for the *coarse* batch entry points
        #: (``backward_step_many`` / ``object_ranges_many``); the engine
        #: installs its registry here for the span of one ``evaluate``.
        #: Scalar per-operation methods stay uninstrumented — see
        #: :mod:`repro.obs.instrument` for the opt-in class swap.
        self.obs = NULL_METRICS

        if n:
            arr = np.asarray(triples, dtype=np.int64)
            s_col, p_col, o_col = arr[:, 0], arr[:, 1], arr[:, 2]
            if s_col.min() < 0 or o_col.min() < 0 or p_col.min() < 0:
                raise ConstructionError("negative ids in triples")
            if max(int(s_col.max()), int(o_col.max())) >= num_nodes:
                raise ConstructionError("node id out of range")
            if int(p_col.max()) >= num_predicates:
                raise ConstructionError("predicate id out of range")
        else:
            s_col = p_col = o_col = np.zeros(0, dtype=np.int64)

        # L_p: predicates of triples sorted by (o, s); C_o partitions it.
        order_osp = np.lexsort((p_col, s_col, o_col))
        lp_values = p_col[order_osp]
        self.L_p = WaveletMatrix(lp_values, sigma=num_predicates)
        self.C_o = BoundaryArray(
            _boundaries(o_col[order_osp], num_nodes, n),
            compressed_boundaries,
        )

        # L_s: subjects of triples sorted by (p, o); C_p partitions it.
        order_pos = np.lexsort((s_col, o_col, p_col))
        ls_values = s_col[order_pos]
        self.L_s = WaveletMatrix(ls_values, sigma=num_nodes)
        self.C_p = BoundaryArray(
            _boundaries(p_col[order_pos], num_predicates, n),
            compressed_boundaries,
        )

        # L_o: objects of triples sorted by (s, p); C_s partitions it.
        self.L_o: WaveletMatrix | None = None
        self.C_s: BoundaryArray | None = None
        if keep_object_column:
            order_spo = np.lexsort((o_col, p_col, s_col))
            self.L_o = WaveletMatrix(o_col[order_spo], sigma=num_nodes)
            self.C_s = BoundaryArray(
                _boundaries(s_col[order_spo], num_nodes, n),
                compressed_boundaries,
            )

    @classmethod
    def from_parts(
        cls,
        L_p: WaveletMatrix,
        C_o: BoundaryArray,
        L_s: WaveletMatrix,
        C_p: BoundaryArray,
        n: int,
        num_nodes: int,
        num_predicates: int,
        L_o: "WaveletMatrix | None" = None,
        C_s: "BoundaryArray | None" = None,
    ) -> "Ring":
        """Reassemble a ring from prebuilt columns and boundaries.

        The *view* construction path of the snapshot plane
        (:mod:`repro.ring.snapshot`): the columns are typically
        :meth:`WaveletMatrix.from_parts` views over one shared-memory
        segment, so no sorting, packing or copying happens here — this
        is how N worker processes serve one physical index copy.
        """
        self = cls.__new__(cls)
        self._n = int(n)
        self._num_nodes = int(num_nodes)
        self._num_preds = int(num_predicates)
        self.obs = NULL_METRICS
        self.L_p = L_p
        self.C_o = C_o
        self.L_s = L_s
        self.C_p = C_p
        self.L_o = L_o
        self.C_s = C_s
        return self

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def num_nodes(self) -> int:
        """Number of node ids, ``|V|``."""
        return self._num_nodes

    @property
    def num_predicates(self) -> int:
        """Number of predicate ids in the completed alphabet."""
        return self._num_preds

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------

    def full_range(self) -> tuple[int, int]:
        """The ``L_p`` range covering every triple."""
        return (0, self._n)

    def object_range(self, o: int) -> tuple[int, int]:
        """``L_p`` range of the triples whose object is ``o``.

        This is the paper's ``L_p[C_o[o]+1 .. C_o[o+1]]`` in 0-based,
        half-open form; part three of the NFA step (§4.3) calls this.
        """
        return (int(self.C_o[o]), int(self.C_o[o + 1]))

    def predicate_range(self, p: int) -> tuple[int, int]:
        """``L_s`` range of the triples whose predicate is ``p``.

        Used by the §5 fast paths: the subjects of all ``p``-edges are
        exactly the symbols of ``L_s`` within this range (ordered by
        object).
        """
        return (int(self.C_p[p]), int(self.C_p[p + 1]))

    def predicate_count(self, p: int) -> int:
        """Number of edges labeled ``p`` (a selectivity statistic)."""
        lo, hi = self.predicate_range(p)
        return hi - lo

    # ------------------------------------------------------------------
    # Selectivity statistics (§6)
    # ------------------------------------------------------------------

    def count_distinct_predicates_into(self, o: int) -> int:
        """Distinct edge labels arriving at object ``o``."""
        b, e = self.object_range(o)
        return self.L_p.range_count_distinct(b, e)

    def count_distinct_subjects_of(self, p: int) -> int:
        """Distinct source nodes of edges labeled ``p``."""
        b, e = self.predicate_range(p)
        return self.L_s.range_count_distinct(b, e)

    # ------------------------------------------------------------------
    # Backward search (Eqs. 4–5)
    # ------------------------------------------------------------------

    def backward_step(self, b_o: int, e_o: int, p: int) -> tuple[int, int]:
        """One backward-search step by predicate ``p``.

        Maps an ``L_p`` range of triples (grouped by object) to the
        ``L_s`` range of the same triples restricted to predicate ``p``.
        """
        rank_b, rank_e = self.L_p.rank_pair(p, b_o, e_o)
        base = int(self.C_p[p])
        return (base + rank_b, base + rank_e)

    def backward_step_many(self, ranges, p: int, obs=None) -> np.ndarray:
        """Bulk Eq. 4–5 steps: many ``L_p`` ranges, one predicate.

        ``ranges`` is a sequence of ``(b_o, e_o)`` pairs (or a
        ``(k, 2)`` array); the result is the ``(k, 2)`` int64 array of
        the corresponding ``L_s`` ranges.  All ranges ride one
        root-to-leaf path walk of ``L_p`` with vectorized rank calls,
        so the per-step Python overhead of :meth:`backward_step` is
        paid once per *batch* instead of once per range.

        ``obs`` overrides the ring's registry for this one call — the
        engine passes its per-query context's registry so concurrent
        queries never share span stacks (the ring itself is immutable).
        """
        arr = np.asarray(ranges, dtype=np.int64).reshape(-1, 2)
        if obs is None:
            obs = self.obs
        span = None
        if obs.enabled:
            spans = obs.spans
            if spans is not None:
                span = spans.start("ring.backward_step_many")
                span.set(k=len(arr), pid=p)
        rank_b, rank_e = self.L_p.rank_pair_many(p, arr[:, 0], arr[:, 1])
        base = int(self.C_p[p])
        out = np.empty_like(arr)
        out[:, 0] = base + rank_b
        out[:, 1] = base + rank_e
        if span is not None:
            obs.spans.end(span)
        return out

    def object_ranges_many(self, nodes, obs=None) -> np.ndarray:
        """Bulk :meth:`object_range`: a ``(k, 2)`` array for ``k`` objects.

        ``obs`` overrides the ring's registry for this call (see
        :meth:`backward_step_many`).
        """
        idx = np.asarray(nodes, dtype=np.int64)
        if obs is None:
            obs = self.obs
        span = None
        if obs.enabled:
            spans = obs.spans
            if spans is not None:
                span = spans.start("ring.object_ranges_many")
                span.set(k=len(idx))
        out = np.empty((len(idx), 2), dtype=np.int64)
        out[:, 0] = self.C_o.gather(idx)
        out[:, 1] = self.C_o.gather(idx + 1)
        if span is not None:
            obs.spans.end(span)
        return out

    def subject_backward_step(self, b_s: int, e_s: int, s: int) -> tuple[int, int]:
        """Backward step from an ``L_s`` range by subject ``s``.

        Maps to the ``L_o`` range of the matching triples.  Only
        available when the object column was kept.
        """
        if self.C_s is None:
            raise ConstructionError("ring was built without L_o / C_s")
        rank_b, rank_e = self.L_s.rank_pair(s, b_s, e_s)
        base = int(self.C_s[s])
        return (base + rank_b, base + rank_e)

    # ------------------------------------------------------------------
    # LF-steps and triple extraction (Eq. 3)
    # ------------------------------------------------------------------

    def lf_p(self, i: int) -> int:
        """LF-step on ``L_p``: position of the same triple in ``L_s``."""
        p = self.L_p.access(i)
        return int(self.C_p[p]) + self.L_p.rank(p, i)

    def lf_s(self, i: int) -> int:
        """LF-step on ``L_s``: position of the same triple in ``L_o``.

        Needs only ``C_s`` conceptually, but our ``C_s`` exists only
        when the object column is kept; otherwise this still works by
        falling back to the subject boundaries computed from ``C_o``'s
        sibling role — hence the explicit guard.
        """
        if self.C_s is None:
            raise ConstructionError("ring was built without L_o / C_s")
        s = self.L_s.access(i)
        return int(self.C_s[s]) + self.L_s.rank(s, i)

    def lf_o(self, i: int) -> int:
        """LF-step on ``L_o``: position of the same triple in ``L_p``."""
        if self.L_o is None:
            raise ConstructionError("ring was built without L_o / C_s")
        o = self.L_o.access(i)
        return int(self.C_o[o]) + self.L_o.rank(o, i)

    def triple_at_lp(self, i: int) -> IntTriple:
        """Decode the triple referenced by ``L_p`` position ``i``.

        Works without ``L_o``: the object is recovered from the ``C_o``
        bracket containing ``i`` and the subject via one LF-step.
        """
        if not 0 <= i < self._n:
            raise IndexError(f"L_p position {i} out of range [0, {self._n})")
        o = self.C_o.bracket(i)
        p = self.L_p.access(i)
        s = self.L_s.access(self.lf_p(i))
        return (s, p, o)

    def iter_triples(self) -> Iterator[IntTriple]:
        """Enumerate all triples (in ``(o, s, p)`` order); for testing."""
        for i in range(self._n):
            yield self.triple_at_lp(i)

    def contains_triple(self, s: int, p: int, o: int) -> bool:
        """Membership test via one backward-search step plus a rank."""
        b_o, e_o = self.object_range(o)
        b_s, e_s = self.backward_step(b_o, e_o, p)
        if b_s >= e_s:
            return False
        rb, re = self.L_s.rank_pair(s, b_s, e_s)
        return re > rb

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def size_in_bits(self) -> int:
        """Actually allocated bits of all columns and boundary arrays."""
        total = self.L_p.size_in_bits() + self.L_s.size_in_bits()
        total += self.C_o.size_in_bits() + self.C_p.size_in_bits()
        if self.L_o is not None:
            total += self.L_o.size_in_bits()
        if self.C_s is not None:
            total += self.C_s.size_in_bits()
        return total

    def size_in_bits_model(self) -> int:
        """sdsl-style space model (what the paper's C++ build allocates).

        ``L_p``/``L_s`` wavelet matrices with 25% rank overhead, ``C_o``
        as a sparse bitvector of ``n + |V|`` bits, ``C_p`` as a plain
        integer array — matching §5 "Index construction".
        """
        total = self.L_p.size_in_bits_model() + self.L_s.size_in_bits_model()
        c_o_bits = (self._n + self._num_nodes) + (self._n + self._num_nodes) // 4
        c_p_bits = (self._num_preds + 1) * max(1, self._n.bit_length())
        total += c_o_bits + c_p_bits
        if self.L_o is not None:
            total += self.L_o.size_in_bits_model()
        return total

    def measure(self, name: str = "ring"):
        """Space-audit tree: per-column wavelet matrices and boundary
        arrays, telescoping exactly to the ring's audited total."""
        from repro.obs.space import SpaceNode

        children = [
            self.L_p.measure("L_p"),
            self.L_s.measure("L_s"),
            self.C_o.measure("C_o"),
            self.C_p.measure("C_p"),
        ]
        if self.L_o is not None:
            children.append(self.L_o.measure("L_o"))
        if self.C_s is not None:
            children.append(self.C_s.measure("C_s"))
        return SpaceNode(
            name,
            children=children,
            kind="ring",
            detail={
                "n": self._n,
                "num_nodes": self._num_nodes,
                "num_predicates": self._num_preds,
                "object_column": self.L_o is not None,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ring(n={self._n}, |V|={self._num_nodes}, "
            f"|P|={self._num_preds}, L_o={'yes' if self.L_o else 'no'})"
        )


def _boundaries(sorted_keys: np.ndarray, alphabet: int, n: int) -> np.ndarray:
    """Cumulative boundary array: out[x] = #items with key < x.

    ``sorted_keys`` must be the key column of the sorted triple order;
    the result has ``alphabet + 1`` entries with ``out[alphabet] == n``.
    """
    counts = np.bincount(sorted_keys, minlength=alphabet) if n else \
        np.zeros(alphabet, dtype=np.int64)
    out = np.zeros(alphabet + 1, dtype=np.int64)
    np.cumsum(counts, out=out[1:])
    return out
