"""Concurrent query serving over one shared immutable ring.

The paper positions the ring as a read-only index many queries can
traverse at once; this package supplies the serving layer that makes
that operational: a worker pool (:class:`QueryService`), admission
control with typed overload rejections (:class:`AdmissionController`),
deadline/cancellation propagation onto the engine's budget ticks, and
a completeness-aware LRU result cache (:class:`ResultCache`), plus a
stdlib asyncio network tier (:class:`HTTPQueryServer`) that streams
answers as chunked NDJSON pages.

See ``docs/serving.md`` for the architecture and the degradation
contract, and ``docs/http.md`` for the wire protocol.
"""

from repro.serve.admission import AdmissionController
from repro.serve.batch import drain_queries, load_query_file
from repro.serve.cache import CacheEntry, ResultCache
from repro.serve.http import HTTPQueryServer
from repro.serve.keys import (
    index_fingerprint,
    normalize_expr,
    query_cache_key,
)
from repro.serve.pool import ProcessQueryService
from repro.serve.service import QueryService, Ticket

__all__ = [
    "AdmissionController",
    "CacheEntry",
    "HTTPQueryServer",
    "ProcessQueryService",
    "QueryService",
    "ResultCache",
    "Ticket",
    "drain_queries",
    "index_fingerprint",
    "load_query_file",
    "normalize_expr",
    "query_cache_key",
]
