"""Batch draining: push a query file through a :class:`QueryService`.

Backs the ``repro query-batch`` CLI mode and the benchmark runner's
``--workers`` throughput path.  A *workload* here is a flat list of
query strings (one ``(s, E, o)`` per line; blank lines and ``#``
comments skipped), optionally replayed for several rounds — repeated
rounds are what make the result cache earn its keep, mirroring the
dashboard/benchmark loops that re-issue the same patterns.
"""

from __future__ import annotations

import time

from repro.errors import OverloadedError


def load_query_file(path) -> list[str]:
    """Read one query per line; skips blanks and ``#`` comments."""
    queries: list[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            queries.append(line)
    return queries


def drain_queries(
    service,
    queries,
    rounds: int = 1,
    timeout: float | None = None,
    limit: int | None = None,
    collect_pairs: bool = False,
) -> dict:
    """Submit every query (``rounds`` times over) and gather results.

    Submission uses :meth:`QueryService.submit_with_retry`, so bursts
    larger than the admission bound back off instead of failing; a
    query that still cannot be admitted is recorded as rejected rather
    than aborting the drain.

    Returns a summary dict: wall-clock seconds, aggregate queries per
    second, per-query records (query, n_results, flags), and the
    service's cache/admission statistics.
    """
    t0 = time.monotonic()
    per_query: list[dict] = []
    rejected = 0
    for round_no in range(rounds):
        tickets = []
        for query in queries:
            try:
                tickets.append((query, service.submit_with_retry(
                    query, timeout=timeout, limit=limit,
                )))
            except OverloadedError:
                rejected += 1
                tickets.append((query, None))
        for query, ticket in tickets:
            if ticket is None:
                record = {"query": query, "round": round_no,
                          "rejected": True}
            else:
                result = ticket.result()
                stats = result.stats
                record = {
                    "query": query,
                    "round": round_no,
                    "n_results": len(result.pairs),
                    "elapsed": stats.elapsed,
                    "cached": stats.cached,
                    "timed_out": stats.timed_out,
                    "truncated": stats.truncated,
                    "cancelled": stats.cancelled,
                }
                if collect_pairs:
                    record["pairs"] = sorted(result.pairs)
            per_query.append(record)
    elapsed = time.monotonic() - t0
    completed = sum(1 for r in per_query if not r.get("rejected"))
    return {
        "queries": len(queries),
        "rounds": rounds,
        "completed": completed,
        "rejected": rejected,
        "elapsed_seconds": elapsed,
        "qps": completed / elapsed if elapsed > 0 else 0.0,
        "per_query": per_query,
        "service": service.stats(),
    }
