"""Process-pool serving tier over one shared-memory ring snapshot.

:class:`ProcessQueryService` is the GIL-free sibling of
:class:`~repro.serve.service.QueryService`: same admission control,
result cache, deadlines, cancellation and telemetry — but every worker
is an OS process that *attaches* (never copies) the index from one
``multiprocessing.shared_memory`` segment built by
:class:`~repro.ring.snapshot.SharedIndexHandle`, so N workers evaluate
RPQs on N cores against one physical copy of the succinct index.

Plumbing per worker:

* a duplex :func:`multiprocessing.Pipe` carrying ``("run", seq,
  query_id, query, timeout, limit)`` requests down and ``(status,
  result-or-error, local Metrics, (worker_started, worker_finished))``
  responses up — results ship the full
  :class:`~repro.core.result.QueryStats`, span subtrees and
  histograms, so ``/metrics``, the slow log and EXPLAIN ANALYZE keep
  working unchanged.  The two trailing stamps are the worker's
  ``time.monotonic()`` readings around evaluation; ``CLOCK_MONOTONIC``
  is system-wide on Linux, so the parent splices them into the query's
  :class:`~repro.obs.lifecycle.QueryLifecycle` and the pipe-transfer
  stages fall out as plain differences;
* a shared ``cancel_seq`` value: the parent cancels the in-flight
  query by publishing its sequence number, which the worker's engine
  observes at its next cooperative budget tick (no per-query Event
  objects to leak across the boundary);
* a parent-side manager thread (the base class's worker loop) that
  dispatches, receives and — when the pipe dies because the worker
  crashed — settles the ticket with a typed
  :class:`~repro.errors.WorkerCrashedError` and respawns the worker.

The parent keeps everything stateful: cache, admission, gauges,
query-id minting, slow/query logs.  Workers are stateless evaluators
and can be killed at any time without losing accepted work other than
the single in-flight query.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time

from repro.core.engine import RingRPQEngine
from repro.core.result import QueryResult
from repro.errors import ReproError, WorkerCrashedError
from repro.obs.metrics import Metrics, NULL_METRICS
from repro.ring.snapshot import SharedIndexHandle, attach_token
from repro.serve.service import _LOAD_GAUGE_PREFIXES, QueryService, Ticket

_JOIN_TIMEOUT = 5.0


class _SeqCancelToken:
    """Worker-side cancel token: set once the parent publishes my seq.

    Duck-types the ``threading.Event`` interface the engine's budget
    ticks poll.  Reads the shared value without its lock — the parent
    only ever transitions it *to* this query's sequence number, and a
    missed read is caught by the next tick.
    """

    __slots__ = ("_value", "_seq")

    def __init__(self, value, seq: int):
        self._value = value
        self._seq = seq

    def is_set(self) -> bool:
        return self._value.value == self._seq


def _pool_worker_main(conn, token, worker_id, engine_kwargs,
                      obs_enabled, cancel_value):
    """Worker process body: attach the shared index once, then serve.

    Runs until the parent sends ``("stop",)`` or the pipe closes.  The
    attached mapping is pinned for the process lifetime; the OS
    reclaims it at exit (the segment itself belongs to the parent).
    """
    index = attach_token(token)
    engine = RingRPQEngine(index, **(engine_kwargs or {}))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # parent died: exit quietly
            return
        if msg[0] == "stop":
            conn.close()
            return
        _, seq, query_id, query, timeout, limit = msg
        started = time.monotonic()
        local = Metrics(span_capacity=64) if obs_enabled else NULL_METRICS
        cancel = _SeqCancelToken(cancel_value, seq)
        spans = local.spans if local.enabled else None
        span = None
        try:
            if spans is not None:
                span = spans.start(f"worker:{worker_id}")
                span.set(query=str(query), query_id=query_id)
            try:
                result = engine.evaluate(
                    query,
                    timeout=timeout,
                    limit=limit,
                    metrics=local,
                    cancel=cancel,
                    query_id=query_id,
                )
            finally:
                if span is not None:
                    spans.end(span)
            if span is not None:
                span.set(n_results=len(result.pairs))
            marks = (started, time.monotonic())
            payload = ("ok", result, local if obs_enabled else None, marks)
        except BaseException as exc:  # noqa: BLE001 - ship to parent
            marks = (started, time.monotonic())
            payload = ("err", exc, local if obs_enabled else None, marks)
        try:
            conn.send(payload)
        except Exception:
            # Unpicklable result or error: degrade to a typed, always
            # picklable error rather than killing the worker.
            conn.send((
                "err",
                ReproError(
                    f"worker {worker_id} could not ship its response "
                    f"for {query_id}"
                ),
                None,
                (started, time.monotonic()),
            ))


class _WorkerSlot:
    """One worker process plus its parent-side plumbing."""

    __slots__ = ("proc", "conn", "cancel_value", "seq")

    def __init__(self, proc, conn, cancel_value):
        self.proc = proc
        self.conn = conn
        self.cancel_value = cancel_value
        self.seq = 0

    def next_seq(self) -> int:
        self.seq += 1
        return self.seq

    def cancel(self, seq: int) -> None:
        """Publish ``seq`` as cancelled (seen at the next budget tick)."""
        with self.cancel_value.get_lock():
            self.cancel_value.value = seq

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.proc.join(_JOIN_TIMEOUT)
        if self.proc.is_alive():  # pragma: no cover - stuck worker
            self.proc.terminate()
            self.proc.join(_JOIN_TIMEOUT)
        self.conn.close()


class ProcessQueryService(QueryService):
    """Process-pool RPQ serving over one shared-memory index snapshot.

    Same public API and degradation contract as
    :class:`~repro.serve.service.QueryService`; see the module
    docstring for the wire plumbing.  Extra parameters:

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.
        ``fork`` starts fastest; ``spawn`` workers attach the segment
        by name and re-import the package, which the test suite smokes
        explicitly.
    engine_kwargs:
        Keyword arguments for each worker's
        :class:`~repro.core.engine.RingRPQEngine` (e.g.
        ``prepare_cache_size``).  The process tier always builds ring
        engines in its workers; the ``engine`` parameter of the base
        class only shapes parent-side routing/labels.
    include_matrices:
        Snapshot the sparse boolean backend's CSR matrices into the
        segment too (on by default when scipy is available).
    """

    def __init__(
        self,
        index,
        workers: int = 4,
        start_method: str | None = None,
        engine_kwargs: dict | None = None,
        include_matrices: bool = True,
        **kwargs,
    ):
        self._ctx = (mp.get_context(start_method)
                     if start_method else mp.get_context())
        self._engine_kwargs = dict(engine_kwargs or {})
        self._shared = SharedIndexHandle.create(
            index, include_matrices=include_matrices
        )
        self._slots: list[_WorkerSlot | None] = [None] * workers
        self._restarts = 0
        self._pool_lock = threading.Lock()
        try:
            if "engine" not in kwargs:
                kwargs["engine"] = RingRPQEngine(
                    index, **self._engine_kwargs
                )
            super().__init__(index, workers=workers, **kwargs)
            for i in range(workers):
                self._slots[i] = self._spawn(i)
        except BaseException:
            self._teardown_pool()
            raise
        obs = self.metrics
        if obs.enabled:
            with self._lock:
                self._refresh_pool_gauges(obs)

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        cancel_value = self._ctx.Value("Q", 0, lock=True)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(
                child_conn, self._shared.token(), worker_id,
                self._engine_kwargs, self.metrics.enabled, cancel_value,
            ),
            name=f"repro-serve-proc-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _WorkerSlot(proc, parent_conn, cancel_value)

    def _refresh_pool_gauges(self, obs) -> None:
        # Callers hold self._lock.
        live = sum(
            1 for s in self._slots
            if s is not None and s.proc.is_alive()
        )
        obs.set_gauge("serve.pool.workers", live)
        obs.set_gauge("serve.pool.restarts", self._restarts)
        obs.set_gauge("serve.pool.shm_bytes", self._shared.nbytes)

    def _run_engine(self, ticket: Ticket, timeout: float | None,
                    local, worker_id: int):
        slot = self._slots[worker_id]
        seq = slot.next_seq()
        # Forward future cancels to the worker's shared sequence; a
        # cancel that already landed (between queue and here) must be
        # re-published because the hook was not yet attached.
        ticket._on_cancel = lambda: slot.cancel(seq)
        if ticket.cancelled:
            slot.cancel(seq)
        lifecycle = ticket.lifecycle
        try:
            slot.conn.send((
                "run", seq, ticket.query_id, str(ticket.query),
                timeout, ticket.limit,
            ))
            lifecycle.mark("request_serialized")
            status, payload, shipped, worker_marks = slot.conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            raise self._handle_crash(worker_id, slot) from None
        finally:
            ticket._on_cancel = None
        # CLOCK_MONOTONIC is system-wide on Linux, so the worker's
        # stamps slot directly between ours; the gap before
        # worker_started is the request's pipe transit + queueing in
        # the worker, the gap after worker_finished the reply's
        # pickle + pipe transit.
        started, finished = worker_marks
        lifecycle.mark("worker_started", t=started)
        lifecycle.mark("worker_finished", t=finished)
        lifecycle.mark("reply_deserialized")
        if shipped is not None and local.enabled:
            # Fold the worker's registry (counters, histograms, span
            # subtrees) into the manager thread's local one; _finish
            # then merges it into the service registry as usual.
            local.merge(shipped)
        if status == "err":
            raise payload
        result: QueryResult = payload
        return result

    def _handle_crash(self, worker_id: int,
                      slot: _WorkerSlot) -> WorkerCrashedError:
        """Settle bookkeeping for a dead worker and respawn it."""
        slot.proc.join(_JOIN_TIMEOUT)
        exitcode = slot.proc.exitcode
        try:
            slot.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        with self._pool_lock:
            respawn = not self._closed
            if respawn:
                self._slots[worker_id] = self._spawn(worker_id)
                self._restarts += 1
        obs = self.metrics
        if obs.enabled:
            with self._lock:
                obs.inc("serve.pool.worker_crashes")
                self._refresh_pool_gauges(obs)
        # Attach the flight recorder's tail: the audit records of the
        # queries settled just before the death are the post-mortem
        # context a crash counter cannot give.
        flight = (self.flight.records(last=32)
                  if self.flight is not None else None)
        return WorkerCrashedError(
            f"repro-serve-proc-{worker_id}", exitcode, flight=flight
        )

    def _teardown_pool(self) -> None:
        for i, slot in enumerate(self._slots):
            if slot is not None:
                slot.stop()
                self._slots[i] = None
        self._shared.close()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        """Drain, stop the workers, release the shared segment.

        The process tier always waits for its manager threads — worker
        teardown while a manager still dispatches would look like a
        crash.  After this returns the shared-memory segment is
        unlinked; the ``serve.pool.*`` gauges fall under the base
        class's registry-driven load-gauge sweep, so no explicit
        zeroing is needed here (nothing refreshes them after the
        workers stop).
        """
        if self._closed:
            return
        super().close(wait=True)
        with self._pool_lock:
            self._teardown_pool()
        obs = self.metrics
        if obs.enabled:
            # Re-run the sweep after teardown: a crash detected between
            # the base close and slot.stop() refreshes serve.pool.*
            # gauges, and those must not survive the service either.
            with self._lock:
                for name in list(obs.gauges):
                    if name.startswith(_LOAD_GAUGE_PREFIXES):
                        obs.set_gauge(name, 0)

    def stats(self) -> dict:
        """Base stats plus the pool axis (shm bytes, restarts)."""
        base = super().stats()
        base["pool"] = {
            "kind": "processes",
            "start_method": self._ctx.get_start_method(),
            "shm_bytes": self._shared.nbytes,
            "restarts": self._restarts,
            "live_workers": sum(
                1 for s in self._slots
                if s is not None and s.proc.is_alive()
            ),
        }
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ProcessQueryService(workers={self.workers}, "
                f"start_method={self._ctx.get_start_method()!r}, "
                f"shm_bytes={self._shared.nbytes})")
