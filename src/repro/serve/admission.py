"""Admission control: bounded queueing and in-flight limits.

A serving layer over a CPU-bound engine degrades *sharply* once work
arrives faster than it drains — queues grow without bound, every
deadline starts expiring, and the system does a lot of work it then
throws away.  The standard answer (and the one this module implements)
is to fast-reject at the door instead: a bounded pending queue plus an
in-flight cap, with a typed :class:`~repro.errors.OverloadedError`
carrying a suggested backoff so well-behaved clients retry instead of
hammering.

The controller is deliberately small: two counters and a semaphore
behind one lock.  The service holds the actual queue; the controller
just decides whether a submission may enter and tracks the levels the
queue-depth / in-flight gauges report.
"""

from __future__ import annotations

import threading

from repro.errors import OverloadedError


class AdmissionController:
    """Bounded-queue admission decisions for a query service.

    Parameters
    ----------
    max_pending:
        Maximum number of admitted-but-not-finished queries (queued
        plus executing).  Submissions beyond it raise
        :class:`OverloadedError` immediately — the fast-reject path.
    max_inflight:
        Maximum number of queries *executing* concurrently; workers
        block on this before evaluating, so a service can run many
        worker threads but bound the evaluation concurrency (useful
        when a few heavy queries should not monopolise every worker).
        ``None`` means "as many as there are workers".
    retry_after:
        Suggested initial client backoff (seconds) carried in the
        rejection error.
    """

    def __init__(self, max_pending: int = 64,
                 max_inflight: int | None = None,
                 retry_after: float = 0.05):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 or None")
        self.max_pending = max_pending
        self.max_inflight = max_inflight
        self.retry_after = retry_after
        self._lock = threading.Lock()
        self._pending = 0
        self._inflight = 0
        self._slots = (
            threading.Semaphore(max_inflight)
            if max_inflight is not None else None
        )
        self.admitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Admitted queries not yet finished (queued + executing)."""
        return self._pending

    @property
    def inflight(self) -> int:
        """Queries currently executing on a worker."""
        return self._inflight

    def admit(self) -> None:
        """Claim one pending slot or raise :class:`OverloadedError`."""
        with self._lock:
            if self._pending >= self.max_pending:
                self.rejected += 1
                raise OverloadedError(
                    "pending queue full", self._pending, self.max_pending,
                    retry_after=self.retry_after,
                )
            self._pending += 1
            self.admitted += 1

    def start(self) -> None:
        """Worker-side: block for an execution slot, mark in-flight."""
        if self._slots is not None:
            self._slots.acquire()
        with self._lock:
            self._inflight += 1

    def finish(self) -> None:
        """Worker-side: release the execution slot and the pending slot."""
        with self._lock:
            self._inflight -= 1
            self._pending -= 1
        if self._slots is not None:
            self._slots.release()

    def abandon(self) -> None:
        """Release a pending slot that never started executing
        (cancelled while queued, or drained at shutdown)."""
        with self._lock:
            self._pending -= 1

    def snapshot(self) -> dict:
        """Plain-dict statistics view."""
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "max_inflight": self.max_inflight,
                "pending": self._pending,
                "inflight": self._inflight,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AdmissionController(pending={self._pending}/"
                f"{self.max_pending}, inflight={self._inflight})")
