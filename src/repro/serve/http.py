"""The async HTTP front door: a stdlib asyncio HTTP/1.1 JSON API.

Until now :class:`~repro.serve.service.QueryService` was in-process
only — the CLI REPL was its sole client, and the admission
controller's fast-reject path had never been exercised from outside
the process.  This module puts a real network tier in front of the
Ticket API, in the same stdlib-only spirit as :mod:`repro.obs.httpd`
but built on :mod:`asyncio` streams, because a front door must keep
thousands of mostly-idle connections cheap and must stream large
answers with per-connection backpressure:

* ``POST /query`` — submit one RPQ and stream its answer back as
  chunked **NDJSON pages** (header record, bounded page records,
  trailer record carrying the budget tags), so a 10⁶-pair answer
  never materialises in one response buffer;
* ``POST /submit`` / ``GET /status/{id}`` / ``GET /result/{id}`` —
  the asynchronous shape of the same API: submit returns ``202`` with
  the ``query_id`` immediately, status polls, result streams pages
  with **cursor resume** (``?cursor=N&page_size=K``), so a client can
  re-fetch any suffix of a settled answer without re-running it;
* ``POST /cancel/{id}`` (also ``DELETE /query/{id}``) — cooperative
  cancellation mapped onto :meth:`Ticket.cancel`;
* ``GET /healthz`` and ``GET /debug/flight`` — the service's health
  snapshot and the audit plane's flight-recorder ring, so the
  lifecycle instrumentation of PR 8 is observable through the same
  socket the queries use.

Contract highlights (the parts a client must know):

* ``timeout_ms`` in the request body becomes an **absolute deadline**
  covering queueing (the service's degradation contract): an expired
  query settles as a partial tagged ``timed_out`` + ``truncated`` in
  the trailer, never as an error;
* admission-control rejections surface as **429** with a
  ``Retry-After`` header (integer seconds, RFC-shaped) plus the exact
  suggested backoff in the JSON body — the fast-reject path, finally
  observable end-to-end from outside the process;
* a client that disconnects mid-request **cancels its query**: the
  ticket settles, the admission slot is released, and the load gauges
  return to zero (``tests/test_http_faults.py`` pins this);
* after :meth:`QueryService.close` every late submission maps to a
  clean **503** (:class:`~repro.errors.ServiceClosedError`) instead
  of raising into the event loop;
* every query-bearing response echoes the audit plane:
  ``X-Query-Id`` and ``X-Query-Stages`` (the lifecycle stage
  decomposition, ``stage=seconds`` pairs) ride the response headers.

See ``docs/http.md`` for endpoint-by-endpoint documentation with curl
examples, and :mod:`repro.bench.loadgen` for the open-loop generator
that drives this tier into overload on purpose.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import math
import threading
import time
from collections import OrderedDict
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import (
    OverloadedError,
    RegexSyntaxError,
    ReproError,
    ServiceClosedError,
    UnknownSymbolError,
)

#: Content type of the streamed page framing.
NDJSON_CONTENT_TYPE = "application/x-ndjson"
#: Content type of the plain JSON bodies.
JSON_CONTENT_TYPE = "application/json"

#: Default / maximum number of pairs per NDJSON page record.  The
#: bound is the whole point: the largest single write the server ever
#: performs is one page, regardless of answer size.
DEFAULT_PAGE_SIZE = 1_000
MAX_PAGE_SIZE = 10_000

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 1024 * 1024
# How much of an over-limit body the 413 path will drain before closing
# (keeps the rejection a clean FIN instead of an RST, without letting a
# hostile Content-Length hold the connection forever).
_MAX_DRAIN_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 411: "Length Required",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


# ----------------------------------------------------------------------
# Page framing (pure, shared with the hypothesis property tests)
# ----------------------------------------------------------------------


def clamp_page_size(page_size: "int | None") -> int:
    """Resolve a requested page size against the default and the cap."""
    if page_size is None:
        return DEFAULT_PAGE_SIZE
    if page_size < 1:
        raise ValueError("page_size must be >= 1")
    return min(page_size, MAX_PAGE_SIZE)


def iter_pages(pairs: list, cursor: int, page_size: int):
    """Yield ``(cursor, page, next_cursor)`` over a sorted pair list.

    ``cursor`` is a plain offset into the sorted list — the resume
    token a client sends back to continue a partially-read answer.
    ``next_cursor`` is ``None`` on the final page.  An empty answer
    (or a cursor at/past the end) yields nothing; the trailer record
    still closes the stream, so a client can distinguish "no more
    pages" from a truncated connection.
    """
    n = len(pairs)
    at = max(0, cursor)
    while at < n:
        page = pairs[at:at + page_size]
        nxt = at + len(page)
        yield at, page, (nxt if nxt < n else None)
        at = nxt


def frame_records(query_id: str, query: str, pairs: list, stats_dict: dict,
                  cursor: int = 0,
                  page_size: int = DEFAULT_PAGE_SIZE) -> list[dict]:
    """The full NDJSON framing of one settled answer, as dicts.

    Exactly what the streaming endpoints emit, materialised — the
    conformance and hypothesis suites reassemble pages from this
    framing and from the socket and assert both match the oracle.
    """
    records: list[dict] = [{
        "kind": "header",
        "query_id": query_id,
        "query": query,
        "n_results": len(pairs),
        "cursor": cursor,
        "page_size": page_size,
    }]
    pages = 0
    for at, page, nxt in iter_pages(pairs, cursor, page_size):
        pages += 1
        records.append({
            "kind": "page",
            "cursor": at,
            "count": len(page),
            "pairs": [list(pair) for pair in page],
            "next_cursor": nxt,
        })
    records.append({
        "kind": "trailer",
        "query_id": query_id,
        "n_results": len(pairs),
        "pages": pages,
        "stats": stats_dict,
    })
    return records


def reassemble_pages(records: list[dict]) -> list:
    """Inverse of :func:`frame_records`: pages back to the pair list.

    Validates the framing invariants while reassembling: contiguous
    cursors, per-page counts, a trailing ``next_cursor`` of ``None``,
    and a trailer whose ``n_results`` matches what the pages carried
    (relative to the header's starting cursor).
    """
    header = records[0]
    trailer = records[-1]
    assert header["kind"] == "header", header
    assert trailer["kind"] == "trailer", trailer
    pairs: list = []
    expected_cursor = header["cursor"]
    last_next = None
    for record in records[1:-1]:
        assert record["kind"] == "page", record
        assert record["cursor"] == expected_cursor, (
            record["cursor"], expected_cursor,
        )
        assert record["count"] == len(record["pairs"]), record
        pairs.extend(tuple(pair) for pair in record["pairs"])
        expected_cursor += record["count"]
        last_next = record["next_cursor"]
    assert last_next is None, last_next
    assert trailer["pages"] == len(records) - 2, trailer
    assert trailer["n_results"] == header["n_results"], trailer
    assert len(pairs) == max(
        0, trailer["n_results"] - max(0, header["cursor"])
    ), (len(pairs), trailer["n_results"], header["cursor"])
    return pairs


def _stats_dict(stats) -> dict:
    """The budget/outcome view of one ``QueryStats`` for the trailer."""
    out = {
        "elapsed_seconds": stats.elapsed,
        "timed_out": stats.timed_out,
        "truncated": stats.truncated,
        "cancelled": stats.cancelled,
        "cached": stats.cached,
    }
    if stats.backend:
        out["backend"] = stats.backend
    return out


def _stages_header(lifecycle) -> str:
    """``X-Query-Stages``: the lifecycle decomposition as one header."""
    return ";".join(
        f"{name}={seconds:.6f}"
        for name, seconds in lifecycle.stage_durations().items()
    )


# ----------------------------------------------------------------------
# Connection plumbing
# ----------------------------------------------------------------------


class _ProtocolError(Exception):
    """The peer sent something that is not acceptable HTTP/1.1."""

    def __init__(self, status: int, detail: str):
        super().__init__(detail)
        self.status = status
        self.detail = detail


class _Conn:
    """One client connection: buffered request reads + chunked writes.

    The pushback buffer exists because the disconnect watcher
    (:meth:`watch_eof`) must read one byte to learn the socket died;
    when that byte turns out to be the start of the next keep-alive
    request instead, it is pushed back and the request parser consumes
    it first.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.pushback = b""

    # -- reading -------------------------------------------------------

    async def _read_until(self, sep: bytes,
                          max_bytes: int) -> "bytes | None":
        buf = self.pushback
        self.pushback = b""
        while sep not in buf:
            if len(buf) > max_bytes:
                raise _ProtocolError(431, "header block too large")
            chunk = await self.reader.read(8192)
            if not chunk:
                if buf:
                    raise _ProtocolError(400, "truncated request")
                return None
            buf += chunk
        head, rest = buf.split(sep, 1)
        self.pushback = rest
        return head

    async def _read_exactly(self, n: int) -> bytes:
        take = self.pushback[:n]
        self.pushback = self.pushback[n:]
        missing = n - len(take)
        if missing:
            take += await self.reader.readexactly(missing)
        return take

    async def read_request(self) -> "dict | None":
        """Parse one request; ``None`` on a clean EOF between requests."""
        head = await self._read_until(b"\r\n\r\n", _MAX_HEADER_BYTES)
        if head is None:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _ProtocolError(400, f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("transfer-encoding", "").lower() == "chunked":
            raise _ProtocolError(411, "chunked request bodies unsupported")
        length = headers.get("content-length", "0")
        try:
            n = int(length)
        except ValueError:
            raise _ProtocolError(400, f"bad Content-Length {length!r}")
        if n < 0 or n > _MAX_BODY_BYTES:
            # Drain (bounded) what the client is still sending before
            # rejecting: closing with unread bytes in the receive buffer
            # makes the kernel RST the connection, which can destroy the
            # 413 response sitting in the client's receive queue.
            await self._discard(min(n, _MAX_DRAIN_BYTES))
            raise _ProtocolError(413, "request body too large")
        body = await self._read_exactly(n) if n else b""
        split = urlsplit(target)
        return {
            "method": method.upper(),
            "path": unquote(split.path) or "/",
            "params": parse_qs(split.query),
            "headers": headers,
            "body": body,
        }

    async def _discard(self, n: int) -> None:
        """Best-effort read-and-drop of ``n`` pending body bytes."""
        buffered = min(n, len(self.pushback))
        self.pushback = self.pushback[buffered:]
        remaining = n - buffered
        while remaining > 0:
            chunk = await self.reader.read(min(remaining, 65536))
            if not chunk:
                return
            remaining -= len(chunk)

    async def watch_eof(self) -> bool:
        """Block until the peer disconnects (True) or sends data (False)."""
        if self.pushback:
            return False
        data = await self.reader.read(1)
        if data:
            self.pushback += data
            return False
        return True

    # -- writing -------------------------------------------------------

    def _head(self, status: int, headers: dict[str, str]) -> bytes:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    async def send_response(self, status: int, body: bytes,
                            content_type: str = JSON_CONTENT_TYPE,
                            extra: "dict[str, str] | None" = None,
                            keep_alive: bool = True) -> None:
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        if extra:
            headers.update(extra)
        self.writer.write(self._head(status, headers) + body)
        await self.writer.drain()

    async def start_chunked(self, status: int, content_type: str,
                            extra: "dict[str, str] | None" = None,
                            keep_alive: bool = True) -> None:
        headers = {
            "Content-Type": content_type,
            "Transfer-Encoding": "chunked",
            "Connection": "keep-alive" if keep_alive else "close",
        }
        if extra:
            headers.update(extra)
        self.writer.write(self._head(status, headers))
        await self.writer.drain()

    async def send_chunk(self, data: bytes) -> None:
        """One chunk; ``drain()`` applies per-connection backpressure —
        a slow reader stalls only its own task, never the loop."""
        self.writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self.writer.drain()

    async def end_chunked(self) -> None:
        self.writer.write(b"0\r\n\r\n")
        await self.writer.drain()


# ----------------------------------------------------------------------
# The server
# ----------------------------------------------------------------------


class HTTPQueryServer:
    """Asyncio HTTP/1.1 front door over one :class:`QueryService`.

    Works over either serving tier — the thread pool or the
    shared-memory process pool — because it speaks only the Ticket
    API.  The event loop runs on one daemon thread; every connection
    is one asyncio task, so slow readers and long streams cost a task,
    not a thread.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.service.QueryService` (or
        :class:`~repro.serve.pool.ProcessQueryService`) to front.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read the
        chosen one back from :attr:`port`).
    default_page_size / max_page_size:
        NDJSON page bounds; requests clamp to the max.
    retention:
        How many settled tickets stay addressable for ``/status`` /
        ``/result`` cursor resume after settlement.  Bounded LRU:
        oldest settled tickets fall out first.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        default_page_size: int = DEFAULT_PAGE_SIZE,
        max_page_size: int = MAX_PAGE_SIZE,
        retention: int = 256,
    ):
        if retention < 1:
            raise ValueError("retention must be >= 1")
        self.service = service
        self._host = host
        self._port = port
        self.default_page_size = default_page_size
        self.max_page_size = max_page_size
        self.retention = retention
        self.started_at = time.monotonic()
        self.requests = 0
        self._tickets: "OrderedDict[str, object]" = OrderedDict()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread: "threading.Thread | None" = None
        self._shutdown: "asyncio.Event | None" = None
        self._conn_tasks: set = set()
        self._bound: "tuple[str, int] | None" = None
        self._started = threading.Event()
        self._startup_error: "BaseException | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._bound[0] if self._bound else self._host

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` ephemerals)."""
        return self._bound[1] if self._bound else self._port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HTTPQueryServer":
        """Bind and serve on a daemon thread (idempotent); raises the
        bind error synchronously when the port is unavailable."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-http-front-door",
            daemon=True,
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join()
            self._thread = None
            self._startup_error = None
            raise error
        return self

    def stop(self) -> None:
        """Stop accepting, cancel open connections, join the thread."""
        thread = self._thread
        if thread is None:
            return
        loop = self._loop
        if loop is not None and not loop.is_closed():
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self._shutdown.set)
        thread.join()
        self._thread = None
        self._loop = None
        self._gauge("serve.http.open_connections", 0)

    def __enter__(self) -> "HTTPQueryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def stats(self) -> dict:
        """Front-door statistics snapshot."""
        return {
            "url": self.url if self._bound else None,
            "requests": self.requests,
            "retained_tickets": len(self._tickets),
            "retention": self.retention,
            "uptime_seconds": time.monotonic() - self.started_at,
        }

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._shutdown = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._on_connection, self._host, self._port
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._bound = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )

    # ------------------------------------------------------------------
    # Telemetry helpers (the registry is guarded by the service's lock)
    # ------------------------------------------------------------------

    def _inc(self, name: str, n: int = 1) -> None:
        obs = self.service.metrics
        if obs.enabled:
            with self.service.obs_lock:
                obs.inc(name, n)

    def _gauge(self, name: str, value: float) -> None:
        obs = self.service.metrics
        if obs.enabled:
            with self.service.obs_lock:
                obs.set_gauge(name, value)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._gauge("serve.http.open_connections", len(self._conn_tasks))
        conn = _Conn(reader, writer)
        try:
            while True:
                try:
                    request = await conn.read_request()
                except _ProtocolError as err:
                    with contextlib.suppress(ConnectionError):
                        await conn.send_response(
                            err.status,
                            _json_body({"error": "protocol",
                                        "detail": err.detail}),
                            keep_alive=False,
                        )
                    break
                if request is None:
                    break
                self.requests += 1
                self._inc("serve.http.requests")
                keep_alive = (
                    request["headers"].get("connection", "").lower()
                    != "close"
                )
                proceed = await self._dispatch(conn, request, keep_alive)
                if not (proceed and keep_alive):
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.CancelledError):
            pass
        finally:
            self._conn_tasks.discard(task)
            self._gauge("serve.http.open_connections",
                        len(self._conn_tasks))
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, conn: _Conn, request: dict,
                        keep_alive: bool) -> bool:
        """Route one request; returns False when the connection must
        close (client vanished mid-stream)."""
        method, path = request["method"], request["path"]
        try:
            if path == "/query" and method == "POST":
                return await self._handle_query(conn, request, keep_alive)
            if path == "/submit" and method == "POST":
                await self._handle_submit(conn, request, keep_alive)
                return True
            if path.startswith("/status/") and method == "GET":
                await self._handle_status(conn, path[len("/status/"):],
                                          keep_alive)
                return True
            if path.startswith("/result/") and method == "GET":
                return await self._handle_result(
                    conn, path[len("/result/"):], request, keep_alive
                )
            if path.startswith("/cancel/") and method == "POST":
                await self._handle_cancel(conn, path[len("/cancel/"):],
                                          keep_alive)
                return True
            if path.startswith("/query/") and method == "DELETE":
                await self._handle_cancel(conn, path[len("/query/"):],
                                          keep_alive)
                return True
            if path == "/healthz" and method == "GET":
                await self._handle_healthz(conn, keep_alive)
                return True
            if path == "/debug/flight" and method == "GET":
                await self._handle_flight(conn, keep_alive)
                return True
            if path == "/" and method == "GET":
                await conn.send_response(
                    200, _INDEX_BODY, content_type="text/plain; charset=utf-8",
                    keep_alive=keep_alive,
                )
                return True
            known = {"/query", "/submit", "/healthz", "/debug/flight"}
            status = 405 if path in known else 404
            await self._send_error(
                conn, status,
                {"error": "method_not_allowed" if status == 405
                 else "not_found", "detail": f"{method} {path}"},
                keep_alive,
            )
            return True
        except ConnectionError:
            self._inc("serve.http.client_disconnects")
            return False

    # ------------------------------------------------------------------
    # Request helpers
    # ------------------------------------------------------------------

    async def _send_error(self, conn: _Conn, status: int, body: dict,
                          keep_alive: bool,
                          extra: "dict[str, str] | None" = None) -> None:
        if status == 429:
            self._inc("serve.http.rejected")
        elif status == 400:
            self._inc("serve.http.bad_requests")
        elif status >= 500:
            self._inc("serve.http.errors")
        await conn.send_response(
            status, _json_body(body), extra=extra, keep_alive=keep_alive
        )

    def _parse_submit_body(self, request: dict) -> dict:
        try:
            body = json.loads(request["body"].decode("utf-8") or "null")
        except (UnicodeDecodeError, json.JSONDecodeError) as err:
            raise _BadRequest("invalid_json", str(err))
        if not isinstance(body, dict):
            raise _BadRequest("bad_request", "body must be a JSON object")
        query = body.get("query")
        if not isinstance(query, str) or not query.strip():
            raise _BadRequest(
                "bad_request", "'query' must be a non-empty string"
            )
        out = {"query": query}
        timeout_ms = body.get("timeout_ms")
        if timeout_ms is not None:
            if not isinstance(timeout_ms, (int, float)) \
                    or isinstance(timeout_ms, bool) or timeout_ms < 0:
                raise _BadRequest(
                    "bad_request", "'timeout_ms' must be a number >= 0"
                )
            out["deadline"] = time.monotonic() + timeout_ms / 1000.0
        limit = body.get("limit")
        if limit is not None:
            if not isinstance(limit, int) or isinstance(limit, bool) \
                    or limit < 0:
                raise _BadRequest(
                    "bad_request", "'limit' must be an integer >= 0"
                )
            out["limit"] = limit
        page_size = body.get("page_size")
        if page_size is not None:
            if not isinstance(page_size, int) \
                    or isinstance(page_size, bool) or page_size < 1:
                raise _BadRequest(
                    "bad_request", "'page_size' must be an integer >= 1"
                )
            out["page_size"] = min(page_size, self.max_page_size)
        return out

    def _submit(self, parsed: dict):
        """Map one parsed body onto ``service.submit``; typed errors
        travel as :class:`_HTTPFailure` to the dispatcher."""
        kwargs = {}
        if "deadline" in parsed:
            kwargs["deadline"] = parsed["deadline"]
        if "limit" in parsed:
            kwargs["limit"] = parsed["limit"]
        try:
            ticket = self.service.submit(parsed["query"], **kwargs)
        except OverloadedError as err:
            raise _HTTPFailure(
                429,
                {
                    "error": "overloaded",
                    "reason": err.reason,
                    "pending": err.pending,
                    "capacity": err.capacity,
                    "retry_after": err.retry_after,
                },
                extra={
                    "Retry-After": str(max(1, math.ceil(err.retry_after))),
                    "X-Retry-After-Seconds": f"{err.retry_after:.3f}",
                },
            )
        except ServiceClosedError as err:
            raise _HTTPFailure(
                503, {"error": "service_closed", "detail": str(err)}
            )
        except RegexSyntaxError as err:
            body = {"error": "regex_syntax", "detail": err.raw_message}
            if err.position is not None:
                body["position"] = err.position
            raise _BadRequest.from_body(body)
        except UnknownSymbolError as err:
            raise _BadRequest.from_body({
                "error": "unknown_symbol",
                "detail": str(err),
                "kind": err.kind,
                "symbol": str(err.symbol),
            })
        self._retain(ticket)
        return ticket

    def _retain(self, ticket) -> None:
        """Bounded LRU of addressable tickets (settled evict first)."""
        self._tickets[ticket.query_id] = ticket
        self._tickets.move_to_end(ticket.query_id)
        while len(self._tickets) > self.retention:
            evicted = False
            for query_id, old in self._tickets.items():
                if old.done():
                    del self._tickets[query_id]
                    evicted = True
                    break
            if not evicted:
                # Every retained ticket is still live (retention below
                # max_pending): drop the oldest anyway — bounded memory
                # beats addressability of the oldest in-flight query.
                self._tickets.popitem(last=False)

    async def _wait_settled(self, conn: _Conn, ticket) -> bool:
        """Await settlement while watching for client disconnect.

        Returns True when the ticket settled with the client still
        there; False when the client vanished first (the query is then
        cancelled, and we still wait for settlement so the admission
        slot is provably released before the handler returns).
        """
        loop = asyncio.get_running_loop()
        settled = loop.create_future()

        def _resolve() -> None:
            if not settled.done():
                settled.set_result(True)

        def _hook() -> None:
            # Fired from whichever service thread settles the ticket;
            # the loop may already be shutting down — a lost wakeup is
            # then fine, nobody awaits the future anymore.
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(_resolve)

        ticket._on_settle = _hook
        if ticket.done():
            _resolve()
        watcher = asyncio.ensure_future(conn.watch_eof())
        try:
            await asyncio.wait(
                {settled, watcher},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if settled.done():
                return True
            if watcher.result():  # EOF: the client is gone
                self._inc("serve.http.client_disconnects")
                ticket.cancel()
                await settled
                return False
            # Data arrived instead (an eager keep-alive client): not a
            # disconnect; just wait for settlement.
            await settled
            return True
        finally:
            ticket._on_settle = None
            if not watcher.done():
                watcher.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await watcher
            # The hook may have landed between done-check and reset;
            # nothing to do — _resolve on a done future is a no-op.

    def _ticket_failure(self, error: BaseException) -> "_HTTPFailure":
        """Map a settled ticket's error to a response."""
        if isinstance(error, ServiceClosedError):
            return _HTTPFailure(
                503, {"error": "service_closed", "detail": str(error)}
            )
        if isinstance(error, UnknownSymbolError):
            return _HTTPFailure(400, {
                "error": "unknown_symbol",
                "detail": str(error),
                "kind": error.kind,
                "symbol": str(error.symbol),
            })
        if isinstance(error, ReproError):
            return _HTTPFailure(500, {
                "error": type(error).__name__,
                "detail": str(error),
            })
        return _HTTPFailure(500, {
            "error": "internal",
            "detail": type(error).__name__,
        })

    # ------------------------------------------------------------------
    # Endpoint handlers
    # ------------------------------------------------------------------

    async def _handle_query(self, conn: _Conn, request: dict,
                            keep_alive: bool) -> bool:
        try:
            parsed = self._parse_submit_body(request)
            ticket = self._submit(parsed)
        except _HTTPFailure as fail:
            await self._send_error(conn, fail.status, fail.body,
                                   keep_alive, extra=fail.extra)
            return True
        if not await self._wait_settled(conn, ticket):
            return False  # client vanished; ticket settled + cancelled
        if ticket._error is not None:
            fail = self._ticket_failure(ticket._error)
            await self._send_error(conn, fail.status, fail.body,
                                   keep_alive, extra=fail.extra)
            return True
        result = ticket.result(timeout=0)
        page_size = parsed.get("page_size", self.default_page_size)
        await self._stream_result(conn, ticket, result, cursor=0,
                                  page_size=page_size,
                                  keep_alive=keep_alive)
        return True

    async def _handle_submit(self, conn: _Conn, request: dict,
                             keep_alive: bool) -> None:
        try:
            parsed = self._parse_submit_body(request)
            ticket = self._submit(parsed)
        except _HTTPFailure as fail:
            await self._send_error(conn, fail.status, fail.body,
                                   keep_alive, extra=fail.extra)
            return
        self._inc("serve.http.submitted")
        await conn.send_response(
            202,
            _json_body({
                "query_id": ticket.query_id,
                "query": str(ticket.query),
                "status_url": f"/status/{ticket.query_id}",
                "result_url": f"/result/{ticket.query_id}",
            }),
            extra={"X-Query-Id": ticket.query_id},
            keep_alive=keep_alive,
        )

    async def _handle_status(self, conn: _Conn, query_id: str,
                             keep_alive: bool) -> None:
        ticket = self._tickets.get(query_id)
        if ticket is None:
            await self._send_error(
                conn, 404,
                {"error": "unknown_query_id", "query_id": query_id},
                keep_alive,
            )
            return
        body: dict = {
            "query_id": query_id,
            "query": str(ticket.query),
            "done": ticket.done(),
            "cancel_requested": ticket.cancelled,
        }
        extra = {"X-Query-Id": query_id}
        if ticket.done():
            if ticket._error is not None:
                body["error"] = type(ticket._error).__name__
            else:
                result = ticket.result(timeout=0)
                body["n_results"] = len(result.pairs)
                body["stats"] = _stats_dict(result.stats)
            extra["X-Query-Stages"] = _stages_header(ticket.lifecycle)
        await conn.send_response(200, _json_body(body), extra=extra,
                                 keep_alive=keep_alive)

    async def _handle_result(self, conn: _Conn, query_id: str,
                             request: dict, keep_alive: bool) -> bool:
        ticket = self._tickets.get(query_id)
        if ticket is None:
            await self._send_error(
                conn, 404,
                {"error": "unknown_query_id", "query_id": query_id},
                keep_alive,
            )
            return True
        if not ticket.done():
            await conn.send_response(
                202,
                _json_body({"query_id": query_id, "done": False}),
                extra={"X-Query-Id": query_id},
                keep_alive=keep_alive,
            )
            return True
        if ticket._error is not None:
            fail = self._ticket_failure(ticket._error)
            await self._send_error(conn, fail.status, fail.body,
                                   keep_alive, extra=fail.extra)
            return True
        params = request["params"]
        try:
            cursor = int(params.get("cursor", ["0"])[0])
            page_size = params.get("page_size")
            page_size = (min(int(page_size[0]), self.max_page_size)
                         if page_size else self.default_page_size)
            if cursor < 0 or page_size < 1:
                raise ValueError
        except (ValueError, IndexError):
            await self._send_error(
                conn, 400,
                {"error": "bad_request",
                 "detail": "cursor/page_size must be non-negative ints"},
                keep_alive,
            )
            return True
        result = ticket.result(timeout=0)
        await self._stream_result(conn, ticket, result, cursor=cursor,
                                  page_size=page_size,
                                  keep_alive=keep_alive)
        return True

    async def _stream_result(self, conn: _Conn, ticket, result,
                             cursor: int, page_size: int,
                             keep_alive: bool) -> None:
        """The streaming core: chunked NDJSON, one page per chunk."""
        pairs = sorted(result.pairs)
        extra = {
            "X-Query-Id": ticket.query_id,
            "X-Query-Stages": _stages_header(ticket.lifecycle),
        }
        await conn.start_chunked(200, NDJSON_CONTENT_TYPE, extra=extra,
                                 keep_alive=keep_alive)
        header = {
            "kind": "header",
            "query_id": ticket.query_id,
            "query": str(ticket.query),
            "n_results": len(pairs),
            "cursor": cursor,
            "page_size": page_size,
        }
        await conn.send_chunk(_ndjson_line(header))
        pages = 0
        for at, page, nxt in iter_pages(pairs, cursor, page_size):
            pages += 1
            await conn.send_chunk(_ndjson_line({
                "kind": "page",
                "cursor": at,
                "count": len(page),
                "pairs": [list(pair) for pair in page],
                "next_cursor": nxt,
            }))
        trailer = {
            "kind": "trailer",
            "query_id": ticket.query_id,
            "n_results": len(pairs),
            "pages": pages,
            "stats": _stats_dict(result.stats),
        }
        await conn.send_chunk(_ndjson_line(trailer))
        await conn.end_chunked()
        self._inc("serve.http.streamed", 1)
        self._inc("serve.http.pages", pages)

    async def _handle_cancel(self, conn: _Conn, query_id: str,
                             keep_alive: bool) -> None:
        ticket = self._tickets.get(query_id)
        if ticket is None:
            await self._send_error(
                conn, 404,
                {"error": "unknown_query_id", "query_id": query_id},
                keep_alive,
            )
            return
        was_live = not ticket.done()
        if was_live:
            ticket.cancel()
            self._inc("serve.http.cancelled")
        await conn.send_response(
            200,
            _json_body({"query_id": query_id, "cancelled": was_live,
                        "done": ticket.done()}),
            extra={"X-Query-Id": query_id},
            keep_alive=keep_alive,
        )

    async def _handle_healthz(self, conn: _Conn,
                              keep_alive: bool) -> None:
        body = {"status": "ok", "front_door": self.stats()}
        body.update(self.service.healthz())
        if body.get("closed"):
            body["status"] = "closed"
        status = 200 if body["status"] == "ok" else 503
        await conn.send_response(status, _json_body(body),
                                 keep_alive=keep_alive)

    async def _handle_flight(self, conn: _Conn,
                             keep_alive: bool) -> None:
        flight = getattr(self.service, "flight", None)
        if flight is None:
            await self._send_error(
                conn, 404,
                {"error": "not_found",
                 "detail": "no flight recorder attached"},
                keep_alive,
            )
            return
        await conn.send_response(200, _json_body(flight.snapshot()),
                                 keep_alive=keep_alive)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._thread is not None
        return f"HTTPQueryServer({self.url}, running={running})"


# ----------------------------------------------------------------------
# Small helpers
# ----------------------------------------------------------------------


class _HTTPFailure(Exception):
    """A typed, ready-to-send error response."""

    def __init__(self, status: int, body: dict,
                 extra: "dict[str, str] | None" = None):
        super().__init__(body.get("detail", body.get("error", "")))
        self.status = status
        self.body = body
        self.extra = extra


class _BadRequest(_HTTPFailure):
    """A 400 with a typed JSON body."""

    def __init__(self, kind: str, detail: str):
        super().__init__(400, {"error": kind, "detail": detail})

    @classmethod
    def from_body(cls, body: dict) -> "_BadRequest":
        out = cls(body.get("error", "bad_request"),
                  body.get("detail", ""))
        out.body = body
        return out


def _json_body(payload: dict) -> bytes:
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def _ndjson_line(record: dict) -> bytes:
    return (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")


_INDEX_BODY = ("\n".join((
    "repro query front door:",
    "  POST /query         submit + stream NDJSON pages",
    "  POST /submit        submit, returns 202 + query_id",
    "  GET  /status/{id}   poll one submission",
    "  GET  /result/{id}   stream pages (?cursor=N&page_size=K)",
    "  POST /cancel/{id}   cooperative cancellation",
    "  GET  /healthz       service health + load",
    "  GET  /debug/flight  last-N settled-query audit ring",
)) + "\n").encode("utf-8")
