"""Cache keys for served query results.

A result cache is only sound if two queries sharing a key are
guaranteed the same answer set.  Three ingredients make that hold:

* **Expression normalization** — set semantics (the paper evaluates
  everything ``DISTINCT``) make disjunction commutative and
  idempotent, concatenation associative, and the closures collapsible
  (``(E*)* = E*``, ``(E+)? = E*`` …).  :func:`normalize_expr` rewrites
  an expression to a canonical representative of its equivalence
  class, so ``(a)|b`` and ``b|a|b`` hit the same cache line.  Only
  identities that provably preserve the *answer set* are applied; the
  normalized tree is used as a key, never evaluated.
* **Endpoint normalization** — the engine dispatches on the *shape*
  of a query, not on variable names (``(?x, E, ?y)`` and
  ``(?a, E, ?b)`` run identically), so variables collapse to a single
  sentinel while constants keep their labels.
* **Graph fingerprint** — the key embeds a digest of the ring's
  payload so a cache survives an index swap without serving stale
  answers: a different graph yields a different fingerprint and every
  old key simply never matches again.
"""

from __future__ import annotations

import zlib

from repro.automata.syntax import (
    Concat,
    Epsilon,
    Optional,
    Plus,
    RegexNode,
    Star,
    Union,
)
from repro.core.query import RPQ, Variable

#: Sentinel replacing every variable endpoint in a cache key: the
#: engine never consults variable identity (no join semantics inside a
#: single RPQ), so ``?x`` and ``?y`` are interchangeable.
VAR = "?"


def normalize_expr(expr: RegexNode) -> RegexNode:
    """Canonical representative of ``expr``'s answer-set class.

    Applied bottom-up:

    * ``Concat``: flatten nested concatenations, drop ``ε`` factors,
      unwrap singletons (associativity; ε is the unit).
    * ``Union``: flatten, deduplicate and sort children by their
      textual form (commutative + idempotent under set semantics).
    * Closure collapses: ``(E*)* → E*``, ``(E+)* → E*``, ``(E?)* → E*``,
      ``(E*)+ → E*``, ``(E+)+ → E+``, ``(E?)+ → E*``, ``(E*)? → E*``,
      ``(E+)? → E*``, ``(E?)? → E?``, and any closure of ``ε`` is ``ε``.

    The result is itself a valid expression; equality of normalized
    trees implies equality of answer sets (the converse is of course
    not decided — this is a cheap syntactic normal form, not a
    minimal-automaton check).
    """
    if isinstance(expr, Concat):
        flat: list[RegexNode] = []
        for child in expr.children:
            child = normalize_expr(child)
            if isinstance(child, Epsilon):
                continue
            if isinstance(child, Concat):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            return Epsilon()
        if len(flat) == 1:
            return flat[0]
        return Concat(tuple(flat))

    if isinstance(expr, Union):
        members: dict[str, RegexNode] = {}
        stack = list(expr.children)
        while stack:
            child = normalize_expr(stack.pop())
            if isinstance(child, Union):
                stack.extend(child.children)
                continue
            members.setdefault(str(child), child)
        ordered = [members[k] for k in sorted(members)]
        if len(ordered) == 1:
            return ordered[0]
        return Union(tuple(ordered))

    if isinstance(expr, Star):
        child = normalize_expr(expr.child)
        if isinstance(child, Epsilon):
            return child
        if isinstance(child, (Star, Plus, Optional)):
            return Star(child.child)
        return Star(child)

    if isinstance(expr, Plus):
        child = normalize_expr(expr.child)
        if isinstance(child, Epsilon):
            return child
        if isinstance(child, Star):
            return child
        if isinstance(child, Plus):
            return child
        if isinstance(child, Optional):
            return Star(child.child)
        return Plus(child)

    if isinstance(expr, Optional):
        child = normalize_expr(expr.child)
        if isinstance(child, (Epsilon, Star, Optional)):
            return child
        if isinstance(child, Plus):
            return Star(child.child)
        return Optional(child)

    # Symbol / NegatedClass / Epsilon: already canonical.
    return expr


def _normalize_endpoint(endpoint) -> tuple[str, str]:
    if isinstance(endpoint, Variable):
        return ("v", VAR)
    return ("c", endpoint)


def index_fingerprint(index) -> str:
    """Digest of the index payload, memoised on the index object.

    Hashes the wavelet-matrix level bitvectors of ``L_p`` (one bit per
    completed triple per level — any change to the triple set perturbs
    them) together with the structural counts, via CRC-32.  This is
    not a cryptographic commitment; it distinguishes *different graph
    versions behind one service*, where collisions would need an
    adversarial graph, not an unlucky one.
    """
    cached = getattr(index, "_serve_fingerprint", None)
    if cached is not None:
        return cached
    ring = index.ring
    crc = 0
    for words, _, n_bits in ring.L_p.batch_data()[0]:
        crc = zlib.crc32(words.tobytes(), crc)
        crc = zlib.crc32(n_bits.to_bytes(8, "little"), crc)
    dictionary = index.dictionary
    for n in (len(ring), dictionary.num_nodes, dictionary.num_predicates):
        crc = zlib.crc32(int(n).to_bytes(8, "little"), crc)
    fingerprint = f"{len(ring)}-{crc:08x}"
    index._serve_fingerprint = fingerprint
    return fingerprint


def query_cache_key(query: RPQ, fingerprint: str,
                    backend: str | None = None) -> tuple:
    """The cache key of ``query`` against the index ``fingerprint``.

    A hashable tuple of the fingerprint, both normalized endpoints and
    the textual form of the normalized expression (expression trees
    are frozen dataclasses, but the string keeps the key cheap to
    compare and trivially printable in debug output).

    ``backend`` joins the key when the serving engine routes between
    backends: *complete* answer sets are backend-independent, but a
    *truncated* entry keeps whichever prefix its backend's emission
    order produced, so a hit must never cross backends.  The service
    resolves the routing decision before its cache lookup and passes
    it here; single-backend services leave it ``None`` (keys stay
    identical to the pre-routing format).
    """
    key = (
        fingerprint,
        _normalize_endpoint(query.subject),
        str(normalize_expr(query.expr)),
        _normalize_endpoint(query.object),
    )
    if backend is not None:
        key = (*key, backend)
    return key
