"""The concurrent query service: a thread pool over one shared ring.

The ring is an immutable succinct index and the engine's evaluation is
re-entrant (every per-call mutable belongs to a private context — see
``repro.core.engine._EvalContext``), so one
:class:`~repro.core.engine.RingRPQEngine` serves any number of worker
threads.  :class:`QueryService` supplies the machinery around that
fact:

* **admission control** — a bounded pending queue with fast-reject
  (:class:`~repro.errors.OverloadedError`) and an optional in-flight
  cap (:mod:`repro.serve.admission`);
* **deadlines and cancellation** — per-query timeouts, absolute
  deadlines, and a :meth:`cancel` API; all three ride the engine's
  cooperative ``_Budget`` ticks, so interruption lands at safe points
  and every partial result is well-formed;
* **result caching** — an LRU keyed on (normalized expression, bound
  endpoints, graph fingerprint) with completeness-aware serving rules
  (:mod:`repro.serve.cache`);
* **graceful degradation** — a query whose deadline expires returns
  its partial result tagged ``truncated`` (and ``timed_out``) instead
  of raising, and :meth:`submit_with_retry` backs off and retries
  transient rejections.

Under CPython's GIL the pool does **not** scale single-query CPU-bound
throughput — the workers exist for latency isolation (slow queries
don't head-of-line-block fast ones behind one loop), bounded-queue
load shedding, and cache-amplified aggregate throughput on repeated
workloads; ``docs/serving.md`` discusses the numbers honestly.
"""

from __future__ import annotations

import inspect
import itertools
import queue
import threading
import time

from repro.core.engine import RingRPQEngine
from repro.core.query import RPQ, as_query
from repro.core.result import QueryResult, QueryStats
from repro.errors import OverloadedError, ServiceClosedError
from repro.obs.audit import audit_record
from repro.obs.lifecycle import QueryLifecycle
from repro.obs.metrics import Metrics, NULL_METRICS
from repro.serve.admission import AdmissionController
from repro.serve.cache import ResultCache
from repro.serve.keys import index_fingerprint, query_cache_key

_SHUTDOWN = object()

#: Every gauge under these prefixes is a point-in-time *load* level and
#: is zeroed by :meth:`QueryService.close` in one registry-driven sweep
#: — regardless of which tier (threads, process pool, HTTP front door,
#: router, cache) registered it.  Keeping this list short and
#: prefix-based is the fix for the gauge-lifecycle asymmetry where each
#: new tier had to remember to zero its own gauges ad hoc.
_LOAD_GAUGE_PREFIXES = ("serve.", "router.")


class Ticket:
    """Handle on one submitted query.

    ``result()`` blocks until the query settles (or raises what the
    evaluation raised); ``cancel()`` requests cooperative cancellation
    — queued queries never start, running ones stop at the next budget
    tick with a well-formed partial result tagged ``cancelled``.
    """

    __slots__ = ("query_id", "query", "timeout", "limit", "deadline",
                 "submitted_at", "lifecycle", "cancel_event",
                 "_on_cancel", "_on_settle", "_done", "_result",
                 "_error")

    def __init__(self, query_id: str, query: RPQ,
                 timeout: float | None, limit: int | None,
                 deadline: float | None):
        self.query_id = query_id
        self.query = query
        self.timeout = timeout
        self.limit = limit
        self.deadline = deadline
        self.submitted_at = time.monotonic()
        # The per-request audit record: monotonic stage marks added as
        # the query moves submit → queue → worker → settle; readable
        # after settlement as ``ticket.lifecycle.stage_durations()``.
        self.lifecycle = QueryLifecycle(query_id, t=self.submitted_at)
        self.cancel_event = threading.Event()
        # Forwarding hook for executors whose cancel signal lives
        # outside this process (the process tier points it at the
        # running worker's shared cancel sequence).  Set by the
        # dispatching thread, invoked from whichever thread cancels.
        self._on_cancel = None
        # Settlement hook for executors that wait without a thread (the
        # HTTP front door points it at an asyncio future); invoked
        # exactly once, from whichever thread settles, after the done
        # event is set.  A hook attached post-settlement must be fired
        # by the attacher (check ``done()`` after assigning).
        self._on_settle = None
        self._done = threading.Event()
        self._result: QueryResult | None = None
        self._error: BaseException | None = None

    def cancel(self) -> None:
        """Request cooperative cancellation."""
        self.cancel_event.set()
        hook = self._on_cancel
        if hook is not None:
            hook()

    @property
    def cancelled(self) -> bool:
        """True when cancellation has been requested."""
        return self.cancel_event.is_set()

    def done(self) -> bool:
        """True once the query has settled."""
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block for the result; raises the evaluation's error, or
        :class:`TimeoutError` when the wait itself times out."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.query_id} not settled within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def _settle(self, result: QueryResult | None,
                error: BaseException | None = None) -> None:
        self._result = result
        self._error = error
        self._done.set()
        hook = self._on_settle
        if hook is not None:
            hook()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.done() else (
            "cancelled" if self.cancelled else "pending"
        )
        return f"Ticket({self.query_id}, {state})"


class QueryService:
    """Thread-pool RPQ serving over one shared immutable ring.

    Parameters
    ----------
    index:
        The :class:`~repro.ring.builder.RingIndex` to serve.
    workers:
        Worker-thread count.
    max_pending:
        Admission bound: queued + executing queries beyond this are
        fast-rejected with :class:`OverloadedError`.
    max_inflight:
        Optional cap on concurrently *executing* queries (defaults to
        the worker count by construction).
    cache_size:
        Result-cache capacity; ``0`` disables caching.
    default_timeout / default_limit:
        Applied when :meth:`submit` gets no per-query values.
    metrics:
        A :class:`~repro.obs.metrics.Metrics` registry for service
        counters, gauges and latency histograms.  Workers evaluate
        against private per-thread registries (the registry class is
        not thread-safe) and merge into this one under a lock after
        every query.
    slow_log:
        A :class:`~repro.obs.slowlog.SlowQueryLog`; the service owns
        recording (under its lock — the log is not thread-safe), so
        the engine is built without one.
    query_log:
        A :class:`~repro.obs.querylog.QueryLogWriter`; every settled
        query (including cache hits) appends one JSON line carrying
        its ``query_id``, so log lines join the slow log and span
        trees on the same id.  The writer is thread-safe; the service
        writes outside its own lock.
    flight:
        A :class:`~repro.obs.flight.FlightRecorder`; every settled
        query (cache hits and errors included) appends one bounded
        audit record — lifecycle stage decomposition, outcome flags,
        backend, cache verdict, span digest — served live at
        ``/debug/flight`` and dumped into
        :class:`~repro.errors.WorkerCrashedError` context by the
        process tier.  The recorder has its own lock; the service
        appends outside its own.
    engine:
        Optionally a pre-configured engine over ``index`` (ablations,
        scalar reference, custom prepare-cache size).  Its ``slow_log``
        should be ``None``; the service records instead.
    """

    def __init__(
        self,
        index,
        workers: int = 4,
        max_pending: int = 64,
        max_inflight: int | None = None,
        cache_size: int = 128,
        default_timeout: float | None = None,
        default_limit: int | None = None,
        metrics=None,
        slow_log=None,
        query_log=None,
        flight=None,
        engine=None,
        retry_after: float = 0.05,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.index = index
        self.engine = engine if engine is not None else RingRPQEngine(index)
        self.workers = workers
        self.default_timeout = default_timeout
        self.default_limit = default_limit
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.slow_log = slow_log
        self.query_log = query_log
        self.flight = flight
        self.started_at = time.monotonic()
        # Cumulative engine-execution seconds per worker slot, fed by
        # each query's ``execute`` lifecycle stage; the source for the
        # per-worker busy-seconds counters and utilization gauges.
        self._worker_busy = [0.0] * workers
        self.cache = ResultCache(cache_size)
        self.admission = AdmissionController(
            max_pending=max_pending, max_inflight=max_inflight,
            retry_after=retry_after,
        )
        self._fingerprint = index_fingerprint(index)
        # A routing engine decides its backend per query; the decision
        # must join the cache key *before* lookup, or a hit could
        # serve a result whose truncation order belongs to the other
        # backend.  Single-backend engines keep the legacy key shape.
        self._backend_for = getattr(self.engine, "backend_for", None)
        # Custom engines (baselines, test stubs) may predate the
        # query_id parameter; detect support once instead of taxing
        # every evaluation with a try/except.
        try:
            parameters = inspect.signature(
                self.engine.evaluate).parameters
            self._engine_takes_query_id = "query_id" in parameters
        except (TypeError, ValueError):  # pragma: no cover - C callables
            self._engine_takes_query_id = False
        self._queue: queue.Queue = queue.Queue()
        self._tickets: dict[str, Ticket] = {}
        self._lock = threading.Lock()      # tickets / obs merge / slowlog
        self._ids = itertools.count(1)
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(i,),
                name=f"repro-serve-{i}", daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def submit(
        self,
        query: RPQ | str,
        timeout: float | None = None,
        limit: int | None = None,
        deadline: float | None = None,
    ) -> Ticket:
        """Admit one query; returns a :class:`Ticket` immediately.

        ``timeout`` is a per-evaluation wall-clock budget; ``deadline``
        an *absolute* :func:`time.monotonic` instant covering queueing
        too (whichever is tighter wins).  Raises
        :class:`OverloadedError` when admission control rejects, and
        parse errors synchronously (a malformed query never occupies a
        queue slot).  After :meth:`close` every submission raises the
        typed :class:`~repro.errors.ServiceClosedError` (a
        ``RuntimeError`` subclass) so draining front ends can map late
        arrivals to a clean 503 instead of crashing.
        """
        if self._closed:
            raise ServiceClosedError()
        rpq = as_query(query)
        if timeout is None:
            timeout = self.default_timeout
        if limit is None:
            limit = self.default_limit

        obs = self.metrics
        backend = (self._backend_for(rpq)
                   if self._backend_for is not None else None)
        key = query_cache_key(rpq, self._fingerprint, backend=backend)
        cached = self.cache.lookup(key, limit)
        query_id = f"q{next(self._ids)}"
        if cached is not None:
            # lookup() materialised a fresh QueryResult, so stamping
            # the correlation id never mutates a shared cache entry.
            cached.stats.query_id = query_id
            ticket = Ticket(query_id, rpq, timeout, limit, deadline)
            ticket.lifecycle.mark("settled")
            stages = ticket.lifecycle.stage_durations()
            if obs.enabled:
                with self._lock:
                    obs.inc("serve.submitted")
                    obs.inc("serve.cache_hits")
                    obs.set_gauge("serve.cache_size", len(self.cache))
                    for stage, seconds in stages.items():
                        obs.observe(f"serve.stage.{stage}", seconds,
                                    exemplar=query_id)
            if self.flight is not None:
                self.flight.record(audit_record(
                    ticket, cached.stats,
                    n_results=len(cached.pairs),
                    engine=f"serve/{self.engine.name}",
                    cache_hit=True,
                ))
            if self.query_log is not None:
                self.query_log.log(
                    query_id, str(rpq), cached.stats,
                    n_results=len(cached.pairs),
                    engine=f"serve/{self.engine.name}",
                    stages=stages,
                )
            ticket._settle(cached)
            return ticket

        ticket = Ticket(query_id, rpq, timeout, limit, deadline)
        self.admission.admit()   # raises OverloadedError on rejection
        ticket.lifecycle.mark("admitted")
        with self._lock:
            self._tickets[query_id] = ticket
            if obs.enabled:
                obs.inc("serve.submitted")
                obs.inc("serve.cache_misses")
                self._refresh_gauges(obs)
        self._queue.put((key, ticket))
        return ticket

    def submit_with_retry(
        self,
        query: RPQ | str,
        retries: int = 5,
        backoff: float | None = None,
        backoff_factor: float = 2.0,
        **kwargs,
    ) -> Ticket:
        """Like :meth:`submit`, but retries transient rejections.

        On :class:`OverloadedError` sleeps the error's suggested
        ``retry_after`` (or ``backoff``) growing by ``backoff_factor``
        per attempt; re-raises after ``retries`` failed attempts.
        """
        delay = backoff
        for attempt in range(retries + 1):
            try:
                return self.submit(query, **kwargs)
            except OverloadedError as err:
                if attempt == retries:
                    raise
                pause = delay if delay is not None else err.retry_after
                time.sleep(pause * (backoff_factor ** attempt))
        raise AssertionError("unreachable")

    def cancel(self, query_id: str) -> bool:
        """Request cancellation of a submitted query.

        Returns True when the query was still live (queued or
        running); its ticket then settles with ``stats.cancelled`` —
        queued queries never start, running ones stop at the next
        budget tick.
        """
        with self._lock:
            ticket = self._tickets.get(query_id)
        if ticket is None or ticket.done():
            return False
        ticket.cancel()
        return True

    def evaluate(self, query: RPQ | str, **kwargs) -> QueryResult:
        """Submit (with retry) and block for the result."""
        return self.submit_with_retry(query, **kwargs).result()

    def run(self, queries, **kwargs) -> list[QueryResult]:
        """Drain a sequence of queries through the pool, in order.

        Submits everything (with retry-on-overload) before collecting,
        so up to ``max_pending`` queries overlap; the returned list is
        index-aligned with ``queries``.
        """
        tickets = [self.submit_with_retry(q, **kwargs) for q in queries]
        return [t.result() for t in tickets]

    # ------------------------------------------------------------------
    # Cache / lifecycle
    # ------------------------------------------------------------------

    def invalidate_cache(self) -> int:
        """Drop all cached results (data changed in place); returns
        the number of entries dropped."""
        dropped = self.cache.invalidate()
        obs = self.metrics
        if obs.enabled:
            with self._lock:
                obs.inc("serve.cache_invalidations")
                obs.set_gauge("serve.cache_size", 0)
                obs.set_gauge("serve.cache.bytes", 0)
        return dropped

    def close(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the workers.

        Queries still queued are drained and settled normally before
        the workers exit.  All load gauges (queue depth, in-flight,
        cache size, per-worker utilization, the router's misroute
        rate) are zeroed so a telemetry scrape after shutdown reports
        no phantom load — a counter survives its process, a gauge must
        not survive its service.  (Stage *histograms* and per-worker
        busy-seconds counters are cumulative and deliberately survive,
        like every other counter.)
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()
            # A submit that passed the closed check while the sentinels
            # were being enqueued lands *behind* them and would never
            # be dequeued — settle such stragglers with the typed
            # closed error so no waiter hangs on a dead queue.
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _SHUTDOWN:
                    continue
                _, ticket = item
                self.admission.abandon()
                with self._lock:
                    self._tickets.pop(ticket.query_id, None)
                ticket._settle(None, ServiceClosedError(
                    "service closed before the query was dequeued"
                ))
        obs = self.metrics
        if obs.enabled:
            with self._lock:
                # Registry-driven sweep: *every* load gauge any tier
                # registered (serve.worker.*, serve.pool.*, serve.http.*,
                # serve.cache.*, router.*) is zeroed, so new gauges can
                # never be forgotten here again.  Space gauges
                # (space.bytes{...}) deliberately survive: they describe
                # the index, which outlives the service.
                for name in list(obs.gauges):
                    if name.startswith(_LOAD_GAUGE_PREFIXES):
                        obs.set_gauge(name, 0)
                # The canonical load trio must exist at zero even when
                # the service closed before any query registered them —
                # a post-mortem scrape reads them unconditionally.
                obs.set_gauge("serve.queue_depth", 0)
                obs.set_gauge("serve.inflight", 0)
                obs.set_gauge("serve.cache_size", 0)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Service-level statistics snapshot."""
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        out = {
            "workers": self.workers,
            "fingerprint": self._fingerprint,
            "cache": self.cache.snapshot(),
            "admission": self.admission.snapshot(),
            "workers_detail": [
                {
                    "worker": i,
                    "busy_seconds": busy,
                    "utilization": min(1.0, busy / uptime),
                }
                for i, busy in enumerate(self._worker_busy)
            ],
        }
        if self.flight is not None:
            out["flight"] = {
                "capacity": self.flight.capacity,
                "retained": len(self.flight),
                "total_recorded": self.flight.total_recorded,
            }
        return out

    @property
    def obs_lock(self) -> threading.Lock:
        """The lock guarding :attr:`metrics` (and the slow log).

        The telemetry plane — :class:`~repro.obs.httpd.TelemetryServer`
        scrapes, :class:`~repro.obs.sampler.ResourceSampler` gauge
        writes — must hold this lock around any registry access, since
        :class:`~repro.obs.metrics.Metrics` itself is not thread-safe.
        """
        return self._lock

    def healthz(self) -> dict:
        """Liveness/load snapshot for the ``/healthz`` endpoint."""
        return {
            "closed": self._closed,
            "workers": self.workers,
            "queue_depth": self.admission.pending,
            "inflight": self.admission.inflight,
            "cache_size": len(self.cache),
            "service_uptime_seconds": time.monotonic() - self.started_at,
        }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _refresh_gauges(self, obs) -> None:
        # Callers hold self._lock.
        obs.set_gauge("serve.queue_depth", self.admission.pending)
        obs.set_gauge("serve.inflight", self.admission.inflight)
        obs.set_gauge("serve.cache_size", len(self.cache))
        obs.set_gauge("serve.cache.bytes", self.cache.nbytes)

    def _worker_loop(self, worker_id: int) -> None:
        service_obs = self.metrics
        enabled = service_obs.enabled
        # Per-worker private registry: Metrics is not thread-safe, so
        # each worker accumulates locally and merges under the lock.
        local = Metrics(span_capacity=64) if enabled else NULL_METRICS
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                return
            key, ticket = item
            ticket.lifecycle.mark("dequeued")
            if ticket.cancelled:
                # Cancelled while queued: settle without ever running.
                self.admission.abandon()
                stats = QueryStats(query_id=ticket.query_id)
                stats.cancelled = True
                self._finish(
                    key, ticket, QueryResult(stats=stats),
                    local, worker_id, waited=0.0, ran=False,
                )
                continue
            self.admission.start()
            waited = time.monotonic() - ticket.submitted_at
            try:
                result = self._evaluate_ticket(ticket, local, worker_id)
                error = None
            except BaseException as exc:  # noqa: BLE001 - settle tickets
                result, error = None, exc
            finally:
                self.admission.finish()
            if error is not None:
                ticket.lifecycle.mark("settled")
                with self._lock:
                    self._tickets.pop(ticket.query_id, None)
                    if enabled:
                        service_obs.inc("serve.errors")
                        self._refresh_gauges(service_obs)
                if local.enabled:
                    local.reset()
                if self.flight is not None:
                    # Errors are exactly what a black box must retain.
                    self.flight.record(audit_record(
                        ticket, QueryStats(query_id=ticket.query_id),
                        n_results=0,
                        engine=f"serve/{self.engine.name}",
                        worker_id=worker_id,
                        error=error,
                    ))
                ticket._settle(None, error)
            else:
                self._finish(
                    key, ticket, result, local, worker_id,
                    waited=waited, ran=True,
                )

    def _evaluate_ticket(self, ticket: Ticket, local, worker_id: int):
        ticket.lifecycle.mark("dispatched")
        timeout = ticket.timeout
        if ticket.deadline is not None:
            remaining = ticket.deadline - time.monotonic()
            if remaining <= 0:
                # Expired while queued: degrade gracefully without
                # touching the index.
                stats = QueryStats(query_id=ticket.query_id)
                stats.timed_out = True
                stats.truncated = True
                return QueryResult(stats=stats)
            timeout = (
                remaining if timeout is None else min(timeout, remaining)
            )
        result = self._run_engine(ticket, timeout, local, worker_id)
        if result.stats.timed_out:
            # Degradation contract: deadline/timeout expiry returns the
            # partial answer tagged truncated, never an error.
            result.stats.truncated = True
        return result

    def _run_engine(self, ticket: Ticket, timeout: float | None,
                    local, worker_id: int):
        """Run one admitted, deadline-clamped query to a result.

        The thread tier calls the shared engine in-process; the
        process tier (:class:`~repro.serve.pool.ProcessQueryService`)
        overrides this with an RPC to its worker process.
        """
        span = None
        spans = local.spans if local.enabled else None
        if spans is not None:
            span = spans.start(f"worker:{worker_id}")
            span.set(query=str(ticket.query), query_id=ticket.query_id)
        kwargs = {}
        if self._engine_takes_query_id:
            kwargs["query_id"] = ticket.query_id
        ticket.lifecycle.mark("worker_started")
        try:
            result = self.engine.evaluate(
                ticket.query,
                timeout=timeout,
                limit=ticket.limit,
                metrics=local,
                cancel=ticket.cancel_event,
                **kwargs,
            )
        finally:
            # The span must close even on an evaluation error — a
            # worker's local registry outlives the query, and a leaked
            # open span would swallow the next query's spans under it.
            if span is not None:
                spans.end(span)
        ticket.lifecycle.mark("worker_finished")
        if span is not None:
            span.set(n_results=len(result.pairs))
        return result

    def _finish(self, key, ticket, result, local, worker_id: int,
                waited: float, ran: bool) -> None:
        stats = result.stats
        if ran:
            self.cache.store(key, ticket.limit, result)
        lifecycle = ticket.lifecycle
        lifecycle.mark("settled")
        stages = lifecycle.stage_durations()
        busy = stages.get("execute", 0.0)
        audit = None
        if self.flight is not None:
            # Built before the merge below absorbs (and the reset
            # clears) the worker's span stack — the digest needs this
            # query's spans, which only exist in ``local`` right now.
            audit = audit_record(
                ticket, stats,
                n_results=len(result.pairs),
                engine=f"serve/{self.engine.name}",
                worker_id=worker_id if ran else None,
                spans=local.spans if local.enabled else None,
            )
        obs = self.metrics
        query_id = ticket.query_id
        with self._lock:
            self._tickets.pop(query_id, None)
            if ran:
                self._worker_busy[worker_id] += busy
            if obs.enabled:
                obs.inc("serve.completed")
                if stats.cancelled:
                    obs.inc("serve.cancelled")
                if stats.timed_out:
                    obs.inc("serve.timed_out")
                obs.observe("serve.wait_seconds", waited)
                obs.observe("serve.query_seconds", stats.elapsed,
                            exemplar=query_id)
                # The latency decomposition: one observation per
                # lifecycle stage, each exemplar-linked to this query,
                # plus the end-to-end total the stages sum to.
                for stage, seconds in stages.items():
                    obs.observe(f"serve.stage.{stage}", seconds,
                                exemplar=query_id)
                obs.observe("serve.e2e_seconds", lifecycle.total(),
                            exemplar=query_id)
                if ran:
                    obs.inc(f"serve.worker.{worker_id}.queries")
                    # Busy seconds are cumulative work, i.e. a counter
                    # (float-valued, like node_cpu_seconds_total).
                    obs.inc(f"serve.worker.{worker_id}.busy_seconds",
                            busy)
                    uptime = max(
                        time.monotonic() - self.started_at, 1e-9
                    )
                    obs.set_gauge(
                        f"serve.worker.{worker_id}.utilization",
                        min(1.0, self._worker_busy[worker_id] / uptime),
                    )
                obs.merge(local)
                self._refresh_gauges(obs)
            if local.enabled:
                local.reset()
            slow_log = self.slow_log
            if slow_log is not None and slow_log.would_keep(stats.elapsed):
                slow_log.record(
                    str(ticket.query), stats.elapsed,
                    n_results=len(result.pairs),
                    timed_out=stats.timed_out,
                    truncated=stats.truncated,
                    counters=stats.operation_counts(),
                    engine=f"serve/{self.engine.name}",
                    query_id=query_id,
                )
        if audit is not None:
            # The recorder has its own lock; append off the service
            # lock, but before settlement so a caller that just got
            # its result always finds the record already in the ring.
            self.flight.record(audit)
        if self.query_log is not None:
            # The writer has its own lock; keep the JSON encoding and
            # file write off the service lock's critical section.
            self.query_log.log(
                query_id, str(ticket.query), stats,
                n_results=len(result.pairs),
                wait_seconds=waited if ran else None,
                engine=f"serve/{self.engine.name}",
                stages=stages,
            )
        ticket._settle(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueryService(workers={self.workers}, "
                f"pending={self.admission.pending}, "
                f"cache={len(self.cache)}/{self.cache.capacity})")
