"""LRU result cache for the serving layer.

Caching partial results is where RPQ caches silently go wrong, so the
storage policy is explicit about completeness:

* Only *settled* results enter the cache — completed evaluations and
  limit-truncated ones.  Timed-out and cancelled partials are never
  stored: how far they got depends on wall-clock scheduling, so the
  same query could cache different answers on different days.
* A **complete** result (not truncated) is stored once, unkeyed by
  limit, and served for any request whose cap could not have bitten:
  ``limit is None`` or ``limit > len(pairs)``.  The strict inequality
  matters — at ``limit == len(pairs)`` the engine would have stopped
  *at* the cap and tagged the result truncated, so serving the
  complete entry would return the right pairs with the wrong flag.
* A **truncated** result is stored under its exact limit and served
  only for requests with that same limit (which limit's worth of
  prefix the engine materialises is deterministic for a fixed engine
  configuration, so the entry is a faithful replay).  In particular a
  truncated entry can never answer an uncapped query.

Entries hold immutable ``frozenset`` pair sets; every hit materialises
a fresh :class:`~repro.core.result.QueryResult` whose stats are zeroed
except ``cached``/``truncated`` — a cache hit did no index work, and
the zero ``backward_steps`` is how tests (and dashboards) verify the
evaluation was actually skipped.

The cache is thread-safe (one lock around the OrderedDict; entries
are immutable after insertion) and shared by all service workers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.result import QueryResult, QueryStats


class CacheEntry:
    """One stored answer set.

    ``nbytes`` is a deep heap estimate of the pair set, computed once at
    construction (entries are immutable) so cache-wide byte accounting
    stays O(1) per store/evict instead of re-walking entries.
    """

    __slots__ = ("pairs", "truncated", "limit", "nbytes")

    def __init__(self, pairs: frozenset, truncated: bool,
                 limit: int | None):
        self.pairs = pairs
        self.truncated = truncated
        self.limit = limit
        from repro.obs.space import deep_getsizeof

        self.nbytes = deep_getsizeof(pairs)

    def measure(self, name: str = "entry"):
        """Space-audit leaf for this entry."""
        from repro.obs.space import SpaceNode

        return SpaceNode(name, self.nbytes, kind="cache_entry",
                         detail={"pairs": len(self.pairs),
                                 "truncated": self.truncated})


class ResultCache:
    """Bounded LRU of settled query results.

    Parameters
    ----------
    capacity:
        Maximum number of retained entries; ``0`` disables the cache
        (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int = 128):
        self.capacity = max(0, int(capacity))
        self._entries: OrderedDict[tuple, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_stores = 0
        # Running sum of entry nbytes; maintained under _lock by
        # store/evict/invalidate so reads are O(1).
        self._nbytes = 0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def lookup(self, key: tuple, limit: int | None) -> QueryResult | None:
        """A fresh :class:`QueryResult` for ``key`` under ``limit``,
        or ``None`` on miss.  Counts the hit/miss either way."""
        if self.capacity == 0:
            self.misses += 1
            return None
        with self._lock:
            entry = None
            if limit is not None:
                entry = self._entries.get((key, limit))
            if entry is None:
                complete = self._entries.get((key, None))
                if complete is not None and (
                    limit is None or limit > len(complete.pairs)
                ):
                    entry = complete
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end((key, entry.limit))
            self.hits += 1
        stats = QueryStats()
        stats.cached = True
        stats.truncated = entry.truncated
        return QueryResult(pairs=set(entry.pairs), stats=stats)

    def store(self, key: tuple, limit: int | None,
              result: QueryResult) -> bool:
        """Offer a finished evaluation; returns True when stored.

        Refuses timed-out, cancelled and already-cached results (the
        last to keep a hit from re-inserting itself and churning the
        LRU order beyond the ``move_to_end`` the lookup already did).
        """
        stats = result.stats
        if (self.capacity == 0 or stats.timed_out or stats.cancelled
                or stats.cached):
            self.rejected_stores += 1
            return False
        entry_limit = limit if stats.truncated else None
        entry = CacheEntry(
            frozenset(result.pairs), stats.truncated, entry_limit
        )
        with self._lock:
            entries = self._entries
            replaced = entries.get((key, entry_limit))
            if replaced is not None:
                self._nbytes -= replaced.nbytes
            entries[(key, entry_limit)] = entry
            self._nbytes += entry.nbytes
            entries.move_to_end((key, entry_limit))
            while len(entries) > self.capacity:
                _, evicted = entries.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self.evictions += 1
        return True

    def invalidate(self) -> int:
        """Drop every entry; returns how many were dropped.

        The service calls this from its ``invalidate_cache`` hook when
        the underlying data changed in place.  (Swapping in a new
        index invalidates implicitly through the fingerprint baked
        into every key.)
        """
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            self._nbytes = 0
            return n

    # ------------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        """Hits over lookups so far (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Deep heap bytes of all retained entries (O(1))."""
        with self._lock:
            return self._nbytes

    def measure(self, name: str = "cache"):
        """Space-audit node: retained entry bytes + live statistics."""
        from repro.obs.space import SpaceNode

        with self._lock:
            nbytes = self._nbytes
            size = len(self._entries)
        return SpaceNode(
            name,
            children=[SpaceNode("entries", nbytes, kind="cache_entries",
                                detail={"count": size})],
            kind="result_cache",
            detail={"capacity": self.capacity},
        )

    def snapshot(self) -> dict:
        """Plain-dict statistics view."""
        with self._lock:
            size = len(self._entries)
            nbytes = self._nbytes
        return {
            "capacity": self.capacity,
            "size": size,
            "bytes": nbytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "evictions": self.evictions,
            "rejected_stores": self.rejected_stores,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ResultCache({len(self)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")
