"""Exception hierarchy for the Ring-RPQ reproduction.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause, while
still being able to distinguish the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class RegexSyntaxError(ReproError):
    """The regular-expression string could not be parsed.

    Attributes
    ----------
    position:
        Zero-based character offset of the offending token, or ``None``
        when the error is not tied to a single position (e.g. an
        unexpected end of input).
    """

    def __init__(self, message: str, position: int | None = None):
        self.raw_message = message
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position

    def __reduce__(self):
        # Default pickling replays __init__ with the *composed* message
        # (args), which would re-append the position suffix and lose
        # ``position``; replay with the original constructor arguments.
        return (type(self), (self.raw_message, self.position))


class UnknownSymbolError(ReproError):
    """A query referenced a node or predicate absent from the dictionary."""

    def __init__(self, kind: str, symbol: object):
        super().__init__(f"unknown {kind}: {symbol!r}")
        self.kind = kind
        self.symbol = symbol

    def __reduce__(self):
        # args hold the composed message, not (kind, symbol): replay
        # the real constructor so the error pickles across processes.
        return (type(self), (self.kind, self.symbol))


class QueryTimeoutError(ReproError):
    """Query evaluation exceeded its wall-clock budget."""

    def __init__(self, elapsed: float, budget: float):
        super().__init__(
            f"query timed out after {elapsed:.3f}s (budget {budget:.3f}s)"
        )
        self.elapsed = elapsed
        self.budget = budget

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (type(self), (self.elapsed, self.budget))


class QueryCancelledError(ReproError):
    """Query evaluation was cancelled cooperatively between ticks.

    Raised from :meth:`repro.core.engine._Budget.tick` when the
    evaluation's cancel token is set (the serving layer's
    ``cancel(query_id)`` API trips it); the engine catches it and
    returns the partial result with ``stats.cancelled`` set, exactly
    like a timeout returns its partial result.
    """

    def __init__(self, elapsed: float):
        super().__init__(f"query cancelled after {elapsed:.3f}s")
        self.elapsed = elapsed

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (type(self), (self.elapsed,))


class OverloadedError(ReproError):
    """The query service rejected a submission at admission control.

    Fast-reject signal of the bounded-queue serving layer
    (:class:`repro.serve.QueryService`): the pending queue or the
    in-flight budget is full.  Callers should back off and retry
    (``retry_after`` is a suggested initial delay in seconds) or shed
    the request.
    """

    def __init__(self, reason: str, pending: int, capacity: int,
                 retry_after: float = 0.05):
        super().__init__(
            f"service overloaded: {reason} ({pending}/{capacity})"
        )
        self.reason = reason
        self.pending = pending
        self.capacity = capacity
        self.retry_after = retry_after

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (
            type(self),
            (self.reason, self.pending, self.capacity, self.retry_after),
        )


class ServiceClosedError(ReproError, RuntimeError):
    """A submission arrived after :meth:`QueryService.close`.

    Shutdown ordering makes this a *normal* condition, not a bug: a
    network front door drains its connections while the service behind
    it stops, so late submissions must settle as a typed, catchable
    rejection (the HTTP tier maps it to ``503 Service Unavailable``)
    instead of an anonymous ``RuntimeError`` detonating inside an event
    loop.  Subclasses :class:`RuntimeError` for compatibility with
    callers that predate the typed form.
    """

    def __init__(self, detail: str = "service is closed"):
        super().__init__(detail)
        self.detail = detail

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (type(self), (self.detail,))


class WorkerCrashedError(ReproError):
    """A serving worker process died while running (or queued for) a query.

    Raised into the affected :class:`~repro.serve.service.Ticket` by
    :class:`~repro.serve.ProcessQueryService` when a worker exits
    without delivering a result (segfault, OOM kill, ``kill -9``).  The
    pool respawns the worker; the query itself is *not* retried —
    callers that want retry semantics resubmit, exactly like after an
    :class:`OverloadedError`.

    When the service runs a flight recorder
    (:class:`~repro.obs.flight.FlightRecorder`), ``flight`` carries the
    recorder's tail at crash time — the audit records of the queries
    that *preceded* the death, which is the post-mortem context an
    aggregate counter cannot give.
    """

    def __init__(self, worker: str, exitcode: int | None = None,
                 flight: "list[dict] | None" = None):
        detail = f" (exit code {exitcode})" if exitcode is not None else ""
        super().__init__(f"worker {worker} crashed{detail}")
        self.worker = worker
        self.exitcode = exitcode
        self.flight = flight or []

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (type(self), (self.worker, self.exitcode, self.flight))


class ResultLimitExceeded(ReproError):
    """Query produced more results than the configured cap.

    The paper caps result sets at one million mappings for comparability
    with Virtuoso's hard-coded :math:`2^{20}` limit; engines in this
    library raise (or truncate, depending on configuration) through this
    error type.
    """

    def __init__(self, limit: int):
        super().__init__(f"result limit of {limit} rows exceeded")
        self.limit = limit

    def __reduce__(self):
        # Replay the typed constructor args (not the composed message)
        # so the error crosses the process boundary intact.
        return (type(self), (self.limit,))


class ConstructionError(ReproError):
    """An index or automaton could not be built from the given input."""


class InvariantViolation(ReproError):
    """An internal data-structure invariant failed.

    These indicate a bug in the library (or memory corruption), never a
    user mistake; they are raised by the optional self-check routines.
    """
