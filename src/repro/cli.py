"""Command-line interface: ``ring-rpq`` (or ``python -m repro``).

Subcommands::

    ring-rpq query GRAPH.nt "(?x, p1/p2*, ?y)"    evaluate one RPQ
    ring-rpq profile GRAPH.nt "(?x, p1+, ?y)"     per-phase cost profile
    ring-rpq explain GRAPH.nt "(?x, p1+, ?y)"     plan + cost estimates
                                                   (--analyze: est vs actual)
    ring-rpq match GRAPH.nt ? p ?                  triple-pattern lookup
    ring-rpq stats GRAPH.nt                        index statistics
    ring-rpq serve GRAPH.nt                        interactive query loop
                                                   over the thread pool
    ring-rpq query-batch GRAPH.nt QUERIES.txt      drain a query file
                                                   through the pool
    ring-rpq bench table1|table2|fig8 [...]        regenerate artifacts
    ring-rpq generate OUT.nt --nodes N --edges M   synthetic dataset

Graphs are whitespace-separated triple files (one ``s p o`` per line;
see :mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import fig8, table1, table2
from repro.baselines.registry import (
    BASELINE_CLASSES,
    MATRIX_ENGINES,
    make_engine,
)
from repro.graph.generators import wikidata_like
from repro.graph.io import load_graph, save_graph
from repro.ring.builder import RingIndex


def _load_index(path: str, symmetric: list[str]) -> RingIndex:
    graph = load_graph(path, symmetric_predicates=symmetric)
    return RingIndex.from_graph(graph)


def cmd_query(args: argparse.Namespace) -> int:
    index = _load_index(args.graph, args.symmetric)
    engine = (
        index.engine
        if args.engine == "ring"
        else make_engine(args.engine, index)
    )
    started = time.monotonic()
    result = engine.evaluate(
        args.query, timeout=args.timeout, limit=args.limit
    )
    elapsed = time.monotonic() - started
    for s, o in result:
        print(f"{s}\t{o}")
    flags = []
    if result.stats.timed_out:
        flags.append("TIMEOUT")
    if result.stats.truncated:
        flags.append("TRUNCATED")
    suffix = f" [{', '.join(flags)}]" if flags else ""
    print(
        f"# {len(result)} result(s) in {elapsed:.3f}s via "
        f"{args.engine}{suffix}",
        file=sys.stderr,
    )
    return 0


def _backend_engine(args: argparse.Namespace, index):
    """The engine override for --backend (None means the ring)."""
    backend = getattr(args, "backend", "ring")
    return None if backend == "ring" else make_engine(backend, index)


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_query

    index = _load_index(args.graph, args.symmetric)
    report = profile_query(
        index,
        args.query,
        timeout=args.timeout,
        limit=args.limit,
        trace_capacity=args.trace_capacity,
        engine=_backend_engine(args, index),
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.format_table())
    if args.trace is not None:
        with open(args.trace, "w", encoding="utf-8") as fh:
            fh.write(report.to_json())
        print(f"# trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import explain_analyze, format_plan, plan_dict

    index = _load_index(args.graph, args.symmetric)
    engine = _backend_engine(args, index)
    analyze = args.analyze or args.trace is not None
    if not analyze:
        if args.json:
            import json

            print(json.dumps(
                plan_dict(index, args.query, engine=engine), indent=2
            ))
        else:
            print(format_plan(index, args.query, engine=engine))
        return 0
    report = explain_analyze(
        index,
        args.query,
        timeout=args.timeout,
        limit=args.limit,
        span_capacity=args.span_capacity,
        engine=engine,
    )
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    if args.trace is not None:
        report.write_chrome_trace(args.trace)
        print(f"# chrome trace written to {args.trace}", file=sys.stderr)
    return 0


def cmd_match(args: argparse.Namespace) -> int:
    index = _load_index(args.graph, args.symmetric)

    def component(token: str) -> str | None:
        return None if token in ("?", "_", "*") else token

    triples = index.match_pattern(
        component(args.s), component(args.p), component(args.o)
    )
    count = 0
    for s, p, o in triples:
        print(f"{s}\t{p}\t{o}")
        count += 1
        if args.limit is not None and count >= args.limit:
            break
    print(f"# {count} triple(s)", file=sys.stderr)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.bench.space import (
        packed_bytes_per_edge,
        ring_bytes_per_edge,
        working_space_bytes_per_edge,
    )

    index = _load_index(args.graph, args.symmetric)
    d = index.dictionary
    completed = len(index.ring)
    print(f"nodes            : {d.num_nodes}")
    print(f"predicates (P+)  : {d.num_predicates}")
    print(f"completed triples: {completed}")
    print(f"ring size        : {index.ring.size_in_bits() / 8 / 1024:.1f} KiB")
    print(f"bytes/edge       : {ring_bytes_per_edge(index):.2f}")
    print(f"packed baseline  : {packed_bytes_per_edge(index):.2f}")
    print(f"working space    : +{working_space_bytes_per_edge(index):.2f}")
    return 0


def cmd_space(args: argparse.Namespace) -> int:
    """The ``repro space`` report: bit-level space audit of every tier.

    Audits the built ring (per-column, per-level breakdown), the sparse
    backend when scipy is available, and the snapshot-segment layout,
    then cross-checks the serving form: a ring *attached* over the
    snapshot payload must audit within a few percent of the segment's
    byte size (the delta is the segment's int64-widened rank
    directories vs the built ring's uint32 ones, plus alignment
    padding).
    """
    import json

    from repro.obs.space import audit_index, audit_manifest
    from repro.ring.snapshot import _write_payload, attach_index, \
        snapshot_index

    index = _load_index(args.graph, args.symmetric)
    try:
        from repro.matrix.matrices import PredicateMatrices

        PredicateMatrices.from_index(index)
    except ImportError:
        pass
    n = len(index.ring)
    root = audit_index(index)
    # Ring-only snapshot: the segment the attached ring is checked
    # against must hold exactly the ring's buffers (the matrix tier is
    # audited from the index tree above).
    manifest, buffers = snapshot_index(index, include_matrices=False)
    snap = audit_manifest(manifest)
    # Attach a view-backed ring over the snapshot payload: its audit is
    # the serving tier's in-memory form, directly comparable to the
    # segment size.
    payload = bytearray(manifest["total_bytes"])
    _write_payload(manifest, buffers, payload)
    attached = attach_index(manifest, payload)
    attached_ring = attached.ring.measure("ring")
    ring_node = root.find("index.ring")
    segment_bytes = int(manifest["total_bytes"])
    agreement = attached_ring.nbytes / segment_bytes if segment_bytes else 1.0
    totals = {
        "n_triples": n,
        "ring_bytes": ring_node.nbytes,
        "ring_bits_per_triple": ring_node.bits_per_triple(n),
        "snapshot_bytes": segment_bytes,
        "snapshot_bits_per_triple": snap.bits_per_triple(n),
        "attached_ring_bytes": attached_ring.nbytes,
        "attached_ring_segment_agreement": agreement,
    }
    matrix_node = root.find("index.matrix")
    if matrix_node is not None:
        totals["matrix_bytes"] = matrix_node.nbytes
        totals["matrix_bits_per_triple"] = matrix_node.bits_per_triple(n)
    if args.json:
        print(json.dumps({
            "totals": totals,
            "index": root.to_dict(n),
            "snapshot": snap.to_dict(n),
            "attached_ring": attached_ring.to_dict(n),
        }, indent=2))
        return 0
    print(root.format_tree(n))
    print()
    print(snap.format_tree(n))
    print()
    print(f"ring (built)      : {ring_node.nbytes:,} bytes "
          f"({ring_node.bits_per_triple(n):.2f} bits/triple)")
    if matrix_node is not None:
        print(f"matrix (CSR)      : {matrix_node.nbytes:,} bytes "
              f"({matrix_node.bits_per_triple(n):.2f} bits/triple)")
    print(f"snapshot segment  : {segment_bytes:,} bytes "
          f"({snap.bits_per_triple(n):.2f} bits/triple)")
    print(f"ring (attached)   : {attached_ring.nbytes:,} bytes — "
          f"{agreement:.1%} of the segment (remainder: 64-byte "
          "alignment padding)")
    return 0


def _build_service(args: argparse.Namespace, metrics=None, slow_log=None,
                   query_log=None):
    from repro.obs.flight import FlightRecorder
    from repro.serve import ProcessQueryService, QueryService

    index = _load_index(args.graph, args.symmetric)
    backend = getattr(args, "backend", "ring")
    pool = getattr(args, "pool", "threads")
    flight_capacity = getattr(args, "flight", 256)
    common = dict(
        workers=args.workers,
        max_pending=args.max_pending,
        cache_size=args.cache_size,
        default_timeout=args.timeout,
        default_limit=args.limit,
        metrics=metrics,
        slow_log=slow_log,
        query_log=query_log,
        flight=(FlightRecorder(flight_capacity)
                if flight_capacity > 0 else None),
    )
    if pool == "processes":
        if backend != "ring":
            raise SystemExit(
                "--pool processes serves the ring engine only; "
                f"--backend {backend} needs --pool threads"
            )
        return ProcessQueryService(
            index,
            start_method=getattr(args, "start_method", None),
            **common,
        )
    engine = None
    if backend != "ring":
        # The service's slow log stays authoritative; the engine is
        # built without one (same division as the default ring path).
        engine = make_engine(backend, index)
    return QueryService(index, engine=engine, **common)


class _TelemetryPlane:
    """The live telemetry stack around one service: sampler, profiler,
    HTTP endpoint and JSON query log, started/stopped together.

    Built by ``repro serve``/``query-batch`` from ``--metrics-port``,
    ``--query-log``, ``--sample-interval`` and ``--profile-out``; every
    component is optional and ``None`` when its flag is absent.
    """

    def __init__(self, args: argparse.Namespace, metrics, service,
                 slow_log=None):
        from repro.obs.querylog import QueryLogWriter

        self.query_log = (
            QueryLogWriter(args.query_log)
            if getattr(args, "query_log", None) else None
        )
        self.profile_out = getattr(args, "profile_out", None)
        self.sampler = None
        self.profiler = None
        self.httpd = None
        want_profiler = (
            getattr(args, "metrics_port", None) is not None
            or self.profile_out
        )
        if want_profiler:
            from repro.obs.sampler import ResourceSampler
            from repro.obs.sampling_profiler import SamplingProfiler

            self.profiler = SamplingProfiler()
            self.sampler = ResourceSampler(
                metrics=metrics,
                lock=service.obs_lock,
                interval=args.sample_interval,
                profiler=self.profiler,
            )
        if getattr(args, "metrics_port", None) is not None:
            from repro.obs.httpd import TelemetryServer

            self.httpd = TelemetryServer(
                metrics,
                lock=service.obs_lock,
                service=service,
                sampler=self.sampler,
                profiler=self.profiler,
                slow_log=slow_log,
                flight=getattr(service, "flight", None),
                port=args.metrics_port,
            )

    def start(self) -> "_TelemetryPlane":
        if self.sampler is not None:
            self.sampler.start()
        if self.httpd is not None:
            self.httpd.start()
            print(f"# telemetry: {self.httpd.url}/metrics  "
                  f"{self.httpd.url}/healthz  "
                  f"{self.httpd.url}/debug/vars", file=sys.stderr)
        return self

    def stop(self) -> None:
        if self.sampler is not None:
            self.sampler.stop()
        if self.httpd is not None:
            self.httpd.stop()
        if self.profiler is not None and self.profile_out:
            self.profiler.write_collapsed(self.profile_out)
            print(f"# collapsed stacks written to {self.profile_out}",
                  file=sys.stderr)
        if self.query_log is not None:
            self.query_log.close()


def cmd_serve(args: argparse.Namespace) -> int:
    """Interactive loop: one query per stdin line, results to stdout.

    Commands: ``.stats`` prints service statistics, ``.metrics`` the
    Prometheus exposition, ``.slow`` the slow-query log, ``.quit``
    exits (EOF also exits).  With ``--metrics-port`` the same telemetry
    is additionally served live over HTTP (``/metrics``, ``/healthz``,
    ``/debug/vars``, ``/debug/profile``) while the loop runs; with
    ``--http-port`` the query API itself is served over HTTP
    (``POST /query`` streaming chunked NDJSON pages — see
    ``docs/http.md``) alongside the REPL.
    """
    from repro.obs.export import prometheus_text
    from repro.obs.metrics import Metrics
    from repro.obs.slowlog import SlowQueryLog

    metrics = Metrics(span_capacity=args.span_capacity)
    slow_log = SlowQueryLog(capacity=args.slow_log)
    service = _build_service(args, metrics=metrics, slow_log=slow_log)
    plane = _TelemetryPlane(args, metrics, service, slow_log=slow_log)
    # The plane owns the query-log writer; hand it to the service.
    service.query_log = plane.query_log
    plane.start()
    front_door = None
    if getattr(args, "http_port", None) is not None:
        from repro.serve.http import HTTPQueryServer

        kwargs = {}
        if getattr(args, "http_page_size", None):
            kwargs["default_page_size"] = args.http_page_size
        front_door = HTTPQueryServer(
            service, port=args.http_port, **kwargs
        ).start()
        print(f"# query API: {front_door.url}/query (NDJSON streaming), "
              f"{front_door.url}/healthz", file=sys.stderr)
    print(
        f"# serving {args.graph} with {args.workers} worker(s); "
        "one query per line, .quit to exit",
        file=sys.stderr,
    )
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if line in (".quit", ".exit"):
                break
            if line == ".stats":
                import json

                print(json.dumps(service.stats(), indent=2))
                continue
            if line == ".metrics":
                print(prometheus_text(metrics), end="")
                continue
            if line == ".slow":
                print(slow_log.format_table())
                continue
            if line == ".space":
                from repro.obs.space import audit_service

                with service.obs_lock:
                    tree = audit_service(service)
                print(tree.format_tree(len(service.index.ring)))
                continue
            if line == ".vars":
                import json

                if plane.httpd is not None:
                    print(json.dumps(plane.httpd.render_vars(), indent=2))
                else:
                    print(json.dumps(metrics.snapshot(), indent=2))
                continue
            try:
                result = service.evaluate(line)
            except Exception as exc:  # noqa: BLE001 - REPL keeps going
                print(f"# error: {exc}", file=sys.stderr)
                continue
            for s, o in result:
                print(f"{s}\t{o}")
            stats = result.stats
            flags = [
                name for name, on in (
                    ("TIMEOUT", stats.timed_out),
                    ("TRUNCATED", stats.truncated),
                    ("CANCELLED", stats.cancelled),
                    ("CACHED", stats.cached),
                ) if on
            ]
            suffix = f" [{', '.join(flags)}]" if flags else ""
            print(
                f"# {len(result)} result(s) in "
                f"{stats.elapsed:.3f}s{suffix}",
                file=sys.stderr,
            )
    finally:
        # Shutdown ordering: stop accepting HTTP connections first,
        # then drain the service — a front door stopped after close
        # would map late submissions to 503s rather than settling them.
        if front_door is not None:
            front_door.stop()
        service.close()
        plane.stop()
    return 0


def cmd_query_batch(args: argparse.Namespace) -> int:
    import json

    from repro.obs.metrics import Metrics
    from repro.serve import drain_queries, load_query_file

    queries = load_query_file(args.queries)
    metrics = Metrics()
    service = _build_service(args, metrics=metrics)
    plane = _TelemetryPlane(args, metrics, service)
    service.query_log = plane.query_log
    plane.start()
    try:
        summary = drain_queries(
            service, queries, rounds=args.rounds,
            timeout=args.timeout, limit=args.limit,
        )
    finally:
        service.close()
        plane.stop()
    if not args.verbose:
        summary = {k: v for k, v in summary.items() if k != "per_query"}
    print(json.dumps(summary, indent=2))
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    graph = wikidata_like(
        n_nodes=args.nodes,
        n_edges=args.edges,
        n_predicates=args.predicates,
        seed=args.seed,
    )
    save_graph(graph, args.out)
    print(f"wrote {len(graph)} triples to {args.out}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    driver = {"table1": table1, "table2": table2, "fig8": fig8}[args.artifact]
    rest = args.rest
    if rest and rest[0] == "--":
        rest = rest[1:]
    driver.main(rest)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ring-rpq", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("query", help="evaluate one RPQ against a graph")
    q.add_argument("graph", help="triple file (s p o per line)")
    q.add_argument("query", help='e.g. "(?x, p1/p2*, ?y)"')
    q.add_argument("--engine", default="ring",
                   choices=["ring", *sorted(BASELINE_CLASSES),
                            *MATRIX_ENGINES])
    q.add_argument("--timeout", type=float, default=None)
    q.add_argument("--limit", type=int, default=1_000_000)
    q.add_argument("--symmetric", nargs="*", default=[],
                   help="predicates stored bidirectionally")
    q.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "profile",
        help="evaluate one RPQ with full metrics and print the "
             "per-phase operation/timing table",
    )
    p.add_argument("graph", help="triple file (s p o per line)")
    p.add_argument("query", help='e.g. "(?x, p1/p2*, ?y)"')
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--limit", type=int, default=1_000_000)
    p.add_argument("--backend", default="ring",
                   choices=["ring", *MATRIX_ENGINES],
                   help="evaluation backend to profile")
    p.add_argument("--symmetric", nargs="*", default=[],
                   help="predicates stored bidirectionally")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON instead of a table")
    p.add_argument("--trace", metavar="OUT.json", default=None,
                   help="also dump the report (with trace events) to a file")
    p.add_argument("--trace-capacity", type=int, default=10_000,
                   help="ring-buffer size for retained trace events")
    p.set_defaults(func=cmd_profile)

    e = sub.add_parser(
        "explain",
        help="show the query plan (automaton, B table, strategy, cost "
             "estimates); --analyze also runs it and compares estimated "
             "vs. actual work",
    )
    e.add_argument("graph", help="triple file (s p o per line)")
    e.add_argument("query", help='e.g. "(?x, p1/p2*, ?y)"')
    e.add_argument("--analyze", action="store_true",
                   help="run the query and report estimated vs. actual "
                        "counters per phase")
    e.add_argument("--timeout", type=float, default=None)
    e.add_argument("--limit", type=int, default=1_000_000)
    e.add_argument("--backend", default="ring",
                   choices=["ring", *MATRIX_ENGINES],
                   help="evaluation backend to explain (routed shows "
                        "the decision and est-vs-actual seconds)")
    e.add_argument("--symmetric", nargs="*", default=[],
                   help="predicates stored bidirectionally")
    e.add_argument("--json", action="store_true",
                   help="print the plan/report as JSON")
    e.add_argument("--trace", metavar="OUT.json", default=None,
                   help="write the captured spans as a Chrome trace-event "
                        "file (implies --analyze)")
    e.add_argument("--span-capacity", type=int, default=100_000,
                   help="maximum spans retained during --analyze")
    e.set_defaults(func=cmd_explain)

    m = sub.add_parser(
        "match", help="triple-pattern lookup (use ? for wildcards)"
    )
    m.add_argument("graph")
    m.add_argument("s", help="subject or ?")
    m.add_argument("p", help="predicate or ?")
    m.add_argument("o", help="object or ?")
    m.add_argument("--limit", type=int, default=None)
    m.add_argument("--symmetric", nargs="*", default=[])
    m.set_defaults(func=cmd_match)

    s = sub.add_parser("stats", help="index statistics for a graph")
    s.add_argument("graph")
    s.add_argument("--symmetric", nargs="*", default=[])
    s.set_defaults(func=cmd_stats)

    sp = sub.add_parser(
        "space",
        help="bit-level space audit: ring, matrix, snapshot tiers",
    )
    sp.add_argument("graph")
    sp.add_argument("--symmetric", nargs="*", default=[])
    sp.add_argument("--json", action="store_true",
                    help="machine-readable audit (trees + totals)")
    sp.set_defaults(func=cmd_space)

    def _serve_common(sp) -> None:
        sp.add_argument("--workers", type=int, default=4)
        sp.add_argument("--backend", default="ring",
                        choices=["ring", *MATRIX_ENGINES],
                        help="evaluation backend: the ring engine, the "
                             "sparse-matrix engine, or the per-query "
                             "cost-model router")
        sp.add_argument("--pool", default="threads",
                        choices=["threads", "processes"],
                        help="serving tier: worker threads sharing the "
                             "in-process index, or worker processes "
                             "attaching one shared-memory snapshot "
                             "(GIL-free; ring backend only)")
        sp.add_argument("--start-method", default=None,
                        choices=["fork", "spawn", "forkserver"],
                        help="multiprocessing start method for "
                             "--pool processes (default: platform)")
        sp.add_argument("--max-pending", type=int, default=64,
                        help="admission bound on queued+executing queries")
        sp.add_argument("--cache-size", type=int, default=128,
                        help="result-cache capacity (0 disables)")
        sp.add_argument("--timeout", type=float, default=None,
                        help="default per-query wall-clock budget")
        sp.add_argument("--limit", type=int, default=1_000_000)
        sp.add_argument("--symmetric", nargs="*", default=[],
                        help="predicates stored bidirectionally")
        sp.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="expose /metrics, /healthz, /debug/vars, "
                             "/debug/profile and /debug/flight over HTTP "
                             "on this port (0 picks an ephemeral port)")
        sp.add_argument("--flight", type=int, default=256, metavar="N",
                        help="flight-recorder capacity: keep the last N "
                             "settled queries' audit records, served at "
                             "/debug/flight and attached to worker-crash "
                             "errors (0 disables; default 256)")
        sp.add_argument("--query-log", metavar="OUT.jsonl", default=None,
                        help="append one JSON line per settled query "
                             "(query_id-correlated) to this file")
        sp.add_argument("--sample-interval", type=float, default=0.5,
                        help="resource-sampler / profiler tick seconds")
        sp.add_argument("--profile-out", metavar="OUT.collapsed",
                        default=None,
                        help="write sampling-profiler collapsed stacks "
                             "(flamegraph format) on exit; also enables "
                             "the sampler without --metrics-port")

    v = sub.add_parser(
        "serve",
        help="interactive query loop over the thread-pool service "
             "(.stats/.metrics/.slow/.vars/.quit commands); "
             "--metrics-port adds the live HTTP telemetry plane",
    )
    v.add_argument("graph", help="triple file (s p o per line)")
    _serve_common(v)
    v.add_argument("--slow-log", type=int, default=10,
                   help="slow-query log capacity")
    v.add_argument("--span-capacity", type=int, default=2048,
                   help="spans retained in the service registry "
                        "(0 disables span collection)")
    v.add_argument("--http-port", type=int, default=None, metavar="PORT",
                   help="serve the query API over HTTP on this port "
                        "(POST /query streams NDJSON pages; "
                        "/submit, /status, /result, /cancel, /healthz, "
                        "/debug/flight; 0 picks an ephemeral port); "
                        "the REPL keeps running alongside")
    v.add_argument("--http-page-size", type=int, default=None,
                   metavar="N",
                   help="default NDJSON page size for streamed results")
    v.set_defaults(func=cmd_serve)

    qb = sub.add_parser(
        "query-batch",
        help="drain a query file through the thread-pool service and "
             "print a JSON throughput summary",
    )
    qb.add_argument("graph", help="triple file (s p o per line)")
    qb.add_argument("queries", help="query file (one RPQ per line)")
    _serve_common(qb)
    qb.add_argument("--rounds", type=int, default=1,
                    help="replay the workload this many times "
                         "(rounds > 1 exercise the result cache)")
    qb.add_argument("--verbose", action="store_true",
                    help="include the per-query records in the JSON")
    qb.set_defaults(func=cmd_query_batch)

    g = sub.add_parser("generate", help="write a synthetic dataset")
    g.add_argument("out")
    g.add_argument("--nodes", type=int, default=5_000)
    g.add_argument("--edges", type=int, default=30_000)
    g.add_argument("--predicates", type=int, default=60)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(func=cmd_generate)

    b = sub.add_parser("bench", help="regenerate a published artifact")
    b.add_argument("artifact", choices=["table1", "table2", "fig8"])
    b.add_argument("rest", nargs=argparse.REMAINDER,
                   help="arguments forwarded to the driver")
    b.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
