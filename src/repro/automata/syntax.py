"""Abstract syntax of two-way regular path expressions (§3.1).

An expression is built from predicate atoms (possibly inverse,
``^p``), negated property sets ``!(p1|^p2|...)``, concatenation ``/``,
disjunction ``|``, and the closures ``*``, ``+``, ``?``.  Expressions
are immutable; :meth:`RegexNode.reverse` produces the path-reversal
``^E`` used to turn a query ``(s, E, ?y)`` into ``(?y, ^E, s)`` (§4.4),
and every node renders back to parseable text via ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.model import inverse_label


class RegexNode:
    """Base class of all expression nodes."""

    def reverse(self) -> "RegexNode":
        """The expression matching the reversed paths, ``^E``."""
        raise NotImplementedError

    def num_positions(self) -> int:
        """Number of atom occurrences (``m`` in the paper)."""
        raise NotImplementedError

    def atoms(self) -> list["Symbol | NegatedClass"]:
        """All atom occurrences in left-to-right order."""
        raise NotImplementedError

    def is_fixed_length(self) -> bool:
        """True when every matching path has the same length.

        The SPARQL systems the paper compares against translate
        fixed-length property paths into plain join patterns (§5); the
        baselines use this predicate to decide.
        """
        return self.length_range()[1] is not None and (
            self.length_range()[0] == self.length_range()[1]
        )

    def length_range(self) -> tuple[int, int | None]:
        """(min, max) path lengths; ``None`` means unbounded."""
        raise NotImplementedError


@dataclass(frozen=True)
class Epsilon(RegexNode):
    """The empty-path expression ε."""

    def reverse(self) -> RegexNode:
        return self

    def num_positions(self) -> int:
        return 0

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return []

    def length_range(self) -> tuple[int, int | None]:
        return (0, 0)

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Symbol(RegexNode):
    """A single predicate atom; ``^``-prefixed labels are inverses."""

    label: str

    def reverse(self) -> RegexNode:
        return Symbol(inverse_label(self.label))

    def num_positions(self) -> int:
        return 1

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return [self]

    def length_range(self) -> tuple[int, int | None]:
        return (1, 1)

    def __str__(self) -> str:
        return self.label


@dataclass(frozen=True)
class NegatedClass(RegexNode):
    """A negated property set: matches any predicate *not* listed.

    The excluded labels may include inverse spellings; per SPARQL's
    negated property sets, an atom ``!(p1|^p2)`` traverses a forward
    edge whose label is not ``p1``, or a reversed edge whose label is
    not ``p2``.  We model the simpler (and more common) split form: the
    instance stores the excluded labels and a direction flag, and the
    parser builds one ``NegatedClass`` per direction.
    """

    excluded: frozenset[str] = field(default_factory=frozenset)
    inverse: bool = False

    def reverse(self) -> RegexNode:
        return NegatedClass(
            frozenset(self.excluded), inverse=not self.inverse
        )

    def num_positions(self) -> int:
        return 1

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return [self]

    def length_range(self) -> tuple[int, int | None]:
        return (1, 1)

    def __str__(self) -> str:
        body = "|".join(sorted(self.excluded))
        return f"^!({body})" if self.inverse else f"!({body})"


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation ``E1/E2/...``."""

    children: tuple[RegexNode, ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise ValueError("Concat needs at least two children")

    def reverse(self) -> RegexNode:
        return Concat(tuple(c.reverse() for c in reversed(self.children)))

    def num_positions(self) -> int:
        return sum(c.num_positions() for c in self.children)

    def atoms(self) -> list["Symbol | NegatedClass"]:
        out: list[Symbol | NegatedClass] = []
        for c in self.children:
            out.extend(c.atoms())
        return out

    def length_range(self) -> tuple[int, int | None]:
        lo = 0
        hi: int | None = 0
        for c in self.children:
            clo, chi = c.length_range()
            lo += clo
            hi = None if hi is None or chi is None else hi + chi
        return (lo, hi)

    def __str__(self) -> str:
        return "/".join(_wrap(c, for_concat=True) for c in self.children)


@dataclass(frozen=True)
class Union(RegexNode):
    """Disjunction ``E1|E2|...``."""

    children: tuple[RegexNode, ...]

    def __post_init__(self):
        if len(self.children) < 2:
            raise ValueError("Union needs at least two children")

    def reverse(self) -> RegexNode:
        return Union(tuple(c.reverse() for c in self.children))

    def num_positions(self) -> int:
        return sum(c.num_positions() for c in self.children)

    def atoms(self) -> list["Symbol | NegatedClass"]:
        out: list[Symbol | NegatedClass] = []
        for c in self.children:
            out.extend(c.atoms())
        return out

    def length_range(self) -> tuple[int, int | None]:
        lows, highs = [], []
        for c in self.children:
            clo, chi = c.length_range()
            lows.append(clo)
            highs.append(chi)
        hi = None if any(h is None for h in highs) else max(highs)
        return (min(lows), hi)

    def __str__(self) -> str:
        return "|".join(str(c) for c in self.children)


@dataclass(frozen=True)
class Star(RegexNode):
    """Kleene closure ``E*``."""

    child: RegexNode

    def reverse(self) -> RegexNode:
        return Star(self.child.reverse())

    def num_positions(self) -> int:
        return self.child.num_positions()

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return self.child.atoms()

    def length_range(self) -> tuple[int, int | None]:
        return (0, None if self.child.length_range()[1] != 0 else 0)

    def __str__(self) -> str:
        return f"{_wrap(self.child)}*"


@dataclass(frozen=True)
class Plus(RegexNode):
    """Positive closure ``E+`` (one or more)."""

    child: RegexNode

    def reverse(self) -> RegexNode:
        return Plus(self.child.reverse())

    def num_positions(self) -> int:
        return self.child.num_positions()

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return self.child.atoms()

    def length_range(self) -> tuple[int, int | None]:
        lo, hi = self.child.length_range()
        return (lo, None if hi != 0 else 0)

    def __str__(self) -> str:
        return f"{_wrap(self.child)}+"


@dataclass(frozen=True)
class Optional(RegexNode):
    """Optional ``E?`` (zero or one)."""

    child: RegexNode

    def reverse(self) -> RegexNode:
        return Optional(self.child.reverse())

    def num_positions(self) -> int:
        return self.child.num_positions()

    def atoms(self) -> list["Symbol | NegatedClass"]:
        return self.child.atoms()

    def length_range(self) -> tuple[int, int | None]:
        return (0, self.child.length_range()[1])

    def __str__(self) -> str:
        return f"{_wrap(self.child)}?"


def _wrap(node: RegexNode, for_concat: bool = False) -> str:
    """Parenthesise a child when precedence demands it."""
    needs = isinstance(node, Union) or (
        not for_concat and isinstance(node, Concat)
    )
    return f"({node})" if needs else str(node)


def concat(*parts: RegexNode) -> RegexNode:
    """Smart concatenation: flattens, drops ε, unwraps singletons."""
    flat: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Epsilon):
            continue
        if isinstance(part, Concat):
            flat.extend(part.children)
        else:
            flat.append(part)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: RegexNode) -> RegexNode:
    """Smart disjunction: flattens nested unions, unwraps singletons."""
    flat: list[RegexNode] = []
    for part in parts:
        if isinstance(part, Union):
            flat.extend(part.children)
        else:
            flat.append(part)
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))
