"""Glushkov position automaton of a path regular expression (§3.3).

For an expression with ``m`` atom occurrences the Glushkov NFA has
exactly ``m + 1`` states: state 0 is initial and state ``x`` (1-based)
corresponds to the ``x``-th atom occurrence.  Its defining properties —
no ε-transitions, and *all transitions entering a state share the
state's label* (Fact 1) — are what enable the bit-parallel simulation
and the wavelet-tree pruning of the RPQ engine.

State sets are plain Python integers used as bitsets: bit ``x`` is
state ``x``; bit 0 is the initial state.

Construction is the classical nullable/first/last/follow recursion and
costs :math:`O(m^2)` in the worst case, as the paper notes.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping

from repro._util.bits import iter_set_bits
from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.errors import ConstructionError
from repro.graph.model import is_inverse_label


class GlushkovAutomaton:
    """The position automaton of an expression.

    Attributes
    ----------
    m:
        Number of positions (atom occurrences).
    atoms:
        ``atoms[x - 1]`` is the atom of position ``x``.
    nullable:
        Whether ε is in the language.
    follow_masks:
        ``follow_masks[x]`` is the bitset of states reachable from
        state ``x`` in one step (``follow_masks[0]`` is *first*).
    pred_masks:
        ``pred_masks[y]`` is the bitset of states that reach state
        ``y`` in one step; the reverse simulation's building block.
    final_mask:
        Bitset of accepting states (*last*, plus state 0 if nullable).
    """

    #: Bitset with only the initial state (state 0).
    INITIAL_MASK = 1

    def __init__(
        self,
        atoms: list[Symbol | NegatedClass],
        nullable: bool,
        first_mask: int,
        last_mask: int,
        follow: dict[int, int],
    ):
        self.m = len(atoms)
        self.atoms = atoms
        self.nullable = nullable
        self.first_mask = first_mask
        self.last_mask = last_mask
        self.follow_masks = [follow.get(x, 0) for x in range(self.m + 1)]
        self.follow_masks[0] = first_mask
        self.final_mask = last_mask | (self.INITIAL_MASK if nullable else 0)

        pred = [0] * (self.m + 1)
        for x in range(self.m + 1):
            for y in iter_set_bits(self.follow_masks[x]):
                pred[y] |= 1 << x
        self.pred_masks = pred

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        """``m + 1`` — optimal for an ε-free NFA of the expression."""
        return self.m + 1

    def transitions(self) -> Iterable[tuple[int, Symbol | NegatedClass, int]]:
        """All transitions as ``(source_state, atom, target_state)``.

        Every transition into state ``y`` carries the atom of position
        ``y`` — the Glushkov regularity the engine exploits.
        """
        for x in range(self.m + 1):
            for y in iter_set_bits(self.follow_masks[x]):
                yield (x, self.atoms[y - 1], y)

    def is_final(self, mask: int) -> bool:
        """True when the active-state bitset contains a final state."""
        return bool(mask & self.final_mask)

    def contains_initial(self, mask: int) -> bool:
        """True when the active-state bitset contains state 0."""
        return bool(mask & self.INITIAL_MASK)

    def state_mask_str(self, mask: int) -> str:
        """Render a bitset the way the paper prints it: state 0 first.

        The paper writes ``D`` with the initial state as the *highest*
        (leftmost) bit, e.g. ``1000`` for state 0 of a 4-state NFA;
        this helper reproduces that spelling for tests and tracing.
        """
        return "".join(
            "1" if mask >> x & 1 else "0" for x in range(self.num_states)
        )

    # ------------------------------------------------------------------
    # Symbol tables (the ``B`` array of the bit-parallel simulation)
    # ------------------------------------------------------------------

    def b_masks(
        self, resolve: Callable[[Symbol | NegatedClass], Iterable[object]]
    ) -> dict[object, int]:
        """Build ``B``: symbol → bitset of states labeled by it.

        ``resolve`` maps each atom to the set of concrete alphabet
        symbols it matches (predicate ids against a dictionary, or
        label strings for symbolic tests).  Only symbols with non-zero
        masks appear — the lazy-initialisation contract of §5.
        """
        table: dict[object, int] = {}
        for position, atom in enumerate(self.atoms, start=1):
            bit = 1 << position
            for symbol in resolve(atom):
                table[symbol] = table.get(symbol, 0) | bit
        return table

    def b_masks_symbolic(
        self, alphabet: Iterable[str] | None = None
    ) -> dict[str, int]:
        """``B`` over label strings; negated classes need ``alphabet``."""
        alphabet_set = set(alphabet) if alphabet is not None else None

        def resolve(atom: Symbol | NegatedClass) -> Iterable[str]:
            if isinstance(atom, Symbol):
                return (atom.label,)
            if alphabet_set is None:
                raise ConstructionError(
                    "negated class needs an explicit alphabet"
                )
            if atom.inverse:
                return (
                    f"^{a}" for a in alphabet_set
                    if not is_inverse_label(a) and a not in atom.excluded
                )
            return (
                a for a in alphabet_set
                if not is_inverse_label(a) and a not in atom.excluded
            )

        return self.b_masks(resolve)

    # ------------------------------------------------------------------
    # Word membership (reference semantics for tests)
    # ------------------------------------------------------------------

    def accepts(self, word: Iterable[str],
                b_masks: Mapping[object, int] | None = None) -> bool:
        """Forward simulation of Eq. (1) over a word of symbols.

        With no ``b_masks``, labels are matched symbolically (exact
        ``Symbol`` labels only).
        """
        if b_masks is None:
            b_masks = self.b_masks_symbolic()
        d = self.INITIAL_MASK
        for symbol in word:
            step = 0
            for x in iter_set_bits(d):
                step |= self.follow_masks[x]
            d = step & b_masks.get(symbol, 0)
            if d == 0:
                break
        return self.is_final(d)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GlushkovAutomaton(m={self.m}, nullable={self.nullable}, "
            f"final={self.state_mask_str(self.final_mask)})"
        )


def build_glushkov(expr: RegexNode) -> GlushkovAutomaton:
    """Construct the Glushkov automaton of an expression AST."""
    atoms: list[Symbol | NegatedClass] = []
    follow: dict[int, int] = {}

    def walk(node: RegexNode) -> tuple[bool, int, int]:
        """Return (nullable, first_mask, last_mask), filling follow."""
        if isinstance(node, Epsilon):
            return (True, 0, 0)
        if isinstance(node, (Symbol, NegatedClass)):
            atoms.append(node)
            bit = 1 << len(atoms)
            return (False, bit, bit)
        if isinstance(node, Union):
            nullable, first, last = False, 0, 0
            for child in node.children:
                n, f, l = walk(child)
                nullable = nullable or n
                first |= f
                last |= l
            return (nullable, first, last)
        if isinstance(node, Concat):
            nullable, first, last = walk(node.children[0])
            for child in node.children[1:]:
                n2, f2, l2 = walk(child)
                for x in iter_set_bits(last):
                    follow[x] = follow.get(x, 0) | f2
                first = first | f2 if nullable else first
                last = l2 | (last if n2 else 0)
                nullable = nullable and n2
            return (nullable, first, last)
        if isinstance(node, (Star, Plus)):
            n, f, l = walk(node.child)
            for x in iter_set_bits(l):
                follow[x] = follow.get(x, 0) | f
            return (True if isinstance(node, Star) else n, f, l)
        if isinstance(node, Optional):
            n, f, l = walk(node.child)
            return (True, f, l)
        raise ConstructionError(f"unknown regex node {type(node).__name__}")

    nullable, first_mask, last_mask = walk(expr)
    return GlushkovAutomaton(atoms, nullable, first_mask, last_mask, follow)


def resolve_atom_to_predicates(atom: Symbol | NegatedClass,
                               dictionary) -> frozenset[int]:
    """Map an atom to the set of predicate ids it matches.

    Shared by all engines so their semantics agree exactly:

    * a ``Symbol`` resolves through the dictionary, falling back to the
      inverse-predicate involution for ``^p`` spellings of symmetric
      or already-inverted predicates; unknown labels match nothing;
    * a forward ``NegatedClass`` matches every original (non-inverse)
      predicate not excluded; an inverse one matches the inverses of
      those predicates.
    """
    if isinstance(atom, Symbol):
        label = atom.label
        if dictionary.has_predicate(label):
            return frozenset((dictionary.predicate_id(label),))
        if is_inverse_label(label):
            base = label[1:]
            if dictionary.has_predicate(base):
                base_id = dictionary.predicate_id(base)
                return frozenset((dictionary.inverse_predicate(base_id),))
        return frozenset()

    matched: set[int] = set()
    for pid, label in enumerate(dictionary.predicate_labels):
        if is_inverse_label(label):
            continue  # enumerate originals; invert below if needed
        if label in atom.excluded:
            continue
        matched.add(dictionary.inverse_predicate(pid) if atom.inverse else pid)
    return frozenset(matched)
