"""Recursive-descent parser for path regular expressions.

Grammar (SPARQL property-path flavoured), lowest precedence first::

    union   :=  concat ('|' concat)*
    concat  :=  postfix ('/' postfix)*
    postfix :=  primary ('*' | '+' | '?')*
    primary :=  IDENT | '<' iri '>' | '^' primary
             |  '!' '(' neg_list ')' | '(' union ')' | 'ε'
    neg_list := neg_atom ('|' neg_atom)*
    neg_atom := IDENT | '^' IDENT

``^`` distributes over its operand: ``^(a/b)`` parses to ``^b/^a``
(i.e. the parser applies :meth:`RegexNode.reverse`), matching the
definition of two-way expressions in §3.1.  Identifiers may contain
letters, digits and ``_ : . -``; IRIs may be written in angle brackets.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.automata.syntax import (
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    concat,
    union,
)
from repro.errors import RegexSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<iri><[^<>\s]+>)
  | (?P<ident>[A-Za-z0-9_][A-Za-z0-9_:.\-]*)
  | (?P<op>[/|*+?^!()])
  | (?P<eps>ε)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident", "op", "eps", "eof"
    text: str
    pos: int


def _tokenize(source: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    while i < len(source):
        match = _TOKEN_RE.match(source, i)
        if match is None:
            raise RegexSyntaxError(
                f"unexpected character {source[i]!r}", position=i
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "iri":
            tokens.append(_Token("ident", text[1:-1], i))
        elif kind == "ident":
            tokens.append(_Token("ident", text, i))
        elif kind == "op":
            tokens.append(_Token("op", text, i))
        elif kind == "eps":
            tokens.append(_Token("eps", text, i))
        # whitespace is skipped
        i = match.end()
    tokens.append(_Token("eof", "", len(source)))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.source = source
        self.tokens = _tokenize(source)
        self.index = 0

    # ------------------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def expect_op(self, text: str) -> None:
        token = self.current
        if token.kind != "op" or token.text != text:
            raise RegexSyntaxError(
                f"expected {text!r}, found {token.text or 'end of input'!r}",
                position=token.pos,
            )
        self.advance()

    def at_op(self, text: str) -> bool:
        return self.current.kind == "op" and self.current.text == text

    # ------------------------------------------------------------------

    def parse(self) -> RegexNode:
        node = self.parse_union()
        if self.current.kind != "eof":
            raise RegexSyntaxError(
                f"trailing input {self.current.text!r}",
                position=self.current.pos,
            )
        return node

    def parse_union(self) -> RegexNode:
        parts = [self.parse_concat()]
        while self.at_op("|"):
            self.advance()
            parts.append(self.parse_concat())
        return union(*parts)

    def parse_concat(self) -> RegexNode:
        parts = [self.parse_postfix()]
        while self.at_op("/"):
            self.advance()
            parts.append(self.parse_postfix())
        return concat(*parts) if len(parts) > 1 else parts[0]

    def parse_postfix(self) -> RegexNode:
        node = self.parse_primary()
        while self.current.kind == "op" and self.current.text in "*+?":
            op = self.advance().text
            if op == "*":
                node = Star(node)
            elif op == "+":
                node = Plus(node)
            else:
                node = Optional(node)
        return node

    def parse_primary(self) -> RegexNode:
        token = self.current
        if token.kind == "ident":
            self.advance()
            return Symbol(token.text)
        if token.kind == "eps":
            self.advance()
            return Epsilon()
        if self.at_op("^"):
            self.advance()
            return self.parse_primary().reverse()
        if self.at_op("!"):
            self.advance()
            return self.parse_negated_class()
        if self.at_op("("):
            self.advance()
            node = self.parse_union()
            self.expect_op(")")
            return node
        raise RegexSyntaxError(
            f"expected an atom, found {token.text or 'end of input'!r}",
            position=token.pos,
        )

    def parse_negated_class(self) -> RegexNode:
        """``!(a|^b|c)`` — split into forward and inverse direction sets.

        Per SPARQL, the forward part matches a forward edge whose label
        avoids the forward-listed predicates, and the inverse part a
        reversed edge avoiding the inverse-listed ones; the result is
        the union of the non-empty directions.
        """
        self.expect_op("(")
        forward: set[str] = set()
        inverse: set[str] = set()
        saw_forward = False
        saw_inverse = False
        while True:
            if self.at_op("^"):
                self.advance()
                token = self.advance()
                if token.kind != "ident":
                    raise RegexSyntaxError(
                        "expected a predicate after '^' in negated set",
                        position=token.pos,
                    )
                inverse.add(token.text)
                saw_inverse = True
            else:
                token = self.advance()
                if token.kind != "ident":
                    raise RegexSyntaxError(
                        "expected a predicate in negated set",
                        position=token.pos,
                    )
                forward.add(token.text)
                saw_forward = True
            if self.at_op("|"):
                self.advance()
                continue
            break
        self.expect_op(")")
        parts: list[RegexNode] = []
        if saw_forward or not saw_inverse:
            parts.append(NegatedClass(frozenset(forward), inverse=False))
        if saw_inverse:
            parts.append(NegatedClass(frozenset(inverse), inverse=True))
        return union(*parts) if len(parts) > 1 else parts[0]


def parse_regex(source: str) -> RegexNode:
    """Parse a path regular expression string into an AST.

    >>> str(parse_regex("l5+/bus"))
    'l5+/bus'
    >>> str(parse_regex("^(a/b)"))
    '^b/^a'
    """
    if not source.strip():
        raise RegexSyntaxError("empty regular expression")
    return _Parser(source).parse()
