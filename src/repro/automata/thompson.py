"""Thompson construction with ε-removal.

The classical product-graph baselines of the evaluation use this NFA
(the paper's §3.2 assumes "Thompson's classical algorithm, where we
assume that ε-transitions have been (subsequently) removed").  It also
serves as an independent oracle: Glushkov and Thompson are two
unrelated constructions, so the test suite checks they accept exactly
the same words.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.errors import ConstructionError


class EpsilonFreeNFA:
    """An ε-free NFA with atom-labeled transitions.

    Attributes
    ----------
    num_states:
        States are ``0 .. num_states - 1``; 0 is initial.
    delta:
        ``delta[q]`` is a list of ``(atom, target)`` pairs.
    finals:
        Set of accepting states.
    """

    def __init__(
        self,
        num_states: int,
        delta: dict[int, list[tuple[Symbol | NegatedClass, int]]],
        finals: set[int],
    ):
        self.num_states = num_states
        self.delta = delta
        self.finals = finals

    @property
    def initial(self) -> int:
        """The initial state (always 0)."""
        return 0

    def successors(self, state: int) -> list[tuple[Symbol | NegatedClass, int]]:
        """Outgoing ``(atom, target)`` transitions of a state."""
        return self.delta.get(state, [])

    def accepts(self, word: Iterable[str],
                atom_symbols: Mapping[object, frozenset[str]] | None = None
                ) -> bool:
        """Subset simulation over a word of labels.

        With no ``atom_symbols`` mapping, ``Symbol`` atoms match their
        own label and negated classes raise (tests supply explicit
        resolutions when they use classes).
        """
        current = {self.initial}
        for label in word:
            nxt: set[int] = set()
            for q in current:
                for atom, target in self.successors(q):
                    if atom_symbols is not None:
                        if label in atom_symbols.get(atom, frozenset()):
                            nxt.add(target)
                    elif isinstance(atom, Symbol) and atom.label == label:
                        nxt.add(target)
                    elif isinstance(atom, NegatedClass):
                        raise ConstructionError(
                            "negated class needs atom_symbols resolution"
                        )
            current = nxt
            if not current:
                break
        return bool(current & self.finals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_edges = sum(len(v) for v in self.delta.values())
        return (
            f"EpsilonFreeNFA(states={self.num_states}, edges={n_edges}, "
            f"finals={sorted(self.finals)})"
        )


class _ThompsonFragment:
    """A partial automaton with one entry and one exit state."""

    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int):
        self.start = start
        self.end = end


def build_thompson(expr: RegexNode) -> EpsilonFreeNFA:
    """Build Thompson's NFA for ``expr`` and remove its ε-transitions.

    The returned automaton is renumbered so that only states reachable
    from the initial state survive.
    """
    eps: dict[int, set[int]] = {}
    sym: dict[int, list[tuple[Symbol | NegatedClass, int]]] = {}
    counter = [0]

    def new_state() -> int:
        counter[0] += 1
        return counter[0] - 1

    def add_eps(a: int, b: int) -> None:
        eps.setdefault(a, set()).add(b)

    def add_sym(a: int, atom: Symbol | NegatedClass, b: int) -> None:
        sym.setdefault(a, []).append((atom, b))

    def build(node: RegexNode) -> _ThompsonFragment:
        if isinstance(node, Epsilon):
            s, e = new_state(), new_state()
            add_eps(s, e)
            return _ThompsonFragment(s, e)
        if isinstance(node, (Symbol, NegatedClass)):
            s, e = new_state(), new_state()
            add_sym(s, node, e)
            return _ThompsonFragment(s, e)
        if isinstance(node, Concat):
            frags = [build(c) for c in node.children]
            for left, right in zip(frags, frags[1:]):
                add_eps(left.end, right.start)
            return _ThompsonFragment(frags[0].start, frags[-1].end)
        if isinstance(node, Union):
            s, e = new_state(), new_state()
            for child in node.children:
                frag = build(child)
                add_eps(s, frag.start)
                add_eps(frag.end, e)
            return _ThompsonFragment(s, e)
        if isinstance(node, Star):
            s, e = new_state(), new_state()
            frag = build(node.child)
            add_eps(s, frag.start)
            add_eps(s, e)
            add_eps(frag.end, frag.start)
            add_eps(frag.end, e)
            return _ThompsonFragment(s, e)
        if isinstance(node, Plus):
            s, e = new_state(), new_state()
            frag = build(node.child)
            add_eps(s, frag.start)
            add_eps(frag.end, frag.start)
            add_eps(frag.end, e)
            return _ThompsonFragment(s, e)
        if isinstance(node, Optional):
            s, e = new_state(), new_state()
            frag = build(node.child)
            add_eps(s, frag.start)
            add_eps(s, e)
            add_eps(frag.end, e)
            return _ThompsonFragment(s, e)
        raise ConstructionError(f"unknown regex node {type(node).__name__}")

    top = build(expr)
    n_raw = counter[0]

    # ε-closures by DFS (memoised).
    closures: dict[int, frozenset[int]] = {}

    def closure(state: int) -> frozenset[int]:
        cached = closures.get(state)
        if cached is not None:
            return cached
        seen = {state}
        stack = [state]
        while stack:
            q = stack.pop()
            for nxt in eps.get(q, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        result = frozenset(seen)
        closures[state] = result
        return result

    # ε-free transitions: from q, any symbol edge leaving closure(q).
    def sym_edges(state: int) -> list[tuple[Symbol | NegatedClass, int]]:
        edges: list[tuple[Symbol | NegatedClass, int]] = []
        for q in closure(state):
            edges.extend(sym.get(q, ()))
        return edges

    finals_raw = {
        q for q in range(n_raw) if top.end in closure(q)
    }

    # Keep only states reachable from the start via symbol edges.
    order: dict[int, int] = {top.start: 0}
    queue = [top.start]
    delta: dict[int, list[tuple[Symbol | NegatedClass, int]]] = {}
    while queue:
        q = queue.pop(0)
        out: list[tuple[Symbol | NegatedClass, int]] = []
        for atom, target in sym_edges(q):
            if target not in order:
                order[target] = len(order)
                queue.append(target)
            out.append((atom, order[target]))
        if out:
            delta[order[q]] = out

    finals = {order[q] for q in finals_raw if q in order}
    return EpsilonFreeNFA(len(order), delta, finals)
