"""Regular expressions over predicates, automata and their simulation.

The query frontend of the reproduction:

* :mod:`repro.automata.syntax` — the regular-expression AST (two-way:
  atoms may be inverse predicates ``^p``), with reversal ``^E``;
* :mod:`repro.automata.parser` — SPARQL-property-path-flavoured parser
  (``/ | * + ? ^ !(...) (...)``);
* :mod:`repro.automata.glushkov` — Glushkov position automaton (§3.3);
* :mod:`repro.automata.thompson` — Thompson construction with
  ε-removal (baseline NFA used by the classical engines);
* :mod:`repro.automata.bitparallel` — the bit-parallel simulation of
  the Glushkov NFA with chunked transition tables (Eqs. 1–2).
"""

from repro.automata.glushkov import GlushkovAutomaton, build_glushkov
from repro.automata.parser import parse_regex
from repro.automata.syntax import (
    Concat,
    Epsilon,
    NegatedClass,
    Optional,
    Plus,
    RegexNode,
    Star,
    Symbol,
    Union,
)
from repro.automata.thompson import EpsilonFreeNFA, build_thompson

__all__ = [
    "Concat",
    "Epsilon",
    "EpsilonFreeNFA",
    "GlushkovAutomaton",
    "NegatedClass",
    "Optional",
    "Plus",
    "RegexNode",
    "Star",
    "Symbol",
    "Union",
    "build_glushkov",
    "build_thompson",
    "parse_regex",
]
