r"""Bit-parallel simulation of the Glushkov NFA (§3.3, Eqs. 1–2).

The simulation keeps the set ``D`` of active NFA states in a Python
integer and advances over a symbol ``c`` with

* forward:  ``D ← T[D] & B[c]``  (Eq. 1), and
* reverse:  ``D ← T'[D & B[c]]`` (Eq. 2),

where ``T`` maps a state set to everything reachable in one step and
``T'`` to everything that reaches it.  A direct table over all
:math:`2^{m+1}` state sets is exponential, so — exactly as §3.3
describes — the tables are split vertically into ``d``-bit subtables
``T_1 … T_{⌈(m+1)/d⌉}`` with ``T[X] = T_1[X_1] | … | T_k[X_k]``,
bounding preprocessing space and time by :math:`O((m/d)\,2^d)`.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.automata.glushkov import GlushkovAutomaton

#: Default vertical-split width for the transition tables.
DEFAULT_CHUNK_BITS = 13


class ChunkedTransitionTable:
    """Maps a state bitset ``X`` to the OR of per-state masks over X.

    Built from ``masks[x]`` (one mask per NFA state ``x``); the lookup
    ``table[X]`` returns ``OR { masks[x] : bit x set in X }`` by
    combining one subtable entry per ``chunk_bits``-wide slice of X.
    """

    def __init__(self, masks: Sequence[int], chunk_bits: int = DEFAULT_CHUNK_BITS):
        if chunk_bits < 1:
            raise ValueError("chunk_bits must be positive")
        self.num_states = len(masks)
        self.chunk_bits = min(chunk_bits, max(1, self.num_states))
        self._chunks: list[list[int]] = []
        for base in range(0, self.num_states, self.chunk_bits):
            width = min(self.chunk_bits, self.num_states - base)
            sub = [0] * (1 << width)
            # Dynamic-programming fill: X = (X without its lowest bit)
            # OR'd with that bit's mask; each entry costs O(1).
            for x in range(1, len(sub)):
                low = x & -x
                sub[x] = sub[x ^ low] | masks[base + low.bit_length() - 1]
            self._chunks.append(sub)

    def __getitem__(self, state_set: int) -> int:
        result = 0
        mask = (1 << self.chunk_bits) - 1
        for sub in self._chunks:
            part = state_set & mask
            if part:
                result |= sub[part]
            state_set >>= self.chunk_bits
        return result

    def table_entries(self) -> int:
        """Total subtable entries (the §3.3 space bound, for stats)."""
        return sum(len(sub) for sub in self._chunks)


class ForwardSimulator:
    """Eq. (1): reads words left to right.

    ``b_masks`` maps concrete symbols (predicate ids or labels) to the
    bitset of states entered by that symbol; missing symbols match no
    state, which implements the lazily-initialised ``B`` of the paper.
    """

    def __init__(
        self,
        automaton: GlushkovAutomaton,
        b_masks: Mapping[object, int],
        chunk_bits: int = DEFAULT_CHUNK_BITS,
    ):
        self.automaton = automaton
        self.b_masks = b_masks
        self.table = ChunkedTransitionTable(
            automaton.follow_masks, chunk_bits
        )

    def start(self) -> int:
        """Initial active-state set: just state 0."""
        return GlushkovAutomaton.INITIAL_MASK

    def step(self, state_set: int, symbol: object) -> int:
        """Advance over one symbol (Eq. 1)."""
        return self.table[state_set] & self.b_masks.get(symbol, 0)

    def is_final(self, state_set: int) -> bool:
        """True when the set contains an accepting state."""
        return self.automaton.is_final(state_set)

    def accepts(self, word: Sequence[object]) -> bool:
        """Whole-word membership (Eq. 1 loop)."""
        d = self.start()
        for symbol in word:
            d = self.step(d, symbol)
            if d == 0:
                return False
        return self.is_final(d)


class ReverseSimulator:
    """Eq. (2): reads words right to left.

    Starts from the final states and reports a match whenever the
    initial state becomes active — the direction the Ring-RPQ engine
    traverses the graph in.
    """

    def __init__(
        self,
        automaton: GlushkovAutomaton,
        b_masks: Mapping[object, int],
        chunk_bits: int = DEFAULT_CHUNK_BITS,
    ):
        self.automaton = automaton
        self.b_masks = b_masks
        self.table = ChunkedTransitionTable(automaton.pred_masks, chunk_bits)

    def start(self) -> int:
        """Initial active-state set: the accepting states ``F``."""
        return self.automaton.final_mask

    def step(self, state_set: int, symbol: object) -> int:
        """Advance (backwards) over one symbol (Eq. 2)."""
        filtered = state_set & self.b_masks.get(symbol, 0)
        if filtered == 0:
            return 0
        return self.table[filtered]

    def step_prefiltered(self, filtered: int) -> int:
        """Eq. (2) when ``D & B[c]`` was already computed by the caller.

        The RPQ engine's wavelet-tree descent maintains ``D & B[v]``
        incrementally, so by the time it reaches a leaf the bitwise-and
        is already done.
        """
        return self.table[filtered]

    def reports_match(self, state_set: int) -> bool:
        """True when the set reached the initial state (a full match)."""
        return self.automaton.contains_initial(state_set)

    def accepts(self, word: Sequence[object]) -> bool:
        """Whole-word membership, reading the word from its end."""
        d = self.start()
        for symbol in reversed(word):
            d = self.step(d, symbol)
            if d == 0:
                return False
        return self.reports_match(d)
