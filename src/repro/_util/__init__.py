"""Internal helpers shared across subpackages (not part of the public API)."""
