"""Low-level bit manipulation helpers.

These helpers are shared by the succinct data structures and the
bit-parallel automaton simulation.  NFA state sets are represented as
plain Python integers (arbitrary precision), while bitvector payloads
live in packed ``numpy.uint64`` word arrays; this module provides the
glue between the two worlds.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

#: Number of payload bits per machine word used by the packed structures.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

# Byte-indexed popcount table; np.unpackbits-based counting is slower for
# the short word runs rank() touches, so we count bytes via a table.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def popcount(x: int) -> int:
    """Number of set bits in the non-negative integer ``x``."""
    return x.bit_count()


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint64`` word array."""
    if words.size == 0:
        return 0
    as_bytes = words.view(np.uint8)
    return int(_POPCOUNT8[as_bytes].sum())


def popcount_words_cumulative(words: np.ndarray) -> np.ndarray:
    """Per-word popcounts of a ``uint64`` array as a ``uint32`` vector."""
    if words.size == 0:
        return np.zeros(0, dtype=np.uint32)
    as_bytes = words.view(np.uint8).reshape(-1, 8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.uint32)


def bits_to_words(bits: Iterable[int]) -> np.ndarray:
    """Pack an iterable of 0/1 values into a little-endian uint64 array.

    Bit ``i`` of the logical sequence is stored at
    ``words[i // 64] >> (i % 64) & 1``.
    """
    bit_list = np.fromiter((1 if b else 0 for b in bits), dtype=np.uint8)
    return pack_bool_array(bit_list)


def pack_bool_array(bit_array: np.ndarray) -> np.ndarray:
    """Pack a 0/1 ``uint8`` array into uint64 words (little-endian bits)."""
    n = len(bit_array)
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[:n] = bit_array
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(np.uint64)


def unpack_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_array`: words back to a 0/1 array."""
    if n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n_bits]


def iter_set_bits(x: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``x``, lowest first."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


def mask_of(positions: Iterable[int]) -> int:
    """Build an integer bitmask with the given bit positions set."""
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    return mask


def low_chunks(x: int, chunk_bits: int, n_chunks: int) -> Iterator[int]:
    """Split ``x`` into ``n_chunks`` little-endian chunks of ``chunk_bits``."""
    mask = (1 << chunk_bits) - 1
    for _ in range(n_chunks):
        yield x & mask
        x >>= chunk_bits


def word_to_int(words: np.ndarray) -> int:
    """Reassemble a packed word array into one big Python integer."""
    value = 0
    for i, w in enumerate(words):
        value |= int(w) << (i * WORD_BITS)
    return value
