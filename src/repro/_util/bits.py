"""Low-level bit manipulation helpers.

These helpers are shared by the succinct data structures and the
bit-parallel automaton simulation.  NFA state sets are represented as
plain Python integers (arbitrary precision), while bitvector payloads
live in packed ``numpy.uint64`` word arrays; this module provides the
glue between the two worlds.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

#: Number of payload bits per machine word used by the packed structures.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1

# Byte-indexed popcount table; np.unpackbits-based counting is slower for
# the short word runs rank() touches, so we count bytes via a table.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint32)


def popcount(x: int) -> int:
    """Number of set bits in the non-negative integer ``x``."""
    return x.bit_count()


def popcount_words(words: np.ndarray) -> int:
    """Total number of set bits across a ``uint64`` word array."""
    if words.size == 0:
        return 0
    as_bytes = words.view(np.uint8)
    return int(_POPCOUNT8[as_bytes].sum())


def popcount_words_cumulative(words: np.ndarray) -> np.ndarray:
    """Per-word popcounts of a ``uint64`` array as a ``uint32`` vector."""
    if words.size == 0:
        return np.zeros(0, dtype=np.uint32)
    as_bytes = words.view(np.uint8).reshape(-1, 8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.uint32)


# numpy >= 2.0 ships a native vectorized popcount; pyproject only pins
# numpy >= 1.24, so fall back to the byte table when it is missing.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array, as ``int64``.

    The batch-kernel analogue of ``int.bit_count()``: one vectorized
    pass instead of a Python-level loop per element.
    """
    if words.size == 0:
        return np.zeros(0, dtype=np.int64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    as_bytes = np.ascontiguousarray(words).view(np.uint8).reshape(-1, 8)
    return _POPCOUNT8[as_bytes].sum(axis=1, dtype=np.int64)


# Low-bit masks per in-word offset: _LOW_MASKS[k] has the k lowest bits
# set.  A 64-entry gather replaces a shift + subtract pass per batch.
_LOW_MASKS = (
    np.uint64(1) << np.arange(64, dtype=np.uint64)
) - np.uint64(1)


def rank1_many_words(
    words: np.ndarray,
    cum: np.ndarray,
    n_bits: int,
    positions: np.ndarray,
) -> np.ndarray:
    """Vectorized ``rank1`` over packed words with a cumulative directory.

    Parameters
    ----------
    words:
        Packed little-endian ``uint64`` payload.  May carry one zero
        sentinel word beyond the directory (``len(words) == len(cum)``);
        callers on hot paths pass that extended form so the boundary
        position needs no index clamp.
    cum:
        Cumulative per-word popcounts, word count + 1 entries,
        ``int64`` (so the gathered counts need no upcast).
    n_bits:
        Logical length; positions are clipped into ``[0, n_bits]``
        exactly like the scalar ``BitVector.rank1`` clamps.
    positions:
        ``int64`` array of rank arguments.

    Returns the number of 1-bits strictly before each position.  The
    whole computation is gather + mask + popcount — no per-position
    Python bytecode.
    """
    pos = np.asarray(positions, dtype=np.int64)
    if pos.size == 0:
        return np.zeros(0, dtype=np.int64)
    if n_bits == 0 or words.size == 0:
        return np.zeros(pos.shape, dtype=np.int64)
    clipped = np.clip(pos, 0, n_bits)
    word = clipped >> 6
    if len(words) == len(cum):
        # Sentinel-extended payload: position n_bits on a word boundary
        # gathers the zero sentinel (offset 0 masks it out anyway).
        payload = words[word]
    else:
        # ``word`` equals len(words) only when clipped == n_bits on a
        # word boundary; the offset is 0 there, so the masked payload
        # does not matter — gather a safe index instead.
        payload = words[np.minimum(word, len(words) - 1)]
    in_word = payload & _LOW_MASKS[clipped & 63]
    return cum[word] + popcount_u64(in_word)


def bits_to_words(bits: Iterable[int]) -> np.ndarray:
    """Pack an iterable of 0/1 values into a little-endian uint64 array.

    Bit ``i`` of the logical sequence is stored at
    ``words[i // 64] >> (i % 64) & 1``.
    """
    bit_list = np.fromiter((1 if b else 0 for b in bits), dtype=np.uint8)
    return pack_bool_array(bit_list)


def pack_bool_array(bit_array: np.ndarray) -> np.ndarray:
    """Pack a 0/1 ``uint8`` array into uint64 words (little-endian bits)."""
    n = len(bit_array)
    if n == 0:
        return np.zeros(0, dtype=np.uint64)
    n_words = (n + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
    padded[:n] = bit_array
    packed_bytes = np.packbits(padded, bitorder="little")
    return packed_bytes.view(np.uint64)


def unpack_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_array`: words back to a 0/1 array."""
    if n_bits == 0:
        return np.zeros(0, dtype=np.uint8)
    as_bytes = words.view(np.uint8)
    bits = np.unpackbits(as_bytes, bitorder="little")
    return bits[:n_bits]


def iter_set_bits(x: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``x``, lowest first."""
    while x:
        low = x & -x
        yield low.bit_length() - 1
        x ^= low


def mask_of(positions: Iterable[int]) -> int:
    """Build an integer bitmask with the given bit positions set."""
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    return mask


def low_chunks(x: int, chunk_bits: int, n_chunks: int) -> Iterator[int]:
    """Split ``x`` into ``n_chunks`` little-endian chunks of ``chunk_bits``."""
    mask = (1 << chunk_bits) - 1
    for _ in range(n_chunks):
        yield x & mask
        x >>= chunk_bits


def word_to_int(words: np.ndarray) -> int:
    """Reassemble a packed word array into one big Python integer."""
    value = 0
    for i, w in enumerate(words):
        value |= int(w) << (i * WORD_BITS)
    return value
