"""Fixed-width packed integer array.

The paper reports its dataset size in "packed form": each triple
component stored in exactly ``ceil(log2(alphabet))`` bits.  This module
provides that representation so the benchmark harness can report the
same baseline, and so dictionaries / C-arrays can be stored compactly.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConstructionError


def bits_for(max_value: int) -> int:
    """Number of bits needed to store values in ``[0, max_value]``."""
    if max_value < 0:
        raise ConstructionError("max_value must be non-negative")
    return max(1, int(max_value).bit_length())


class PackedIntArray:
    """An immutable array of ``n`` integers, each stored in ``width`` bits.

    Values are packed little-endian into a ``uint64`` word buffer; random
    access unpacks at most two adjacent words.
    """

    __slots__ = ("_n", "_width", "_words")

    def __init__(self, values: Iterable[int] | np.ndarray, width: int | None = None):
        values = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if values.size and values.min() < 0:
            raise ConstructionError("PackedIntArray stores non-negative ints")
        if width is None:
            width = bits_for(int(values.max()) if values.size else 0)
        if not 1 <= width <= 64:
            raise ConstructionError(f"width must be in [1, 64], got {width}")
        if values.size and int(values.max()).bit_length() > width:
            raise ConstructionError(
                f"value {int(values.max())} does not fit in {width} bits"
            )
        self._n = int(values.size)
        self._width = width
        total_bits = self._n * width
        n_words = (total_bits + 63) // 64
        words = np.zeros(n_words + 1, dtype=np.uint64)  # +1 pad word
        # Pack via bit arithmetic on Python ints per value; construction
        # is offline so clarity beats vectorisation here.
        for i, v in enumerate(values):
            bit = i * width
            word, offset = divmod(bit, 64)
            chunk = int(v) << offset
            words[word] |= np.uint64(chunk & 0xFFFFFFFFFFFFFFFF)
            if offset + width > 64:
                words[word + 1] |= np.uint64(chunk >> 64)
        self._words = words

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def width(self) -> int:
        """Bits per element."""
        return self._width

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        bit = i * self._width
        word, offset = divmod(bit, 64)
        value = int(self._words[word]) >> offset
        if offset + self._width > 64:
            value |= int(self._words[word + 1]) << (64 - offset)
        return value & ((1 << self._width) - 1)

    def __iter__(self) -> Iterator[int]:
        for i in range(self._n):
            yield self[i]

    def to_array(self) -> np.ndarray:
        """Unpack into an ``int64`` numpy array."""
        return np.fromiter(self, dtype=np.int64, count=self._n)

    def size_in_bits(self) -> int:
        """Actually allocated bits (includes the single pad word)."""
        return self._words.nbytes * 8

    def measure(self, name: str = "packed_int_array"):
        """Space-audit node: the packed word buffer (pad word included)."""
        from repro.obs.space import SpaceNode

        return SpaceNode(
            name,
            children=[
                SpaceNode("words", self._words.nbytes, kind="buffer",
                          detail={"dtype": "uint64", "pad_words": 1}),
            ],
            kind="packed_int_array",
            detail={"n": self._n, "width": self._width},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PackedIntArray(n={self._n}, width={self._width})"
