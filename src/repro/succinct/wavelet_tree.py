"""Pointer-based (balanced) wavelet tree.

This is the textbook structure of §3.5 of the paper: a perfect binary
tree over the alphabet where each internal node stores one bitvector.
The production index used by the ring is the wavelet matrix
(:mod:`repro.succinct.wavelet_matrix`); this pointer version exists as

* the reference implementation the matrix is differential-tested
  against, and
* the structure the paper's Fig. 4 worked example is replayed on.

Both classes deliberately share method names (``access``, ``rank``,
``select``, ``range_distinct``, ``size_in_bits``) so tests can run the
same scenario against either.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro.errors import ConstructionError
from repro.succinct.bitvector import BitVector


class _Node:
    """One internal wavelet tree node covering symbols ``[lo, hi)``."""

    __slots__ = ("lo", "hi", "bits", "left", "right")

    def __init__(self, lo: int, hi: int, bits: BitVector,
                 left: "_Node | None", right: "_Node | None"):
        self.lo = lo
        self.hi = hi
        self.bits = bits
        self.left = left
        self.right = right

    @property
    def mid(self) -> int:
        """Split point: symbols < mid go left, >= mid go right."""
        return (self.lo + self.hi) // 2

    def is_leaf_range(self) -> bool:
        """True when this node covers a single symbol (conceptual leaf)."""
        return self.hi - self.lo <= 1


class WaveletTree:
    """Balanced wavelet tree over the alphabet ``[0, sigma)``.

    Ranges are half-open and 0-based, matching
    :class:`~repro.succinct.wavelet_matrix.WaveletMatrix`.
    """

    def __init__(self, values: Iterable[int] | np.ndarray, sigma: int | None = None):
        seq = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if seq.size and seq.min() < 0:
            raise ConstructionError("wavelet tree stores non-negative ints")
        if sigma is None:
            sigma = int(seq.max()) + 1 if seq.size else 1
        if seq.size and int(seq.max()) >= sigma:
            raise ConstructionError(
                f"value {int(seq.max())} outside alphabet [0, {sigma})"
            )
        if sigma < 1:
            raise ConstructionError("alphabet size must be at least 1")
        self._n = int(seq.size)
        self._sigma = int(sigma)
        self._counts = np.bincount(seq, minlength=sigma).astype(np.int64) \
            if seq.size else np.zeros(sigma, dtype=np.int64)
        self._root = self._build(seq, 0, sigma)

    def _build(self, seq: np.ndarray, lo: int, hi: int) -> _Node | None:
        if hi - lo <= 1:
            return None  # conceptual leaf; not materialised
        mid = (lo + hi) // 2
        go_right = seq >= mid
        bits = BitVector(go_right.astype(np.uint8))
        left = self._build(seq[~go_right], lo, mid)
        right = self._build(seq[go_right], mid, hi)
        return _Node(lo, hi, bits, left, right)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self._sigma

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol``."""
        self._check_symbol(symbol)
        return int(self._counts[symbol])

    def access(self, i: int) -> int:
        """Symbol at position ``i``; O(log sigma)."""
        if not 0 <= i < self._n:
            raise IndexError(f"position {i} out of range [0, {self._n})")
        node = self._root
        lo, hi = 0, self._sigma
        while node is not None:
            if node.bits[i]:
                i = node.bits.rank1(i)
                lo = node.mid
                node = node.right
            else:
                i = node.bits.rank0(i)
                hi = node.mid
                node = node.left
        return lo

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        return self.access(i)

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in ``[0, i)``; O(log sigma)."""
        self._check_symbol(symbol)
        if i <= 0:
            return 0
        i = min(i, self._n)
        node = self._root
        lo, hi = 0, self._sigma
        while node is not None:
            if symbol >= node.mid:
                i = node.bits.rank1(i)
                lo = node.mid
                node = node.right
            else:
                i = node.bits.rank0(i)
                hi = node.mid
                node = node.left
        return i

    def select(self, symbol: int, j: int) -> int:
        """Position of the ``j``-th (0-based) occurrence of ``symbol``."""
        self._check_symbol(symbol)
        if j < 0 or j >= self._counts[symbol]:
            raise IndexError(
                f"select({symbol}, {j}): only {int(self._counts[symbol])} "
                "occurrences"
            )
        # Collect the root-to-leaf path, then walk back up with select.
        path: list[tuple[_Node, int]] = []
        node = self._root
        while node is not None:
            bit = 1 if symbol >= node.mid else 0
            path.append((node, bit))
            node = node.right if bit else node.left
        pos = j
        for node, bit in reversed(path):
            pos = node.bits.select(bit, pos)
        return pos

    def to_list(self) -> list[int]:
        """Decode the full sequence (slow; tests only)."""
        return [self.access(i) for i in range(self._n)]

    # ------------------------------------------------------------------

    def range_distinct(self, b: int, e: int) -> Iterator[tuple[int, int, int]]:
        """Yield ``(symbol, rank_b, rank_e)`` per distinct symbol in
        ``[b, e)``, ascending; the §3.5 warm-up algorithm."""
        b = max(0, min(b, self._n))
        e = max(0, min(e, self._n))
        if b >= e:
            return
        yield from self._distinct(self._root, 0, self._sigma, b, e)

    def _distinct(self, node: _Node | None, lo: int, hi: int,
                  b: int, e: int) -> Iterator[tuple[int, int, int]]:
        if b >= e:
            return
        if node is None:
            yield (lo, b, e)
            return
        b0, e0 = node.bits.rank0(b), node.bits.rank0(e)
        b1, e1 = b - b0, e - e0
        yield from self._distinct(node.left, lo, node.mid, b0, e0)
        yield from self._distinct(node.right, node.mid, hi, b1, e1)

    def range_list_symbols(self, b: int, e: int) -> list[int]:
        """Distinct symbols occurring in ``[b, e)``, ascending."""
        return [sym for sym, _, _ in self.range_distinct(b, e)]

    def range_intersect(
        self, b1: int, e1: int, b2: int, e2: int
    ) -> list[tuple[int, int, int, int, int]]:
        """Symbols present in both ranges; see the matrix docstring."""
        clamp = lambda x: max(0, min(x, self._n))  # noqa: E731
        out: list[tuple[int, int, int, int, int]] = []
        self._intersect(self._root, 0, self._sigma,
                        clamp(b1), clamp(e1), clamp(b2), clamp(e2), out)
        return out

    def _intersect(self, node: _Node | None, lo: int, hi: int,
                   b1: int, e1: int, b2: int, e2: int,
                   out: list[tuple[int, int, int, int, int]]) -> None:
        if b1 >= e1 or b2 >= e2:
            return
        if node is None:
            out.append((lo, b1, e1, b2, e2))
            return
        l1b, l1e = node.bits.rank0(b1), node.bits.rank0(e1)
        l2b, l2e = node.bits.rank0(b2), node.bits.rank0(e2)
        self._intersect(node.left, lo, node.mid, l1b, l1e, l2b, l2e, out)
        self._intersect(node.right, node.mid, hi,
                        b1 - l1b, e1 - l1e, b2 - l2b, e2 - l2e, out)

    # ------------------------------------------------------------------

    def size_in_bits(self) -> int:
        """Actually allocated bits across all node bitvectors."""
        total = self._counts.nbytes * 8

        def walk(node: _Node | None) -> int:
            if node is None:
                return 0
            return node.bits.size_in_bits() + walk(node.left) + walk(node.right)

        return total + walk(self._root)

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self._sigma:
            raise ValueError(
                f"symbol {symbol} outside alphabet [0, {self._sigma})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WaveletTree(n={self._n}, sigma={self._sigma})"
