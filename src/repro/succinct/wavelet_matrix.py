"""Wavelet matrix: a wavelet tree layout for large alphabets.

The ring represents its BWT columns ``L_s`` and ``L_p`` with wavelet
matrices (Claude, Navarro & Ordóñez 2015), exactly as the paper's C++
implementation does.  Besides the classical ``access``/``rank``/``select``
operations, this implementation exposes the *virtual node* interface the
Ring-RPQ engine needs:

* :meth:`WaveletMatrix.root` / :meth:`WaveletMatrix.children` let a
  caller walk the conceptual wavelet tree restricted to a position range
  ``[b, e)``, pruning subtrees at will — the engine prunes with its
  ``B[v]`` and ``D[v]`` automaton masks (paper §4.1–§4.2);
* :meth:`WaveletMatrix.range_distinct` enumerates the distinct symbols
  in a range in :math:`O(\\log\\sigma)` time per reported symbol;
* :meth:`WaveletMatrix.range_intersect` intersects the symbol sets of
  two ranges (used by the §5 fast path for length-2 paths).

Every conceptual node is identified by ``(level, prefix)`` where
``prefix`` is the top ``level`` bits of the symbols below it; this id is
hashable, so per-node annotations live in plain dicts, which gives the
lazy initialisation the paper performs explicitly in C++.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
import numpy as np

from repro._util.bits import rank1_many_words
from repro.errors import ConstructionError
from repro.succinct.bitvector import BitVector


def _bit_reverse(value: int, width: int) -> int:
    """Reverse the low ``width`` bits of ``value``."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (value & 1)
        value >>= 1
    return out


class WaveletNode:
    """A conceptual wavelet tree node restricted to a query range.

    A plain ``__slots__`` value type (not a dataclass): the RPQ engine
    creates millions of these in its inner loop.

    Attributes
    ----------
    level:
        Depth; 0 is the root, ``matrix.height`` is a leaf.
    prefix:
        The top ``level`` bits shared by all symbols below this node.
    begin, end:
        Half-open position range of the query's occurrences inside this
        node's interval of the level-``level`` sequence.
    """

    __slots__ = ("level", "prefix", "begin", "end")

    def __init__(self, level: int, prefix: int, begin: int, end: int):
        self.level = level
        self.prefix = prefix
        self.begin = begin
        self.end = end

    @property
    def node_id(self) -> tuple[int, int]:
        """Hashable identity of the conceptual node (ignores the range)."""
        return (self.level, self.prefix)

    def __len__(self) -> int:
        return self.end - self.begin

    def is_empty(self) -> bool:
        """True when the query range has no occurrence below this node."""
        return self.end <= self.begin

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WaveletNode):
            return NotImplemented
        return (self.level, self.prefix, self.begin, self.end) == (
            other.level, other.prefix, other.begin, other.end
        )

    def __hash__(self) -> int:
        return hash((self.level, self.prefix, self.begin, self.end))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaveletNode(level={self.level}, prefix={self.prefix}, "
            f"range=[{self.begin}, {self.end}))"
        )


class WaveletMatrix:
    """Immutable sequence over ``[0, sigma)`` with wavelet-matrix indexing.

    Parameters
    ----------
    values:
        The sequence, as any iterable of non-negative ints.
    sigma:
        Alphabet size; defaults to ``max(values) + 1``.
    """

    __slots__ = ("_n", "_sigma", "_height", "_levels", "_zeros",
                 "_counts", "_bottom_start", "_class_cum", "_batch_cache")

    def __init__(self, values: Iterable[int] | np.ndarray, sigma: int | None = None):
        seq = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=np.int64,
        )
        if seq.size and seq.min() < 0:
            raise ConstructionError("wavelet matrix stores non-negative ints")
        if sigma is None:
            sigma = int(seq.max()) + 1 if seq.size else 1
        if seq.size and int(seq.max()) >= sigma:
            raise ConstructionError(
                f"value {int(seq.max())} outside alphabet [0, {sigma})"
            )
        if sigma < 1:
            raise ConstructionError("alphabet size must be at least 1")
        self._n = int(seq.size)
        self._sigma = int(sigma)
        self._height = max(1, (self._sigma - 1).bit_length())

        levels: list[BitVector] = []
        zeros: list[int] = []
        current = seq
        for level in range(self._height):
            shift = self._height - 1 - level
            bits = ((current >> shift) & 1).astype(np.uint8)
            bv = BitVector(bits)
            levels.append(bv)
            zeros.append(bv.num_zeros)
            # Stable partition: zero-bit symbols first, one-bit after.
            current = np.concatenate((current[bits == 0], current[bits == 1]))
        self._levels = levels
        self._zeros = zeros

        counts = np.zeros(self._sigma, dtype=np.int64)
        if seq.size:
            binc = np.bincount(seq, minlength=self._sigma)
            counts[: len(binc)] = binc
        self._counts = counts
        # Numeric-order cumulative counts; used to answer "how many
        # sequence positions fall under conceptual node v" in O(1).
        class_cum = np.zeros(self._sigma + 1, dtype=np.int64)
        np.cumsum(counts, out=class_cum[1:])
        self._class_cum = class_cum
        # Start offset of each symbol's run in the (conceptual) bottom
        # sequence.  The matrix partitions by MSB first and LSB last, so
        # the bottom orders symbols by their *bit-reversed* value.
        bottom_start = np.zeros(self._sigma, dtype=np.int64)
        order = sorted(
            range(self._sigma), key=lambda c: _bit_reverse(c, self._height)
        )
        acc = 0
        for c in order:
            bottom_start[c] = acc
            acc += int(counts[c])
        self._bottom_start = bottom_start
        self._batch_cache: tuple | None = None

    @classmethod
    def from_parts(
        cls,
        levels: "list[BitVector]",
        n: int,
        sigma: int,
        counts: np.ndarray,
        class_cum: np.ndarray,
        bottom_start: np.ndarray,
    ) -> "WaveletMatrix":
        """Reassemble a wavelet matrix from prebuilt components.

        The *view* construction path of the snapshot plane: ``levels``
        are (typically :meth:`BitVector.from_packed`-constructed) level
        bitvectors and the three per-symbol tables are externally owned
        ``int64`` arrays — nothing is copied or recomputed except the
        per-level zero counts, which are O(height) reads off the rank
        directories.  All arrays must be treated as immutable.
        """
        height = max(1, (int(sigma) - 1).bit_length())
        if len(levels) != height:
            raise ConstructionError(
                f"expected {height} levels for sigma={sigma}, "
                f"got {len(levels)}"
            )
        self = cls.__new__(cls)
        self._n = int(n)
        self._sigma = int(sigma)
        self._height = height
        self._levels = list(levels)
        self._zeros = [bv.num_zeros for bv in levels]
        self._counts = counts
        self._class_cum = class_cum
        self._bottom_start = bottom_start
        self._batch_cache = None
        return self

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def sigma(self) -> int:
        """Alphabet size."""
        return self._sigma

    @property
    def height(self) -> int:
        """Number of levels, ``ceil(log2(sigma))`` (at least 1)."""
        return self._height

    def count(self, symbol: int) -> int:
        """Total occurrences of ``symbol`` in the sequence."""
        self._check_symbol(symbol)
        return int(self._counts[symbol])

    # ------------------------------------------------------------------
    # access / rank / select
    # ------------------------------------------------------------------

    def access(self, i: int) -> int:
        """The symbol at position ``i``; O(log sigma)."""
        if not 0 <= i < self._n:
            raise IndexError(f"position {i} out of range [0, {self._n})")
        symbol = 0
        for level in range(self._height):
            bv = self._levels[level]
            bit = bv[i]
            symbol = (symbol << 1) | bit
            if bit:
                i = self._zeros[level] + bv.rank1(i)
            else:
                i = bv.rank0(i)
        return symbol

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        return self.access(i)

    def rank(self, symbol: int, i: int) -> int:
        """Occurrences of ``symbol`` in positions ``[0, i)``; O(log sigma)."""
        self._check_symbol(symbol)
        if i <= 0:
            return 0
        i = min(i, self._n)
        pos = self._walk_down(symbol, i)
        return pos - int(self._bottom_start[symbol])

    def rank_pair(self, symbol: int, b: int, e: int) -> tuple[int, int]:
        """``(rank(symbol, b), rank(symbol, e))`` sharing the path walk."""
        self._check_symbol(symbol)
        b = max(0, min(b, self._n))
        e = max(0, min(e, self._n))
        start = int(self._bottom_start[symbol])
        for level in range(self._height):
            bv = self._levels[level]
            bit = (symbol >> (self._height - 1 - level)) & 1
            if bit:
                z = self._zeros[level]
                b = z + bv.rank1(b)
                e = z + bv.rank1(e)
            else:
                b = bv.rank0(b)
                e = bv.rank0(e)
        return b - start, e - start

    def rank_pair_many(self, symbol: int, bs, es) -> tuple[
            np.ndarray, np.ndarray]:
        """Vectorized :meth:`rank_pair`: many ranges, one symbol.

        Walks the symbol's root-to-leaf path once, mapping *all* range
        endpoints down each level with a single vectorized rank call —
        the bulk shape of the backward-search step (Eqs. 4–5).
        """
        bs = np.clip(np.asarray(bs, dtype=np.int64), 0, self._n)
        es = np.clip(np.asarray(es, dtype=np.int64), 0, self._n)
        self._check_symbol(symbol)
        k = len(bs)
        pos = np.concatenate((bs, es))
        levels, zeros, height, _, _, bottom_start = self.batch_data()
        for level in range(height):
            words, cum64, n_bits = levels[level]
            ranks = rank1_many_words(words, cum64, n_bits, pos)
            if (symbol >> (height - 1 - level)) & 1:
                pos = zeros[level] + ranks
            else:
                pos = pos - ranks
        start = int(bottom_start[symbol])
        return pos[:k] - start, pos[k:] - start

    def select(self, symbol: int, j: int) -> int:
        """Position of the ``j``-th (0-based) occurrence of ``symbol``."""
        self._check_symbol(symbol)
        if j < 0 or j >= self._counts[symbol]:
            raise IndexError(
                f"select({symbol}, {j}): only {int(self._counts[symbol])} "
                "occurrences"
            )
        # Walk up from the bottom occurrence back to the top level.
        pos = int(self._bottom_start[symbol]) + j
        for level in range(self._height - 1, -1, -1):
            bv = self._levels[level]
            bit = (symbol >> (self._height - 1 - level)) & 1
            if bit:
                pos = bv.select1(pos - self._zeros[level])
            else:
                pos = bv.select0(pos)
        return pos

    def to_list(self) -> list[int]:
        """Decode the full sequence (slow; for tests and small data)."""
        return [self.access(i) for i in range(self._n)]

    # ------------------------------------------------------------------
    # Virtual-node traversal API (used by the Ring-RPQ engine)
    # ------------------------------------------------------------------

    def root(self, b: int = 0, e: int | None = None) -> WaveletNode:
        """The root node restricted to range ``[b, e)`` of the sequence."""
        if e is None:
            e = self._n
        b = max(0, min(b, self._n))
        e = max(0, min(e, self._n))
        return WaveletNode(level=0, prefix=0, begin=b, end=e)

    def is_leaf(self, node: WaveletNode) -> bool:
        """True when ``node`` sits at the bottom level (one symbol)."""
        return node.level == self._height

    def leaf_symbol(self, node: WaveletNode) -> int:
        """The single symbol represented by a leaf node."""
        if not self.is_leaf(node):
            raise ValueError("leaf_symbol() called on an internal node")
        return node.prefix

    def node_symbol_range(self, node: WaveletNode) -> tuple[int, int]:
        """Half-open symbol interval ``[lo, hi)`` covered by ``node``.

        ``hi`` may exceed ``sigma`` for the rightmost nodes when sigma
        is not a power of two; such symbols simply never occur.
        """
        span = 1 << (self._height - node.level)
        lo = node.prefix << (self._height - node.level)
        return lo, lo + span

    def traversal_data(self) -> tuple:
        """Low-level arrays for external high-performance walkers.

        Returns ``(levels, zeros, height, sigma, class_cum,
        bottom_start)`` where ``levels[l]`` is ``(words, cum, n_bits)``
        with ``words``/``cum`` as plain Python-int lists (the bitvector
        rank fast path).  The RPQ engine's inner loops use this instead
        of the object-based node API: the traversal logic is identical,
        but skipping per-node object construction and method dispatch
        is worth ~2x under CPython.  Treat the arrays as read-only.
        """
        levels = [
            (bv._words_py, bv._cum_py, len(bv)) for bv in self._levels
        ]
        return (
            levels,
            list(self._zeros),
            self._height,
            self._sigma,
            self._class_cum.tolist(),
            self._bottom_start.tolist(),
        )

    def batch_data(self) -> tuple:
        """Numpy counterpart of :meth:`traversal_data`, cached.

        Returns ``(levels, zeros, height, sigma, class_cum,
        bottom_start)`` where ``levels[l]`` is ``(words, cum64,
        n_bits)`` with ``words`` as ``uint64`` and ``cum64`` the
        ``int64`` rank directory — the inputs
        :func:`repro._util.bits.rank1_many_words` wants.  Built once
        and cached; treat everything as read-only.
        """
        if self._batch_cache is None:
            self._batch_cache = (
                [bv.batch_data() for bv in self._levels],
                list(self._zeros),
                self._height,
                self._sigma,
                self._class_cum,
                self._bottom_start,
            )
        return self._batch_cache

    def descend_batch(self, ranges, prune_fn=None) -> tuple[
            np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Level-synchronous batched descent over many root ranges.

        The frontier of surviving ``(origin, prefix, begin, end)``
        nodes is carried *whole* from level to level: each level costs
        one vectorized rank call over the concatenated range endpoints
        instead of two scalar ranks per node.  Because the wavelet
        matrix is a perfect tree (every leaf sits at ``height``) and
        children are emitted in ``[left, right]`` order, the surviving
        leaves appear exactly in the order the scalar stack walk of
        :meth:`range_distinct` reports them: origin-major, symbol
        ascending.

        Parameters
        ----------
        ranges:
            Sequence of ``(b, e)`` root ranges (or an ``(k, 2)``
            array).  Endpoints are clamped into ``[0, n]``.
        prune_fn:
            Optional ``prune_fn(level, origins, prefixes, begins,
            ends) -> bool mask`` called once per level on the
            *non-empty* frontier; ``False`` entries are dropped with
            their whole subtree.  At the leaf level (``level ==
            height``) ``begins``/``ends`` are bottom-sequence
            positions (the per-symbol offset is subtracted only for
            the returned values).

        Returns ``(origins, symbols, rank_bs, rank_es)`` int64 arrays:
        one entry per distinct symbol of each surviving range, where
        ``rank_b``/``rank_e`` are the symbol ranks at the range
        endpoints — the same triples :meth:`range_distinct` yields,
        with the originating range index alongside.
        """
        arr = np.asarray(ranges, dtype=np.int64).reshape(-1, 2)
        levels, zeros, height, sigma, _, bottom_start = self.batch_data()
        empty = np.zeros(0, dtype=np.int64)
        if arr.size == 0:
            return empty, empty, empty, empty
        origin = np.arange(len(arr), dtype=np.int64)
        prefix = np.zeros(len(arr), dtype=np.int64)
        b = np.clip(arr[:, 0], 0, self._n)
        e = np.clip(arr[:, 1], 0, self._n)
        for level in range(height):
            keep = e > b
            if prune_fn is not None and keep.any():
                origin, prefix, b, e = (
                    origin[keep], prefix[keep], b[keep], e[keep]
                )
                keep = prune_fn(level, origin, prefix, b, e)
            if not keep.all():
                origin, prefix, b, e = (
                    origin[keep], prefix[keep], b[keep], e[keep]
                )
            k = len(b)
            if k == 0:
                return empty, empty, empty, empty
            words, cum64, n_bits = levels[level]
            ranks = rank1_many_words(
                words, cum64, n_bits, np.concatenate((b, e))
            )
            r1b, r1e = ranks[:k], ranks[k:]
            z = zeros[level]
            origin = np.repeat(origin, 2)
            next_prefix = np.empty(2 * k, dtype=np.int64)
            next_b = np.empty(2 * k, dtype=np.int64)
            next_e = np.empty(2 * k, dtype=np.int64)
            next_prefix[0::2] = prefix << 1
            next_prefix[1::2] = (prefix << 1) | 1
            next_b[0::2] = b - r1b
            next_b[1::2] = z + r1b
            next_e[0::2] = e - r1e
            next_e[1::2] = z + r1e
            prefix, b, e = next_prefix, next_b, next_e
        keep = (e > b) & (prefix < sigma)
        origin, prefix, b, e = origin[keep], prefix[keep], b[keep], e[keep]
        if prune_fn is not None and len(b):
            keep = prune_fn(height, origin, prefix, b, e)
            origin, prefix, b, e = (
                origin[keep], prefix[keep], b[keep], e[keep]
            )
        start = bottom_start[prefix]
        return origin, prefix, b - start, e - start

    def node_occurrences(self, node: WaveletNode) -> int:
        """Total sequence positions under conceptual node ``node``.

        When this equals ``len(node)`` the query range *covers* the
        node: every occurrence of every symbol below it lies inside the
        range.  The RPQ engine may only record its ``D[v]`` visited
        masks on covered nodes — recording on a partially covered node
        would claim visits to subjects the traversal never reached.
        """
        lo, hi = self.node_symbol_range(node)
        hi = min(hi, self._sigma)
        if lo >= hi:
            return 0
        return int(self._class_cum[hi] - self._class_cum[lo])

    def children(self, node: WaveletNode) -> tuple[WaveletNode, WaveletNode]:
        """Left and right child nodes with mapped ranges.

        Either child may be empty (``is_empty()``); callers typically
        skip those.  Calling this on a leaf is an error.
        """
        if self.is_leaf(node):
            raise ValueError("children() called on a leaf node")
        bv = self._levels[node.level]
        b0 = bv.rank0(node.begin)
        e0 = bv.rank0(node.end)
        z = self._zeros[node.level]
        b1 = z + (node.begin - b0)
        e1 = z + (node.end - e0)
        left = WaveletNode(node.level + 1, node.prefix << 1, b0, e0)
        right = WaveletNode(node.level + 1, (node.prefix << 1) | 1, b1, e1)
        return left, right

    def leaf_global_range(self, node: WaveletNode) -> tuple[int, int]:
        """Rank interval of a leaf: occurrences of its symbol before the
        query range's start and end, as ``(rank_b, rank_e)``.

        For a leaf reached from root range ``[b, e)`` this equals
        ``(rank(c, b), rank(c, e))`` — exactly what a backward-search
        step (Eqs. 4–5 of the paper) needs, obtained without re-walking.
        """
        if not self.is_leaf(node):
            raise ValueError("leaf_global_range() called on an internal node")
        start = int(self._bottom_start[node.prefix])
        return node.begin - start, node.end - start

    # ------------------------------------------------------------------
    # Range algorithms built on the node API
    # ------------------------------------------------------------------

    def range_distinct(self, b: int, e: int) -> Iterator[tuple[int, int, int]]:
        """Yield ``(symbol, rank_b, rank_e)`` for each distinct symbol in
        ``[b, e)``, in increasing symbol order.

        ``rank_e - rank_b`` is the symbol's multiplicity in the range.
        Runs in O(log sigma) per reported symbol.
        """
        stack = [self.root(b, e)]
        out: list[tuple[int, int, int]] = []
        while stack:
            node = stack.pop()
            if node.is_empty():
                continue
            if self.is_leaf(node):
                if node.prefix < self._sigma:
                    rb, re = self.leaf_global_range(node)
                    out.append((node.prefix, rb, re))
                continue
            left, right = self.children(node)
            stack.append(right)
            stack.append(left)
        # DFS pushed right after left then popped LIFO; ensure symbol order.
        out.sort(key=lambda t: t[0])
        yield from out

    def range_list_symbols(self, b: int, e: int) -> list[int]:
        """Distinct symbols occurring in ``[b, e)``, ascending."""
        return [sym for sym, _, _ in self.range_distinct(b, e)]

    def range_intersect(
        self, b1: int, e1: int, b2: int, e2: int
    ) -> list[tuple[int, int, int, int, int]]:
        """Symbols occurring in *both* ranges.

        Returns tuples ``(symbol, rank1_b, rank1_e, rank2_b, rank2_e)``
        in ascending symbol order; runs in O(log sigma) per node of the
        intersected traversal (Gagie, Navarro & Puglisi 2012).
        """
        results: list[tuple[int, int, int, int, int]] = []
        stack = [
            (
                WaveletNode(0, 0, max(0, b1), min(e1, self._n)),
                WaveletNode(0, 0, max(0, b2), min(e2, self._n)),
            )
        ]
        while stack:
            n1, n2 = stack.pop()
            if n1.is_empty() or n2.is_empty():
                continue
            if self.is_leaf(n1):
                if n1.prefix < self._sigma:
                    r1b, r1e = self.leaf_global_range(n1)
                    r2b, r2e = self.leaf_global_range(n2)
                    results.append((n1.prefix, r1b, r1e, r2b, r2e))
                continue
            l1, r1 = self.children(n1)
            l2, r2 = self.children(n2)
            stack.append((r1, r2))
            stack.append((l1, l2))
        results.sort(key=lambda t: t[0])
        return results

    def range_count_distinct(self, b: int, e: int) -> int:
        """Number of distinct symbols in ``[b, e)``.

        The §6 selectivity statistic ("the amount of distinct
        predicates labeling edges towards a given range of objects").
        This is the exact traversal count, O(log σ) per distinct
        symbol; the paper sketches an O(log) *total* variant at roughly
        double the space (colored range counting), which this library
        does not implement.
        """
        count = 0
        stack = [self.root(b, e)]
        while stack:
            node = stack.pop()
            if node.is_empty():
                continue
            if self.is_leaf(node):
                if node.prefix < self._sigma:
                    count += 1
                continue
            left, right = self.children(node)
            stack.append(left)
            stack.append(right)
        return count

    def range_next_value(self, b: int, e: int, lower: int) -> int | None:
        """Smallest symbol ``>= lower`` occurring in ``[b, e)``.

        Used by the Leapfrog-style seek extension (§6 of the paper).
        Returns ``None`` when no such symbol exists.
        """
        if lower >= self._sigma or b >= e:
            return None
        lower = max(lower, 0)
        return self._next_value(self.root(b, e), lower)

    def _next_value(self, node: WaveletNode, lower: int) -> int | None:
        if node.is_empty():
            return None
        lo, hi = self.node_symbol_range(node)
        if hi <= lower:
            return None
        if self.is_leaf(node):
            return node.prefix if node.prefix < self._sigma else None
        left, right = self.children(node)
        found = self._next_value(left, lower)
        if found is not None:
            return found
        return self._next_value(right, lower)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def size_in_bits(self) -> int:
        """Actually allocated bits: level bitvectors + per-symbol tables."""
        total = sum(bv.size_in_bits() for bv in self._levels)
        total += self._counts.nbytes * 8 + self._bottom_start.nbytes * 8
        return total

    def size_in_bits_model(self) -> int:
        """sdsl-style model: n·ceil(log sigma)(1 + 25% rank) + C array."""
        payload = sum(bv.size_in_bits_model() for bv in self._levels)
        c_array = (self._sigma + 1) * max(1, (self._n + 1).bit_length())
        return payload + c_array

    def measure(self, name: str = "wavelet_matrix"):
        """Space-audit node: per-level bitvectors plus the symbol tables.

        Unlike :meth:`size_in_bits` (which pins the paper's Table-2
        accounting and omits the derived ``class_cum`` prefix sums), the
        audit counts every allocated buffer, ``class_cum`` included, so
        audited totals telescope to real memory.
        """
        from repro.obs.space import SpaceNode

        children = [
            bv.measure(f"level{i}") for i, bv in enumerate(self._levels)
        ]
        children.append(
            SpaceNode(
                "tables",
                children=[
                    SpaceNode("counts", self._counts.nbytes, kind="buffer",
                              detail={"dtype": "int64"}),
                    SpaceNode("class_cum", self._class_cum.nbytes,
                              kind="buffer", detail={"dtype": "int64"}),
                    SpaceNode("bottom_start", self._bottom_start.nbytes,
                              kind="buffer", detail={"dtype": "int64"}),
                ],
                kind="symbol_tables",
            )
        )
        return SpaceNode(
            name,
            children=children,
            kind="wavelet_matrix",
            detail={"n": self._n, "sigma": self._sigma, "height": self._height},
        )

    def _check_symbol(self, symbol: int) -> None:
        if not 0 <= symbol < self._sigma:
            raise ValueError(
                f"symbol {symbol} outside alphabet [0, {self._sigma})"
            )

    def _walk_down(self, symbol: int, i: int) -> int:
        """Map position ``i`` down the path of ``symbol`` to the bottom."""
        for level in range(self._height):
            bv = self._levels[level]
            bit = (symbol >> (self._height - 1 - level)) & 1
            if bit:
                i = self._zeros[level] + bv.rank1(i)
            else:
                i = bv.rank0(i)
        return i

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaveletMatrix(n={self._n}, sigma={self._sigma}, "
            f"height={self._height})"
        )
