"""Packed bitvector with constant-time rank and fast select.

The bitvector stores its payload in little-endian ``numpy.uint64`` words
and keeps a per-word cumulative popcount directory, so ``rank`` is two
array reads plus one in-word popcount.  ``select`` binary-searches the
directory and then scans a single word.

This is the Python analogue of sdsl-lite's ``bit_vector`` +
``rank_support_v`` + ``select_support_mcl`` combination used by the
paper's C++ implementation.  The directory here is word-granular (one
32-bit counter per 64 payload bits) because in CPython the dominant cost
is interpreter overhead, not cache misses; :meth:`size_in_bits` reports
the actually allocated bits and :meth:`size_in_bits_model` the space an
sdsl-style 25%-overhead build would use, so benchmarks can report both.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np

from repro._util.bits import (
    WORD_BITS,
    pack_bool_array,
    popcount_words_cumulative,
    rank1_many_words,
    unpack_words,
)
from repro.errors import InvariantViolation


class BitVector:
    """An immutable sequence of bits supporting access/rank/select.

    Parameters
    ----------
    bits:
        Iterable of truthy/falsy values, or a numpy array of 0/1.

    Notes
    -----
    All positional arguments are 0-based and ranges are half-open, i.e.
    ``rank1(i)`` counts ones strictly before position ``i``.
    """

    __slots__ = (
        "_n", "_words", "_cum", "_words_py", "_cum_py", "_cum64",
        "_words_ext",
    )

    def __init__(self, bits: Iterable[int] | np.ndarray):
        if isinstance(bits, np.ndarray):
            bit_array = bits.astype(np.uint8, copy=False)
        else:
            bit_array = np.fromiter(
                (1 if b else 0 for b in bits), dtype=np.uint8
            )
        self._n = int(len(bit_array))
        self._words = pack_bool_array(bit_array)
        per_word = popcount_words_cumulative(self._words)
        cum = np.zeros(len(self._words) + 1, dtype=np.uint32)
        np.cumsum(per_word, out=cum[1:])
        self._cum = cum
        # Python-int mirrors of the packed words and the directory:
        # plain-list indexing plus int arithmetic is several times
        # faster under CPython than extracting numpy scalars, and rank
        # is the single hottest operation of the whole library.  The
        # mirrors are views of the same information, not extra payload,
        # so space accounting keeps using the numpy buffers.
        self._words_py: list[int] = self._words.tolist()
        self._cum_py: list[int] = cum.tolist()
        # int64 directory for the vectorized rank kernel, built lazily:
        # gathered counts then need no upcast inside rank1_many.
        self._cum64: np.ndarray | None = None
        self._words_ext: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_packed(cls, words_ext: np.ndarray, cum64: np.ndarray,
                    n: int) -> "BitVector":
        """Wrap externally owned packed buffers without copying.

        This is the *view* construction path used by the shared-memory
        snapshot plane (:mod:`repro.ring.snapshot`): ``words_ext`` is
        the ``uint64`` payload **plus one zero sentinel word** and
        ``cum64`` the ``int64`` rank directory — exactly the
        :meth:`batch_data` shapes, so the vectorized kernels run
        directly on the caller's buffers (typically views over one
        ``multiprocessing.shared_memory`` segment or an ``mmap``-ed
        file).  The Python-int mirrors that back the scalar hot paths
        are materialised lazily on first scalar access, so a worker
        that only runs the batched kernels never pays for (or
        duplicates) them.

        The buffers must be treated as immutable; nothing is validated
        beyond the length arithmetic.
        """
        if len(words_ext) != len(cum64):
            raise InvariantViolation(
                "words_ext must carry exactly one sentinel word "
                f"({len(words_ext)} words vs {len(cum64)} directory entries)"
            )
        self = cls.__new__(cls)
        self._n = int(n)
        self._words = words_ext[:-1]
        self._cum = cum64
        self._cum64 = cum64
        self._words_ext = words_ext
        # _words_py / _cum_py deliberately left unset: __getattr__
        # materialises them on first scalar-path access.
        return self

    def __getattr__(self, name: str):
        # Only reachable while a slot is still unset (slot descriptors
        # win once assigned): build the scalar-path mirrors lazily for
        # view-constructed bitvectors.
        if name == "_words_py":
            mirror = self._words.tolist()
            self._words_py = mirror
            return mirror
        if name == "_cum_py":
            mirror = self._cum.tolist()
            self._cum_py = mirror
            return mirror
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    @classmethod
    def from_indices(cls, n: int, ones: Iterable[int]) -> "BitVector":
        """Build a length-``n`` bitvector with 1s at the given positions."""
        bit_array = np.zeros(n, dtype=np.uint8)
        positions = np.fromiter(ones, dtype=np.int64)
        if positions.size:
            if positions.min() < 0 or positions.max() >= n:
                raise IndexError("one-position out of range")
            bit_array[positions] = 1
        return cls(bit_array)

    @classmethod
    def zeros(cls, n: int) -> "BitVector":
        """Build an all-zero bitvector of length ``n``."""
        return cls(np.zeros(n, dtype=np.uint8))

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        if not 0 <= i < self._n:
            raise IndexError(f"bit index {i} out of range [0, {self._n})")
        # Index the Python-int mirror: under CPython a list access plus
        # int shift is several times faster than a numpy scalar extract.
        return (self._words_py[i >> 6] >> (i & 63)) & 1

    def __iter__(self) -> Iterator[int]:
        return iter(self.to_array())

    def to_array(self) -> np.ndarray:
        """The bits as a 0/1 ``uint8`` numpy array."""
        return unpack_words(self._words, self._n)

    @property
    def num_ones(self) -> int:
        """Total number of 1-bits."""
        return int(self._cum[-1])

    @property
    def num_zeros(self) -> int:
        """Total number of 0-bits."""
        return self._n - self.num_ones

    # ------------------------------------------------------------------
    # Rank / select
    # ------------------------------------------------------------------

    def rank1(self, i: int) -> int:
        """Number of 1-bits in positions ``[0, i)``; O(1)."""
        if i <= 0:
            return 0
        if i >= self._n:
            return self._cum_py[-1]
        word = i >> 6
        offset = i & 63
        count = self._cum_py[word]
        if offset:
            count += (self._words_py[word] & ((1 << offset) - 1)).bit_count()
        return count

    def batch_data(self) -> tuple[np.ndarray, np.ndarray, int]:
        """``(words_ext, cum64, n)`` for the vectorized rank kernel.

        ``cum64`` is the rank directory widened to ``int64`` (cached on
        first use) so :func:`repro._util.bits.rank1_many_words` gathers
        counts that need no further upcast; ``words_ext`` is the
        payload plus one zero sentinel word (``len == len(cum64)``) so
        the kernel's word gather needs no boundary clamp.
        """
        if self._cum64 is None:
            self._cum64 = self._cum.astype(np.int64)
            self._words_ext = np.concatenate(
                (self._words, np.zeros(1, dtype=np.uint64))
            )
        return self._words_ext, self._cum64, self._n

    def rank1_many(self, positions: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`rank1` over an ``int64`` position array.

        Positions are clamped into ``[0, n]`` like the scalar path.
        One gather + mask + popcount pass; the per-position Python cost
        of the scalar loop is what the batched traversal kernels avoid.
        """
        words, cum64, n = self.batch_data()
        return rank1_many_words(words, cum64, n, positions)

    def rank_pair_many(self, bs: np.ndarray, es: np.ndarray) -> tuple[
            np.ndarray, np.ndarray]:
        """Vectorized rank over range endpoint pairs.

        Equivalent to ``(rank1_many(bs), rank1_many(es))`` but with a
        single kernel invocation over the concatenated endpoints, which
        halves the fixed numpy dispatch overhead per batch — the shape
        every wavelet-descent level needs.
        """
        bs = np.asarray(bs, dtype=np.int64)
        es = np.asarray(es, dtype=np.int64)
        words, cum64, n = self.batch_data()
        both = rank1_many_words(
            words, cum64, n, np.concatenate((bs, es))
        )
        return both[: len(bs)], both[len(bs):]

    def rank0(self, i: int) -> int:
        """Number of 0-bits in positions ``[0, i)``; O(1)."""
        if i <= 0:
            return 0
        if i >= self._n:
            return self.num_zeros
        return i - self.rank1(i)

    def rank(self, bit: int, i: int) -> int:
        """``rank1(i)`` if ``bit`` else ``rank0(i)``."""
        return self.rank1(i) if bit else self.rank0(i)

    def select1(self, j: int) -> int:
        """Position of the ``j``-th 1-bit (0-based); O(log n).

        Raises :class:`IndexError` when fewer than ``j + 1`` ones exist.
        """
        if j < 0 or j >= self.num_ones:
            raise IndexError(f"select1({j}) out of range: {self.num_ones} ones")
        word = int(np.searchsorted(self._cum, j, side="right")) - 1
        remaining = j - self._cum_py[word]
        bits = self._words_py[word]
        return word * WORD_BITS + _select_in_word(bits, remaining)

    def select0(self, j: int) -> int:
        """Position of the ``j``-th 0-bit (0-based); O(log n)."""
        if j < 0 or j >= self.num_zeros:
            raise IndexError(
                f"select0({j}) out of range: {self.num_zeros} zeros"
            )
        # Zero-count prefix per word boundary: w*64 - cum[w], monotone in w.
        cum_py = self._cum_py
        lo, hi = 0, len(self._words)
        while lo < hi:
            mid = (lo + hi) // 2
            zeros_before = mid * WORD_BITS - cum_py[mid]
            if zeros_before <= j:
                lo = mid + 1
            else:
                hi = mid
        word = lo - 1
        remaining = j - (word * WORD_BITS - cum_py[word])
        bits = ~self._words_py[word] & ((1 << WORD_BITS) - 1)
        return word * WORD_BITS + _select_in_word(bits, remaining)

    def select(self, bit: int, j: int) -> int:
        """``select1(j)`` if ``bit`` else ``select0(j)``."""
        return self.select1(j) if bit else self.select0(j)

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------

    def size_in_bits(self) -> int:
        """Bits actually allocated: payload words plus rank directory."""
        return self._words.nbytes * 8 + self._cum.nbytes * 8

    def size_in_bits_model(self) -> int:
        """Space model of an sdsl-style build: ``n`` payload + 25% rank."""
        return self._n + self._n // 4

    def measure(self, name: str = "bitvector"):
        """Space-audit node: payload words and rank directory, separately.

        Counts each numpy buffer exactly once.  A view-constructed
        vector (:meth:`from_packed`) aliases ``_words``/``_cum`` onto
        the caller's ``words_ext``/``cum64`` buffers, so the sentinel
        word is attributed to ``words`` via ``words_ext`` and nothing is
        double counted; a built vector that has materialised its batch
        mirrors reports them as extra ``batch_*`` leaves.  The
        Python-int mirrors are decode caches of the same information
        and are excluded by the library-wide convention.
        """
        from repro.obs.space import SpaceNode

        aliased = self._words_ext is not None and np.shares_memory(
            self._words_ext, self._words
        )
        if aliased:
            # View path: one shared buffer per role, sentinel included.
            children = [
                SpaceNode("words", self._words_ext.nbytes, kind="buffer",
                          detail={"dtype": "uint64", "sentinel_words": 1}),
                SpaceNode("rank_directory", self._cum.nbytes, kind="buffer",
                          detail={"dtype": str(self._cum.dtype)}),
            ]
        else:
            children = [
                SpaceNode("words", self._words.nbytes, kind="buffer",
                          detail={"dtype": "uint64"}),
                SpaceNode("rank_directory", self._cum.nbytes, kind="buffer",
                          detail={"dtype": str(self._cum.dtype)}),
            ]
            if self._words_ext is not None:
                children.append(
                    SpaceNode("batch_words", self._words_ext.nbytes,
                              kind="buffer",
                              detail={"dtype": "uint64",
                                      "note": "lazy batch-kernel payload copy"})
                )
            if self._cum64 is not None and self._cum64 is not self._cum:
                children.append(
                    SpaceNode("batch_rank_directory", self._cum64.nbytes,
                              kind="buffer",
                              detail={"dtype": "int64",
                                      "note": "lazy int64-widened directory"})
                )
        return SpaceNode(name, children=children, kind="bitvector",
                         detail={"n": self._n, "view": aliased})

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Validate the rank directory against a recount (slow)."""
        per_word = popcount_words_cumulative(self._words)
        expected = np.zeros(len(self._words) + 1, dtype=np.uint32)
        np.cumsum(per_word, out=expected[1:])
        if not np.array_equal(expected, self._cum):
            raise InvariantViolation("bitvector rank directory is stale")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = "".join(str(b) for b in self.to_array()[:32])
        suffix = "…" if self._n > 32 else ""
        return f"BitVector(n={self._n}, bits={preview}{suffix})"


def _select_in_word(bits: int, j: int) -> int:
    """Offset of the ``j``-th set bit within a 64-bit word."""
    for _ in range(j):
        bits &= bits - 1  # clear lowest set bit
    if bits == 0:
        raise InvariantViolation("select directory pointed at a short word")
    return (bits & -bits).bit_length() - 1
