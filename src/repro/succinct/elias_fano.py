"""Elias-Fano encoding of monotone integer sequences.

The sdsl ``sd_vector`` the paper's implementation uses for sparse
bitvectors is an Elias-Fano structure; here it encodes the ring's
boundary arrays (``C_o``, ``C_p``, ``C_s``), which are non-decreasing
sequences of ``m + 1`` values in ``[0, n]``.  Space is
``m·(2 + log(n/m))`` bits plus a select directory — typically far below
the 64 bits/entry of a plain array — and random access stays O(1)
amortised through the upper-bits select structure.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import ConstructionError
from repro.succinct.bitvector import BitVector
from repro.succinct.int_array import PackedIntArray


class EliasFano:
    """Random-access Elias-Fano sequence of non-decreasing integers."""

    __slots__ = ("_n", "_universe", "_low_bits", "_lows", "_highs")

    def __init__(self, values: Iterable[int] | Sequence[int]):
        values = list(values)
        self._n = len(values)
        if self._n == 0:
            self._universe = 0
            self._low_bits = 0
            self._lows = PackedIntArray([], width=1)
            self._highs = BitVector([])
            return
        previous = -1
        for v in values:
            if v < previous:
                raise ConstructionError(
                    "EliasFano requires a non-decreasing sequence"
                )
            previous = v
        universe = values[-1] + 1
        self._universe = universe
        low_bits = max(0, (universe // self._n).bit_length() - 1)
        self._low_bits = low_bits
        mask = (1 << low_bits) - 1
        if low_bits:
            self._lows = PackedIntArray(
                [v & mask for v in values], width=low_bits
            )
        else:
            self._lows = PackedIntArray([], width=1)
        # Upper part: unary-encode the gaps of the high halves.
        n_high_slots = (universe >> low_bits) + self._n + 1
        bits = np.zeros(n_high_slots, dtype=np.uint8)
        for i, v in enumerate(values):
            bits[(v >> low_bits) + i] = 1
        self._highs = BitVector(bits)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def get(self, i: int) -> int:
        """The ``i``-th value; O(1) via one select on the upper bits."""
        if not 0 <= i < self._n:
            raise IndexError(f"index {i} out of range [0, {self._n})")
        high = self._highs.select1(i) - i
        if self._low_bits:
            return (high << self._low_bits) | self._lows[i]
        return high

    def __getitem__(self, i: int) -> int:
        if i < 0:
            i += self._n
        return self.get(i)

    def __iter__(self):
        for i in range(self._n):
            yield self.get(i)

    def successor_index(self, value: int) -> int:
        """Smallest ``i`` with ``self[i] >= value`` (``n`` if none).

        Binary search over the random-access view; O(log n).
        """
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self.get(mid) < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def size_in_bits(self) -> int:
        """Actually allocated bits (lows + highs + directories)."""
        return self._lows.size_in_bits() + self._highs.size_in_bits()

    def size_in_bits_model(self) -> int:
        """The textbook EF bound: ``n(2 + log(u/n))`` + 25% select."""
        if self._n == 0:
            return 0
        import math

        per_item = 2 + max(0, math.ceil(
            math.log2(max(1, self._universe / self._n))
        ))
        return int(self._n * per_item * 1.25)

    def measure(self, name: str = "elias_fano"):
        """Space-audit node: packed low halves + upper-bits bitvector."""
        from repro.obs.space import SpaceNode

        return SpaceNode(
            name,
            children=[
                self._lows.measure("lows"),
                self._highs.measure("highs"),
            ],
            kind="elias_fano",
            detail={
                "n": self._n,
                "universe": self._universe,
                "low_bits": self._low_bits,
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EliasFano(n={self._n}, universe={self._universe}, "
            f"low_bits={self._low_bits})"
        )
