"""Succinct data structures: bitvectors, packed arrays and wavelet indexes.

This subpackage is the substrate layer of the reproduction.  It mirrors
the role the sdsl-lite C++ library plays in the paper's implementation:

* :class:`~repro.succinct.bitvector.BitVector` — packed bit array with
  constant-time ``rank`` and logarithmic ``select``;
* :class:`~repro.succinct.int_array.PackedIntArray` — fixed-width packed
  integer array (the "packed form" baseline for space accounting);
* :class:`~repro.succinct.wavelet_tree.WaveletTree` — pointer-based
  wavelet tree (reference implementation for small alphabets);
* :class:`~repro.succinct.wavelet_matrix.WaveletMatrix` — the wavelet
  matrix of Claude, Navarro & Ordóñez, used by the ring for its large
  node/predicate alphabets; exposes the *virtual node* API that the
  Ring-RPQ engine walks with its ``B[v]``/``D[v]`` automaton masks.
"""

from repro.succinct.bitvector import BitVector
from repro.succinct.int_array import PackedIntArray
from repro.succinct.wavelet_matrix import WaveletMatrix, WaveletNode
from repro.succinct.wavelet_tree import WaveletTree

__all__ = [
    "BitVector",
    "PackedIntArray",
    "WaveletMatrix",
    "WaveletNode",
    "WaveletTree",
]
