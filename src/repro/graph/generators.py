"""Synthetic graph generators.

The paper evaluates on a Wikidata dump (958 M edges) that cannot be
shipped or processed at pure-Python speed, so the benchmark harness
substitutes :func:`wikidata_like`: a generator that reproduces the
structural properties that drive RPQ behaviour —

* a heavily skewed (Zipf) predicate distribution: a handful of
  predicates own most edges, the long tail is rare (Wikidata has
  5,419 predicates, with ``P31``/``P279``-style predicates dominating);
* heavy-tailed object in-degree (popular classes/countries);
* dedicated *hierarchy* predicates forming deep forests (the analogue
  of ``subclass of``), so that ``p*``/``p+`` queries traverse long
  chains rather than dying instantly; and
* a couple of *reciprocal* predicate pairs.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConstructionError
from repro.graph.model import Graph, Triple


def random_graph(
    n_nodes: int,
    n_edges: int,
    n_predicates: int,
    seed: int = 0,
) -> Graph:
    """A uniform random labeled multigraph (deduplicated)."""
    if n_nodes < 1 or n_predicates < 1:
        raise ConstructionError("need at least one node and one predicate")
    rng = np.random.default_rng(seed)
    subjects = rng.integers(0, n_nodes, size=n_edges)
    objects = rng.integers(0, n_nodes, size=n_edges)
    predicates = rng.integers(0, n_predicates, size=n_edges)
    triples = {
        (f"n{s}", f"p{p}", f"n{o}")
        for s, p, o in zip(subjects, predicates, objects)
    }
    return Graph(triples)


def chain_graph(length: int, predicate: str = "next") -> Graph:
    """A simple path ``n0 -p-> n1 -p-> ... -p-> n{length}``."""
    return Graph(
        (f"n{i}", predicate, f"n{i + 1}") for i in range(length)
    )


def cycle_graph(length: int, predicate: str = "next") -> Graph:
    """A directed cycle of ``length`` nodes."""
    if length < 1:
        raise ConstructionError("cycle needs at least one node")
    return Graph(
        (f"n{i}", predicate, f"n{(i + 1) % length}") for i in range(length)
    )


def _zipf_weights(k: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, k + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def wikidata_like(
    n_nodes: int = 5_000,
    n_edges: int = 30_000,
    n_predicates: int = 60,
    seed: int = 0,
    zipf_exponent: float = 1.1,
    hierarchy_fraction: float = 0.25,
    reciprocal_pairs: int = 2,
    hub_exponent: float = 3.0,
) -> Graph:
    """A knowledge-graph-shaped synthetic dataset.

    Parameters
    ----------
    n_nodes, n_edges, n_predicates:
        Target sizes (the result may have slightly fewer edges after
        deduplication).
    zipf_exponent:
        Skew of the predicate popularity distribution.
    hierarchy_fraction:
        Fraction of edges assigned to the two hierarchy predicates
        (``p0`` acts like ``subclass of``, ``p1`` like ``instance of``).
    reciprocal_pairs:
        Number of predicate pairs generated as mutual inverses of each
        other (like ``child``/``father``).
    """
    if n_predicates < 4 + 2 * reciprocal_pairs:
        raise ConstructionError(
            "need at least 4 + 2*reciprocal_pairs predicates"
        )
    rng = np.random.default_rng(seed)
    triples: set[Triple] = set()

    node = [f"n{i}" for i in range(n_nodes)]

    # --- hierarchy predicates --------------------------------------
    # p0: a forest over "class" nodes (the top 10% of the id space);
    # every class points to a strictly smaller id, so chains are deep
    # and acyclic like real subsumption hierarchies.
    n_classes = max(2, n_nodes // 10)
    hierarchy_budget = int(n_edges * hierarchy_fraction)
    subclass_budget = hierarchy_budget // 2
    for _ in range(subclass_budget):
        child = int(rng.integers(1, n_classes))
        if rng.random() < 0.6:
            # Chain step: deep subsumption paths like real taxonomies.
            parent = child - 1
        else:
            # Jump toward the root: fan-in on upper classes.
            parent = int(rng.integers(0, child) ** 2 // max(1, child))
        triples.add((node[child], "p0", node[parent]))

    # p1: instance-of edges from entity nodes into the class region,
    # with Zipf-popular classes.
    instance_budget = hierarchy_budget - subclass_budget
    class_weights = _zipf_weights(n_classes, 1.3)
    inst_subjects = rng.integers(n_classes, n_nodes, size=instance_budget)
    inst_objects = rng.choice(n_classes, size=instance_budget, p=class_weights)
    for s, o in zip(inst_subjects, inst_objects):
        triples.add((node[int(s)], "p1", node[int(o)]))

    # --- reciprocal pairs -------------------------------------------
    recip_budget = int(n_edges * 0.05)
    for pair in range(reciprocal_pairs):
        p_fwd = f"p{2 + 2 * pair}"
        p_bwd = f"p{3 + 2 * pair}"
        per_pair = max(1, recip_budget // max(1, reciprocal_pairs))
        ss = rng.integers(0, n_nodes, size=per_pair)
        oo = rng.integers(0, n_nodes, size=per_pair)
        for s, o in zip(ss, oo):
            if s == o:
                continue
            triples.add((node[int(s)], p_fwd, node[int(o)]))
            triples.add((node[int(o)], p_bwd, node[int(s)]))

    # --- long tail ----------------------------------------------------
    first_tail = 2 + 2 * reciprocal_pairs
    n_tail = n_predicates - first_tail
    remaining = max(0, n_edges - len(triples))
    pred_weights = _zipf_weights(n_tail, zipf_exponent)
    tail_preds = rng.choice(n_tail, size=remaining, p=pred_weights)
    subjects = rng.integers(0, n_nodes, size=remaining)
    # Objects follow a heavy-tailed popularity: raising a uniform draw
    # to ``hub_exponent`` concentrates mass on low ids, producing the
    # high-in-degree hub entities (countries, classes, "human") that
    # dominate real knowledge graphs and that RPQ traversals flow
    # through.  Larger exponents mean heavier hubs.
    objects = (
        rng.random(size=remaining) ** hub_exponent * n_nodes
    ).astype(np.int64)
    objects = np.minimum(objects, n_nodes - 1)
    for s, p, o in zip(subjects, tail_preds, objects):
        if s == o:
            continue
        triples.add((node[int(s)], f"p{first_tail + int(p)}", node[int(o)]))

    return Graph(triples)
