"""Reading and writing graphs as whitespace-separated triple files.

The format is a pragmatic subset of N-Triples: one edge per line,
``subject predicate object``, tokens separated by whitespace.  Tokens
may be bare words or ``<...>`` IRIs (angle brackets are stripped).
Lines that are empty or start with ``#`` are ignored.
"""

from __future__ import annotations

import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import ConstructionError
from repro.graph.model import Graph, Triple


def _clean_token(token: str) -> str:
    if token.startswith("<") and token.endswith(">"):
        return token[1:-1]
    return token


def parse_triples(lines: Iterable[str]) -> Iterator[Triple]:
    """Parse triples from an iterable of text lines.

    Raises :class:`~repro.errors.ConstructionError` on malformed lines.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.endswith(" ."):
            line = line[:-2]
        parts = line.split()
        if len(parts) != 3:
            raise ConstructionError(
                f"line {lineno}: expected 3 tokens, got {len(parts)}: {raw!r}"
            )
        s, p, o = (_clean_token(t) for t in parts)
        yield (s, p, o)


def load_graph(path: str | Path,
               symmetric_predicates: Iterable[str] = ()) -> Graph:
    """Load a graph from a triple file."""
    with open(path, encoding="utf-8") as handle:
        return Graph(parse_triples(handle), symmetric_predicates)


def loads_graph(text: str,
                symmetric_predicates: Iterable[str] = ()) -> Graph:
    """Load a graph from a triple string (tests / docstrings)."""
    return Graph(parse_triples(io.StringIO(text)), symmetric_predicates)


def save_graph(graph: Graph, path: str | Path) -> None:
    """Write a graph as one ``s p o`` line per edge."""
    with open(path, "w", encoding="utf-8") as handle:
        for s, p, o in graph:
            handle.write(f"{s} {p} {o}\n")


def dumps_graph(graph: Graph) -> str:
    """Serialise a graph to the triple-line format."""
    return "".join(f"{s} {p} {o}\n" for s, p, o in graph)
