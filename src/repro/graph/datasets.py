"""Built-in example datasets.

:func:`santiago_transport` reconstructs the running example of the
paper (Fig. 1): five stations of the Santiago transport network with
three bidirectional metro lines and a directed bus loop.  The edge set
is reverse-engineered from the paper's Fig. 3 ring (16 completed
triples) and the Fig. 6 traversal trace, and the tests in
``tests/test_paper_examples.py`` assert that the ring built on it
matches the paper's published arrays position by position.
"""

from __future__ import annotations

from repro.graph.model import Graph

#: Node order used by the paper's Fig. 3 (ids 1..5 there, 0..4 here).
SANTIAGO_NODE_ORDER = ("SA", "UCh", "LH", "BA", "Baq")

#: Predicate order used by the paper's Fig. 3 (l1, l2, l5, bus, ^bus).
SANTIAGO_PREDICATE_ORDER = ("l1", "l2", "l5", "bus", "^bus")

#: Full station names for presentation purposes.
SANTIAGO_STATION_NAMES = {
    "SA": "Santa Ana",
    "UCh": "Universidad de Chile",
    "LH": "Los Héroes",
    "BA": "Bellas Artes",
    "Baq": "Baquedano",
}


def santiago_transport() -> Graph:
    """The paper's Fig. 1 graph.

    Metro lines (``l1``, ``l2``, ``l5``) are symmetric: both directions
    are stored explicitly under the same label.  Bus edges are directed;
    completion will add their ``^bus`` twins, yielding the 16 triples of
    Fig. 3.
    """
    metro = [
        # Line 1: Los Héroes — U. de Chile — Baquedano
        ("LH", "l1", "UCh"),
        ("UCh", "l1", "LH"),
        ("UCh", "l1", "Baq"),
        ("Baq", "l1", "UCh"),
        # Line 2: Los Héroes — Santa Ana
        ("LH", "l2", "SA"),
        ("SA", "l2", "LH"),
        # Line 5: Santa Ana — Bellas Artes — Baquedano
        ("SA", "l5", "BA"),
        ("BA", "l5", "SA"),
        ("BA", "l5", "Baq"),
        ("Baq", "l5", "BA"),
    ]
    bus = [
        ("BA", "bus", "SA"),
        ("SA", "bus", "UCh"),
        ("UCh", "bus", "BA"),
    ]
    return Graph(metro + bus, symmetric_predicates=("l1", "l2", "l5"))
