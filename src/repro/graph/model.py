"""Directed edge-labeled graph model.

A graph is a finite set of triples ``(subject, predicate, object)``
over hashable labels (normally strings); see §3.1 of the paper.  The
*completion* :math:`G^{\\leftrightarrow}` adds, for every edge
``(s, p, o)``, the reversed edge ``(o, ^p, s)`` where ``^p`` is the
inverse label of ``p``.  Inverse labels are spelled with a ``^``
prefix, and ``^^p`` normalises back to ``p``.

The classes here hold the *string-labeled* view used by applications
and the baselines; the ring operates on the integer-encoded view
produced by :class:`repro.ring.dictionary.Dictionary`.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator

Triple = tuple[str, str, str]

INVERSE_PREFIX = "^"


def inverse_label(predicate: str) -> str:
    """The inverse of a predicate label: ``p -> ^p`` and ``^p -> p``."""
    if predicate.startswith(INVERSE_PREFIX):
        return predicate[len(INVERSE_PREFIX):]
    return INVERSE_PREFIX + predicate


def is_inverse_label(predicate: str) -> bool:
    """True when the label is an inverse (``^``-prefixed) predicate."""
    return predicate.startswith(INVERSE_PREFIX)


class Graph:
    """An immutable set of labeled edges with adjacency helpers.

    Parameters
    ----------
    triples:
        Iterable of ``(subject, predicate, object)`` tuples.  Duplicates
        are removed; iteration order is deterministic (sorted).
    symmetric_predicates:
        Labels whose edges mean the same thing in both directions (like
        the metro lines of the paper's Fig. 1).  Completion does not
        invent ``^p`` labels for these; it adds the reversed edge under
        the *same* label instead.
    """

    def __init__(
        self,
        triples: Iterable[Triple] = (),
        symmetric_predicates: Iterable[str] = (),
    ):
        self._triples: tuple[Triple, ...] = tuple(sorted(set(triples)))
        self.symmetric_predicates = frozenset(symmetric_predicates)
        self._out: dict[str, list[tuple[str, str]]] | None = None
        self._in: dict[str, list[tuple[str, str]]] | None = None

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------

    @property
    def triples(self) -> tuple[Triple, ...]:
        """All edges, deterministically ordered."""
        return self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triple_set()

    def _triple_set(self) -> frozenset[Triple]:
        if not hasattr(self, "_cached_set"):
            self._cached_set = frozenset(self._triples)
        return self._cached_set

    @property
    def nodes(self) -> list[str]:
        """Sorted list of all subjects and objects."""
        seen = {s for s, _, _ in self._triples}
        seen.update(o for _, _, o in self._triples)
        return sorted(seen)

    @property
    def predicates(self) -> list[str]:
        """Sorted list of all edge labels."""
        return sorted({p for _, p, _ in self._triples})

    # ------------------------------------------------------------------
    # Adjacency (built lazily, cached)
    # ------------------------------------------------------------------

    def out_edges(self, node: str) -> list[tuple[str, str]]:
        """Outgoing ``(predicate, object)`` pairs of ``node``."""
        if self._out is None:
            out = defaultdict(list)
            for s, p, o in self._triples:
                out[s].append((p, o))
            self._out = dict(out)
        return self._out.get(node, [])

    def in_edges(self, node: str) -> list[tuple[str, str]]:
        """Incoming ``(predicate, subject)`` pairs of ``node``."""
        if self._in is None:
            incoming = defaultdict(list)
            for s, p, o in self._triples:
                incoming[o].append((p, s))
            self._in = dict(incoming)
        return self._in.get(node, [])

    def edges_with_predicate(self, predicate: str) -> list[tuple[str, str]]:
        """All ``(subject, object)`` pairs connected by ``predicate``."""
        return [(s, o) for s, p, o in self._triples if p == predicate]

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------

    def completion(self) -> "Graph":
        """The two-way graph :math:`G^{\\leftrightarrow}`.

        Every edge ``(s, p, o)`` is joined by ``(o, ^p, s)`` — except for
        symmetric predicates, which gain ``(o, p, s)`` under the same
        label (matching the paper's Fig. 3, where the metro lines are
        stored bidirectionally and only ``bus`` grows a ``^bus`` twin).
        """
        completed: set[Triple] = set(self._triples)
        for s, p, o in self._triples:
            if p in self.symmetric_predicates:
                completed.add((o, p, s))
            else:
                completed.add((o, inverse_label(p), s))
        return Graph(completed, self.symmetric_predicates)

    def is_completed(self) -> bool:
        """True when the graph already equals its own completion."""
        return set(self.completion()) == set(self._triples)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(|edges|={len(self._triples)}, "
            f"|nodes|={len(self.nodes)}, |preds|={len(self.predicates)})"
        )
