"""Labeled-graph model, dataset loaders and synthetic generators."""

from repro.graph.datasets import santiago_transport
from repro.graph.generators import random_graph, wikidata_like
from repro.graph.model import Graph, inverse_label, is_inverse_label

__all__ = [
    "Graph",
    "inverse_label",
    "is_inverse_label",
    "random_graph",
    "santiago_transport",
    "wikidata_like",
]
