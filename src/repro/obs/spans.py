"""Hierarchical spans: a low-overhead timing tree for query execution.

Phase timers (PR 1) answer "how long did ``predicates_from_objects``
take in total?" — but not "which wave of which anchored sub-run was
slow, and how many ring steps did it issue?".  Spans answer that: each
is a named interval with a parent link and free-form attributes, and a
finished :class:`SpanStack` is a forest that can be pretty-printed or
exported as Chrome ``chrome://tracing`` / Perfetto trace-event JSON.

Design constraints, in order:

1. **Zero cost when off.**  The engine hot paths hoist
   ``spans = obs.spans if obs.enabled else None`` once per run and test
   a local against ``None``; ``NullMetrics.spans`` is ``None`` so the
   default path never allocates or calls anything here.
2. **Cheap when on.**  ``start``/``end`` are a handful of attribute
   writes and one ``perf_counter`` call each; no dict allocation unless
   the caller attaches attributes.
3. **Bounded.**  At most ``capacity`` spans are retained; past that,
   new spans are timed but dropped on ``end`` (``dropped`` counts
   them), so a pathological query cannot exhaust memory.
4. **Robust to exceptions.**  ``end(span)`` closes any still-open
   descendants first (a timeout raised mid-wave must not corrupt the
   stack for the enclosing phase span).
"""

from __future__ import annotations

import json
from time import perf_counter


class Span:
    """One named interval in the execution tree."""

    __slots__ = ("sid", "name", "parent", "depth", "t0", "t1", "attrs")

    def __init__(self, sid: int, name: str, parent: "Span | None",
                 depth: int, t0: float):
        self.sid = sid
        self.name = name
        self.parent = parent
        self.depth = depth
        self.t0 = t0
        self.t1 = t0
        self.attrs: dict | None = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def set(self, **attrs) -> None:
        """Attach attributes (counters, sizes) to this span."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, depth={self.depth}, "
                f"dur={self.duration * 1e3:.3f}ms)")


class SpanStack:
    """Collects spans for one query (or one batch of queries).

    Spans are recorded in *end* order internally but reported in
    *start* order, which is also valid Chrome-trace order.  The stack
    is not thread-safe — like :class:`~repro.obs.metrics.Metrics`, use
    one per thread.
    """

    __slots__ = ("capacity", "spans", "dropped", "_open", "_next_sid")

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0
        self._open: list[Span] = []
        self._next_sid = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def start(self, name: str) -> Span:
        """Open a span as a child of the innermost open span."""
        open_spans = self._open
        parent = open_spans[-1] if open_spans else None
        sid = self._next_sid
        self._next_sid = sid + 1
        span = Span(sid, name, parent,
                    parent.depth + 1 if parent is not None else 0,
                    perf_counter())
        open_spans.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` (and any descendants left open by an exception)."""
        now = perf_counter()
        open_spans = self._open
        # Unwind to (and including) `span`; leaked children get closed
        # with the same end time so the tree stays well-formed.
        while open_spans:
            top = open_spans.pop()
            top.t1 = now
            if len(self.spans) < self.capacity:
                self.spans.append(top)
            else:
                self.dropped += 1
            if top is span:
                return
        # `span` was not on the stack (already closed): record the
        # repeated end defensively rather than raising in a hot path.
        self.dropped += 1

    def span(self, name: str):
        """Context manager form of :meth:`start`/:meth:`end`."""
        return _SpanContext(self, name)

    def absorb(self, other: "SpanStack") -> None:
        """Fold another stack's *completed* spans into this one.

        This is how per-worker registries surface their spans in a
        service-wide registry: sids are re-numbered into this stack's
        sequence (so :meth:`ordered` stays one consistent order across
        many absorbed stacks), parent links travel with each subtree,
        and the capacity bound keeps applying.  The other stack should
        be reset afterwards — its spans now belong to this one.
        """
        for span in other.ordered():
            span.sid = self._next_sid
            self._next_sid += 1
            if len(self.spans) < self.capacity:
                self.spans.append(span)
            else:
                self.dropped += 1
        self.dropped += other.dropped

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def ordered(self) -> list[Span]:
        """All completed spans in start order."""
        return sorted(self.spans, key=lambda s: s.sid)

    def max_depth(self) -> int:
        """Depth of the deepest completed span (root = 0); -1 if empty."""
        if not self.spans:
            return -1
        return max(span.depth for span in self.spans)

    def tree(self, root: Span | None = None) -> list[dict]:
        """The span forest as nested dicts (JSON-ready).

        With ``root``, only that span and its descendants are included
        — the slow-query log uses this to capture one query's subtree
        out of a long-lived stack.
        """
        nodes: dict[int, dict] = {}
        roots: list[dict] = []
        for span in self.ordered():
            if root is not None:
                probe = span
                while probe is not None and probe is not root:
                    probe = probe.parent
                if probe is None:
                    continue
            node = {
                "name": span.name,
                "start": span.t0,
                "duration": span.duration,
                "attrs": dict(span.attrs) if span.attrs else {},
                "children": [],
            }
            nodes[span.sid] = node
            parent = span.parent
            if parent is not None and parent.sid in nodes:
                nodes[parent.sid]["children"].append(node)
            else:
                roots.append(node)
        return roots

    def format_tree(self, min_duration: float = 0.0) -> str:
        """Indented text rendering of the span forest."""
        lines: list[str] = []
        for span in self.ordered():
            if span.duration < min_duration and span.depth > 0:
                continue
            attrs = ""
            if span.attrs:
                attrs = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(span.attrs.items())
                )
            lines.append(
                f"{'  ' * span.depth}{span.name:<24s} "
                f"{span.duration * 1e3:9.3f} ms{attrs}"
            )
        if self.dropped:
            lines.append(f"... ({self.dropped} spans dropped at capacity "
                         f"{self.capacity})")
        return "\n".join(lines)

    def to_chrome_trace(self) -> dict:
        """Trace-event JSON loadable in chrome://tracing or Perfetto.

        Spans become "X" (complete) events with microsecond timestamps
        relative to the earliest span, all on one pid/tid so the nesting
        is reconstructed from the time intervals.
        """
        ordered = self.ordered()
        base = ordered[0].t0 if ordered else 0.0
        events = []
        for span in ordered:
            event = {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": (span.t0 - base) * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": 0,
            }
            if span.attrs:
                event["args"] = {
                    key: value for key, value in span.attrs.items()
                }
            events.append(event)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> None:
        """Dump :meth:`to_chrome_trace` as JSON to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=1)
            handle.write("\n")

    def reset(self) -> None:
        self.spans.clear()
        self._open.clear()
        self.dropped = 0
        self._next_sid = 0


class _SpanContext:
    __slots__ = ("_stack", "_name", "_span")

    def __init__(self, stack: SpanStack, name: str):
        self._stack = stack
        self._name = name
        self._span = None

    def __enter__(self) -> Span:
        self._span = self._stack.start(self._name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stack.end(self._span)
