"""Space-audit plane: bit-level memory accounting for every storage tier.

The source paper's headline claim is *joint* time- and space-efficiency,
yet PRs 1/3/5/8 instrumented only the time axis.  This module closes the
gap: every storage structure grows a ``measure()`` hook returning a
:class:`SpaceNode`, and the helpers here assemble those nodes into typed
trees covering the built ring, the sparse-matrix backend, snapshot
segments (manifest layout and live ``/dev/shm`` segments), and the
serving tier's mutable state (result cache, flight ring, histograms).

Design constraints:

* **No repro imports at module scope.**  ``repro.obs.__init__`` imports
  ``instrument`` which imports ``repro.succinct.bitvector``; the storage
  classes in turn import ``repro.obs.metrics``.  To stay cycle-free this
  module depends only on the stdlib and numpy, and storage classes do
  ``from repro.obs.space import SpaceNode`` *inside* their ``measure()``
  methods.
* **Exact-sum invariant by construction.**  A branch node's byte count
  is the sum of its children; passing an inconsistent explicit total
  raises :class:`~repro.errors.InvariantViolation`.  The acceptance
  criterion "the ring total agrees with the sum of its children exactly"
  is therefore structural, not incidental.
* **Mirror convention.**  Python-int mirrors (``BitVector._words_py``,
  ``BoundaryArray._py``, ...) are decode caches of the numpy payload and
  are excluded from the audit, matching the long-standing convention in
  ``size_in_bits()`` docstrings.  Aliased buffers (a view-attached
  ``BitVector`` whose ``_words``/``_cum64`` share one snapshot buffer)
  are counted once.
"""

from __future__ import annotations

import sys
from collections import OrderedDict, deque
from typing import Any, Callable, Iterator

import numpy as np

from repro.errors import InvariantViolation

__all__ = [
    "SpaceNode",
    "deep_getsizeof",
    "audit_index",
    "audit_manifest",
    "audit_metrics",
    "audit_service",
    "publish_space_gauges",
    "SPACE_GAUGE_FAMILY",
]

#: Gauge family used for the per-component space gauges on /metrics.
#: Rendered by ``prometheus_text`` as ``repro_space_bytes{component="..."}``.
SPACE_GAUGE_FAMILY = "space.bytes"


class SpaceNode:
    """One component in a space-audit tree.

    A *leaf* carries an explicit byte count; a *branch* derives its
    count from its children.  Supplying both an explicit ``nbytes`` and
    children is allowed only when they agree exactly — the audit's core
    invariant is that every total telescopes to its leaves.
    """

    __slots__ = ("name", "kind", "nbytes", "children", "detail")

    def __init__(
        self,
        name: str,
        nbytes: "int | None" = None,
        children: "tuple[SpaceNode, ...] | list[SpaceNode]" = (),
        kind: str = "component",
        detail: "dict[str, Any] | None" = None,
    ) -> None:
        self.name = str(name)
        self.kind = kind
        self.children: "list[SpaceNode]" = list(children)
        child_sum = sum(c.nbytes for c in self.children)
        if nbytes is None:
            if not self.children:
                raise InvariantViolation(
                    f"leaf SpaceNode {name!r} needs an explicit byte count"
                )
            nbytes = child_sum
        else:
            nbytes = int(nbytes)
            if self.children and nbytes != child_sum:
                raise InvariantViolation(
                    f"SpaceNode {name!r}: explicit total {nbytes} != "
                    f"sum of children {child_sum}"
                )
        if nbytes < 0:
            raise InvariantViolation(f"SpaceNode {name!r}: negative size {nbytes}")
        self.nbytes = int(nbytes)
        self.detail: "dict[str, Any]" = dict(detail) if detail else {}

    # -- derived quantities -------------------------------------------------

    def bits_per_triple(self, n_triples: int) -> float:
        """Bits used per triple for a graph of ``n_triples`` triples."""
        return self.nbytes * 8 / max(1, int(n_triples))

    def check(self) -> None:
        """Re-verify the exact-sum invariant over the whole subtree."""
        for _, node in self.iter_nodes():
            if node.children:
                total = sum(c.nbytes for c in node.children)
                if total != node.nbytes:
                    raise InvariantViolation(
                        f"SpaceNode {node.name!r}: total {node.nbytes} != "
                        f"sum of children {total}"
                    )

    # -- traversal ----------------------------------------------------------

    def iter_nodes(
        self, prefix: str = "", sep: str = "."
    ) -> "Iterator[tuple[str, SpaceNode]]":
        """Yield ``(dotted_path, node)`` pairs in pre-order."""
        path = f"{prefix}{sep}{self.name}" if prefix else self.name
        yield path, self
        for child in self.children:
            yield from child.iter_nodes(path, sep)

    def find(self, path: str, sep: str = ".") -> "SpaceNode | None":
        """Look up a descendant by dotted path relative to this node.

        ``find("ring.L_p")`` on an index node returns the L_p column;
        ``find(self.name)`` returns the node itself.
        """
        parts = path.split(sep)
        if not parts or parts[0] != self.name:
            return None
        node: "SpaceNode | None" = self
        for part in parts[1:]:
            assert node is not None
            node = next((c for c in node.children if c.name == part), None)
            if node is None:
                return None
        return node

    # -- serialisation ------------------------------------------------------

    def to_dict(
        self,
        n_triples: "int | None" = None,
        _parent_bytes: "int | None" = None,
    ) -> "dict[str, Any]":
        """JSON-friendly tree with bytes, share-of-parent and bits/triple."""
        out: "dict[str, Any]" = {
            "name": self.name,
            "kind": self.kind,
            "bytes": self.nbytes,
        }
        if _parent_bytes:
            out["share_of_parent"] = self.nbytes / _parent_bytes
        if n_triples:
            out["bits_per_triple"] = self.bits_per_triple(n_triples)
        if self.detail:
            out["detail"] = dict(self.detail)
        if self.children:
            out["children"] = [
                c.to_dict(n_triples, self.nbytes) for c in self.children
            ]
        return out

    def format_tree(self, n_triples: "int | None" = None, indent: int = 2) -> str:
        """Human-readable aligned tree for the ``repro space`` CLI."""
        rows: "list[tuple[str, str, str, str]]" = []

        def walk(node: "SpaceNode", depth: int, parent: "int | None") -> None:
            share = "" if not parent else f"{100.0 * node.nbytes / parent:5.1f}%"
            bpt = (
                ""
                if not n_triples
                else f"{node.bits_per_triple(n_triples):10.2f}"
            )
            rows.append(
                (" " * (indent * depth) + node.name, f"{node.nbytes:,}", share, bpt)
            )
            for child in node.children:
                walk(child, depth + 1, node.nbytes)

        walk(self, 0, None)
        name_w = max(len(r[0]) for r in rows)
        byte_w = max(len(r[1]) for r in rows)
        header = f"{'component':<{name_w}}  {'bytes':>{byte_w}}  {'share':>6}"
        if n_triples:
            header += f"  {'bits/triple':>11}"
        lines = [header]
        for name, nbytes, share, bpt in rows:
            line = f"{name:<{name_w}}  {nbytes:>{byte_w}}  {share:>6}"
            if n_triples:
                line += f"  {bpt:>11}"
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpaceNode({self.name!r}, nbytes={self.nbytes}, "
            f"children={len(self.children)})"
        )


# ---------------------------------------------------------------------------
# Deep Python-object sizing (serving-tier mutable state)
# ---------------------------------------------------------------------------


def deep_getsizeof(obj: Any, _seen: "set[int] | None" = None) -> int:
    """Recursive ``sys.getsizeof`` over containers, counting each object once.

    Used for heap-resident serving state (cache entries, flight records,
    histogram buckets) where numpy's ``nbytes`` does not apply.  Numpy
    arrays count their payload only when they own it, so views over a
    shared buffer are not double counted.
    """
    if _seen is None:
        _seen = set()
    oid = id(obj)
    if oid in _seen:
        return 0
    _seen.add(oid)
    if isinstance(obj, np.ndarray):
        size = sys.getsizeof(obj)
        if obj.base is None and size < obj.nbytes:
            size += obj.nbytes
        return size
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_getsizeof(key, _seen)
            size += deep_getsizeof(value, _seen)
    elif isinstance(obj, (list, tuple, set, frozenset, deque, OrderedDict)):
        for item in obj:
            size += deep_getsizeof(item, _seen)
    elif hasattr(obj, "__dict__"):
        size += deep_getsizeof(vars(obj), _seen)
    return size


# ---------------------------------------------------------------------------
# Tree builders
# ---------------------------------------------------------------------------


def audit_index(index: Any, name: str = "index") -> SpaceNode:
    """Audit a :class:`~repro.ring.builder.RingIndex` (ring + dictionary +
    any already-compiled sparse backend).  Thin wrapper over the index's
    own ``measure()`` hook."""
    return index.measure(name)


def audit_manifest(manifest: "dict[str, Any]", name: str = "snapshot") -> SpaceNode:
    """Audit a ``ring-snapshot/v1`` manifest's segment layout.

    Sums every buffer from its dtype and shape, grouped by top-level
    component (``lp``, ``ls``, ``c_o``, ``mat``, ...), and accounts the
    64-byte alignment padding explicitly so the tree's total equals the
    manifest's ``total_bytes`` *exactly* — the same number a live
    ``/dev/shm`` segment of this snapshot occupies (modulo the kernel's
    final page rounding).
    """
    groups: "OrderedDict[str, list[SpaceNode]]" = OrderedDict()
    used = 0
    for buf_name, meta in manifest["buffers"].items():
        shape = meta["shape"]
        count = 1
        for dim in shape:
            count *= int(dim)
        nbytes = int(np.dtype(meta["dtype"]).itemsize) * count
        used += nbytes
        top = buf_name.split(".", 1)[0]
        groups.setdefault(top, []).append(
            SpaceNode(buf_name.split(".", 1)[-1] if "." in buf_name else "data",
                      nbytes, kind="buffer",
                      detail={"dtype": meta["dtype"], "shape": list(shape)})
        )
    children = [
        SpaceNode(top, children=bufs, kind="buffer_group")
        for top, bufs in groups.items()
    ]
    total = int(manifest["total_bytes"])
    padding = total - used
    if padding < 0:
        raise InvariantViolation(
            f"snapshot manifest total_bytes {total} < summed buffers {used}"
        )
    children.append(
        SpaceNode("padding", padding, kind="padding",
                  detail={"alignment": 64, "buffers": len(manifest["buffers"])})
    )
    return SpaceNode(
        name,
        children=children,
        kind="snapshot_segment",
        detail={
            "format": manifest.get("format"),
            "n": manifest.get("n"),
            "buffers": len(manifest["buffers"]),
        },
    )


def audit_metrics(metrics: Any, name: str = "metrics") -> SpaceNode:
    """Audit a :class:`~repro.obs.metrics.Metrics` registry's heap state:
    sparse histogram buckets plus the counter/gauge dictionaries."""
    from repro.obs.histogram import LogHistogram

    hist_children = [
        hist.measure(hist_name)
        for hist_name, hist in sorted(metrics.histograms.items())
        if isinstance(hist, LogHistogram)
    ]
    children = []
    if hist_children:
        children.append(SpaceNode("histograms", children=hist_children))
    children.append(
        SpaceNode("counters", deep_getsizeof(metrics.counters), kind="dict")
    )
    children.append(SpaceNode("gauges", deep_getsizeof(metrics.gauges), kind="dict"))
    return SpaceNode(name, children=children, kind="metrics")


def audit_service(service: Any, name: str = "service") -> SpaceNode:
    """Audit a serving tier: the index it serves plus its mutable state
    (result cache, flight recorder, metrics registry, and — for the
    process tier — the shared-memory snapshot segment)."""
    children = [audit_index(service.index, "index")]
    cache = getattr(service, "cache", None)
    if cache is not None and hasattr(cache, "measure"):
        children.append(cache.measure("cache"))
    flight = getattr(service, "flight", None)
    if flight is not None and hasattr(flight, "measure"):
        children.append(flight.measure("flight"))
    metrics = getattr(service, "metrics", None)
    if metrics is not None and getattr(metrics, "enabled", False):
        children.append(audit_metrics(metrics, "metrics"))
    shared = getattr(service, "_shared", None)
    if shared is not None and hasattr(shared, "measure"):
        children.append(shared.measure("shm_segment"))
    return SpaceNode(name, children=children, kind="service")


# ---------------------------------------------------------------------------
# Gauge publication
# ---------------------------------------------------------------------------


def publish_space_gauges(
    metrics: Any,
    node: SpaceNode,
    family: str = SPACE_GAUGE_FAMILY,
    max_depth: int = 2,
    prefix: str = "",
) -> "dict[str, int]":
    """Publish a space tree as labelled gauges.

    Each node down to ``max_depth`` becomes one sample of the ``family``
    gauge with a ``component`` label holding its dotted path, e.g.
    ``space.bytes{component="index.ring"}``.  Callers that hold a lock
    around the metrics registry should hold it here too.  Returns the
    published ``{component: bytes}`` mapping (useful for tests).
    """
    from repro.obs.export import label_key

    published: "dict[str, int]" = {}

    def walk(n: SpaceNode, path: str, depth: int) -> None:
        component = f"{path}.{n.name}" if path else n.name
        published[component] = n.nbytes
        metrics.set_gauge(label_key(family, component=component), float(n.nbytes))
        if depth < max_depth:
            for child in n.children:
                walk(child, component, depth + 1)

    root = prefix or ""
    walk(node, root, 0)
    return published


def space_report(
    service: Any,
    n_triples: "int | None" = None,
    audit: "Callable[[Any], SpaceNode] | None" = None,
) -> "dict[str, Any]":
    """Build the ``/debug/space`` payload for a live service."""
    node = (audit or audit_service)(service)
    if n_triples is None:
        index = getattr(service, "index", None)
        ring = getattr(index, "ring", None)
        if ring is not None:
            n_triples = len(ring)
    payload: "dict[str, Any]" = {"tree": node.to_dict(n_triples)}
    if n_triples:
        payload["n_triples"] = int(n_triples)
    return payload
