"""The metrics registry: counters, phase timers and trace events.

The paper's cost arguments are stated in *index operations* — wavelet
nodes visited, rank calls, backward-search steps — not in wall-clock
time (§4.5; likewise the ring paper, arXiv:2111.04556, accounts cost
per succinct-structure operation).  :class:`Metrics` makes that
accounting observable: a flat named-counter table, per-phase elapsed
seconds, and an optional *bounded* ring buffer of trace events plus
callback hooks for streaming consumers.

Everything defaults to :data:`NULL_METRICS`, a no-op sink whose
``enabled`` flag is ``False``; hot paths hoist that flag into a local
and skip all metric work, so the disabled cost is one attribute load
per coarse-grained call, never per elementary operation.  The succinct
structures are not instrumented at all by default — see
:mod:`repro.obs.instrument` for the opt-in class-swap scheme.
"""

from __future__ import annotations

import json
import time
from collections import deque
from collections.abc import Callable, Iterator

from repro.obs.histogram import DEFAULT_GROWTH, LogHistogram
from repro.obs.spans import SpanStack


class TraceEvent:
    """One timestamped trace record.

    ``t`` is a :func:`time.monotonic` timestamp (comparable within one
    process only), ``kind`` a short event name (see
    ``docs/observability.md`` for the emitted vocabulary) and ``data``
    a small dict of event fields.
    """

    __slots__ = ("t", "kind", "data")

    def __init__(self, t: float, kind: str, data: dict):
        self.t = t
        self.kind = kind
        self.data = data

    def to_dict(self) -> dict:
        """JSON-ready representation."""
        return {"t": self.t, "kind": self.kind, **self.data}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.kind!r}, t={self.t:.6f}, {self.data!r})"


class _PhaseTimer:
    """Context manager accumulating elapsed seconds into one phase."""

    __slots__ = ("_metrics", "_name", "_start")

    def __init__(self, metrics: "Metrics", name: str):
        self._metrics = metrics
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.monotonic()
        return self

    def __exit__(self, *exc) -> None:
        self._metrics.add_phase(self._name, time.monotonic() - self._start)


class Metrics:
    """A mutable registry of counters, phase timers and trace events.

    Parameters
    ----------
    trace_capacity:
        Maximum number of retained trace events.  ``0`` (the default)
        disables the buffer entirely; a positive value keeps the *last*
        ``trace_capacity`` events (ring-buffer semantics), bounding the
        memory of even a pathological query.
    span_capacity:
        Maximum number of retained hierarchical spans
        (:class:`repro.obs.spans.SpanStack`).  ``0`` (the default)
        disables span collection — :attr:`spans` stays ``None`` and the
        guarded engine paths skip all span work.

    Notes
    -----
    One ``Metrics`` instance is not thread-safe; give each evaluation
    thread its own registry and merge afterwards with :meth:`merge`.
    """

    #: Hot paths test this flag (hoisted into a local) before doing any
    #: metric work; the null sink sets it to False.
    enabled = True

    __slots__ = ("counters", "gauges", "phase_seconds", "histograms",
                 "spans", "trace", "_hooks")

    def __init__(self, trace_capacity: int = 0, span_capacity: int = 0):
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.phase_seconds: dict[str, float] = {}
        self.histograms: dict[str, LogHistogram] = {}
        self.spans: SpanStack | None = (
            SpanStack(span_capacity) if span_capacity > 0 else None
        )
        self.trace: deque[TraceEvent] | None = (
            deque(maxlen=trace_capacity) if trace_capacity > 0 else None
        )
        self._hooks: list[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def count(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its current ``value``.

        Gauges are point-in-time levels (queue depth, in-flight
        queries, cache size), overwritten rather than accumulated; the
        serving layer refreshes them on every state change.
        """
        self.gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` when never set)."""
        return self.gauges.get(name, default)

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------

    def observe(self, name: str, value: float,
                growth: float = DEFAULT_GROWTH,
                exemplar: "str | None" = None) -> None:
        """Record ``value`` into histogram ``name`` (created lazily).

        ``exemplar`` (a query id) is retained as the landing bucket's
        last exemplar and rendered by the Prometheus exporter, so a
        tail bucket links to a concrete query.
        """
        histograms = self.histograms
        hist = histograms.get(name)
        if hist is None:
            hist = histograms[name] = LogHistogram(growth)
        hist.observe(value, exemplar)

    def histogram(self, name: str) -> LogHistogram | None:
        """Histogram ``name``, or ``None`` when nothing was observed."""
        return self.histograms.get(name)

    # ------------------------------------------------------------------
    # Phase timers
    # ------------------------------------------------------------------

    def add_phase(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into phase ``name``."""
        phases = self.phase_seconds
        phases[name] = phases.get(name, 0.0) + seconds

    def phase(self, name: str) -> _PhaseTimer:
        """Context manager timing a block into phase ``name``::

            with metrics.phase("build"):
                ...
        """
        return _PhaseTimer(self, name)

    # ------------------------------------------------------------------
    # Trace events
    # ------------------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when trace events have at least one consumer."""
        return self.trace is not None or bool(self._hooks)

    def record(self, kind: str, **data) -> None:
        """Emit one trace event to the ring buffer and all hooks.

        A no-op (beyond building nothing) when :attr:`tracing` is
        False, but callers on hot paths should check ``tracing``
        themselves to skip the keyword packing too.
        """
        if self.trace is None and not self._hooks:
            return
        event = TraceEvent(time.monotonic(), kind, data)
        if self.trace is not None:
            self.trace.append(event)
        for hook in self._hooks:
            hook(event)

    def add_hook(self, hook: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked synchronously on every event."""
        self._hooks.append(hook)

    def remove_hook(self, hook: Callable[[TraceEvent], None]) -> None:
        """Unregister a previously added callback."""
        self._hooks.remove(hook)

    def trace_events(self) -> Iterator[TraceEvent]:
        """The retained trace events, oldest first."""
        return iter(self.trace or ())

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counters, phases and histograms in."""
        for name, value in other.counters.items():
            self.inc(name, value)
        # Gauges are levels, not totals: the most recent reading wins.
        self.gauges.update(other.gauges)
        for name, seconds in other.phase_seconds.items():
            self.add_phase(name, seconds)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = LogHistogram(hist.growth)
            mine.merge(hist)
        if self.spans is not None and other.spans is not None:
            self.spans.absorb(other.spans)

    def reset(self) -> None:
        """Clear counters, phases, histograms, spans and the trace
        buffer (hooks stay)."""
        self.counters.clear()
        self.gauges.clear()
        self.phase_seconds.clear()
        self.histograms.clear()
        if self.spans is not None:
            self.spans.reset()
        if self.trace is not None:
            self.trace.clear()

    def snapshot(self) -> dict:
        """Plain-dict view: counters, phases, histograms and traces."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "trace": [e.to_dict() for e in self.trace_events()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The :meth:`snapshot` as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Metrics(counters={len(self.counters)}, "
            f"phases={len(self.phase_seconds)}, "
            f"trace={len(self.trace) if self.trace is not None else 'off'})"
        )


class _NullPhaseTimer:
    """Shared do-nothing context manager for the null sink."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhaseTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_TIMER = _NullPhaseTimer()


class NullMetrics:
    """The default no-op sink; every method discards its input.

    ``enabled`` and ``tracing`` are plain ``False`` class attributes so
    guarded hot paths pay only the attribute load.  All instances are
    interchangeable; use the module-level :data:`NULL_METRICS`.
    """

    enabled = False
    tracing = False
    #: Guarded span paths test ``obs.spans`` against None.
    spans = None

    __slots__ = ()

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def count(self, name: str) -> int:
        return 0

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def gauge(self, name: str, default: float = 0.0) -> float:
        return default

    def observe(self, name: str, value: float,
                growth: float = DEFAULT_GROWTH,
                exemplar: "str | None" = None) -> None:
        return None

    def histogram(self, name: str) -> None:
        return None

    def add_phase(self, name: str, seconds: float) -> None:
        return None

    def phase(self, name: str) -> _NullPhaseTimer:
        return _NULL_TIMER

    def record(self, kind: str, **data) -> None:
        return None

    def trace_events(self) -> Iterator[TraceEvent]:
        return iter(())

    @property
    def counters(self) -> dict[str, int]:
        return {}

    @property
    def gauges(self) -> dict[str, float]:
        return {}

    @property
    def phase_seconds(self) -> dict[str, float]:
        return {}

    @property
    def histograms(self) -> dict[str, LogHistogram]:
        return {}

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "phase_seconds": {},
                "histograms": {}, "trace": []}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NULL_METRICS"


#: The process-wide default sink.
NULL_METRICS = NullMetrics()
