"""Log-bucketed histograms for latencies and per-query counters.

Means hide everything a serving system cares about — tail latency,
pathological queries — so the telemetry layer records *distributions*.
:class:`LogHistogram` keeps a sparse table of geometrically-growing
buckets: constant relative error (one ``growth`` factor per bucket)
over an unbounded range, O(1) inserts, and a bounded footprint no
matter how skewed the data.  Percentiles interpolate geometrically
inside the landing bucket, so they are deterministic functions of the
bucket table — two histograms built from the same values agree bit for
bit, and ``merge`` is exact (bucket-wise addition).

The default growth of ``2**0.25`` (~19% per bucket) resolves p50/p90/
p99 to well under the run-to-run noise of any wall-clock measurement;
counter histograms can use a coarser factor.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

#: Default bucket growth factor: four buckets per octave.
DEFAULT_GROWTH = 2.0 ** 0.25


class LogHistogram:
    """A sparse histogram over geometrically-spaced buckets.

    Bucket ``i`` covers the half-open interval
    ``[growth**i, growth**(i+1))``; non-positive observations land in a
    dedicated zero bucket (latencies can legitimately measure 0.0 on a
    coarse clock, and counter values are often zero).

    Not thread-safe; like :class:`~repro.obs.metrics.Metrics`, give
    each thread its own and :meth:`merge` afterwards.
    """

    __slots__ = ("growth", "_log_growth", "buckets", "zeros",
                 "count", "total", "min", "max", "exemplars")

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError("growth factor must exceed 1")
        self.growth = growth
        self._log_growth = math.log(growth)
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Last ``(label, value)`` observed per bucket (``None`` keys
        #: the zero bucket).  Only populated when :meth:`observe` is
        #: handed an exemplar label, so plain histograms pay nothing;
        #: the Prometheus exporter renders these as OpenMetrics-style
        #: exemplars, linking a tail bucket to a concrete query id.
        self.exemplars: dict[int | None, tuple[str, float]] = {}

    @classmethod
    def of(cls, values: Iterable[float],
           growth: float = DEFAULT_GROWTH) -> "LogHistogram":
        """Histogram of an iterable of values."""
        hist = cls(growth)
        for value in values:
            hist.observe(value)
        return hist

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def bucket_index(self, value: float) -> int:
        """Index of the bucket containing a positive ``value``.

        Computed from the logarithm and then nudged against the exact
        power-of-``growth`` boundaries, so float rounding in ``log``
        can never misplace a value by a bucket.
        """
        index = math.floor(math.log(value) / self._log_growth)
        if value < self.growth ** index:
            index -= 1
        elif value >= self.growth ** (index + 1):
            index += 1
        return index

    def observe(self, value: float, exemplar: "str | None" = None) -> None:
        """Record one observation.

        ``exemplar`` (typically a query id) is retained as the bucket's
        last-observed exemplar — the join key from a histogram bucket
        back to the flight recorder, query log and slow log.
        """
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= 0.0:
            self.zeros += 1
            if exemplar is not None:
                self.exemplars[None] = (exemplar, value)
            return
        buckets = self.buckets
        index = self.bucket_index(value)
        buckets[index] = buckets.get(index, 0) + 1
        if exemplar is not None:
            self.exemplars[index] = (exemplar, value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100), bucket-resolved.

        Uses the nearest-rank position ``(count - 1) * q / 100`` and
        interpolates geometrically inside the landing bucket — a
        deterministic function of the bucket table, accurate to one
        ``growth`` factor.  Results are clamped to the exact observed
        ``[min, max]``.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        target = (self.count - 1) * q / 100.0
        cumulative = float(self.zeros)
        if target < cumulative:
            return max(0.0, self.min)
        value = 0.0
        for index in sorted(self.buckets):
            n = self.buckets[index]
            if target < cumulative + n:
                fraction = (target - cumulative + 1.0) / n
                value = self.growth ** (index + fraction)
                break
            cumulative += n
        else:  # target == count - 1 exactly, beyond the last bucket
            value = self.max
        return min(max(value, self.min), self.max)

    def p50(self) -> float:
        return self.percentile(50.0)

    def p90(self) -> float:
        return self.percentile(90.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def summary(self) -> dict[str, float]:
        """The headline quantiles: p50/p90/p99 plus min/mean/max."""
        if self.count == 0:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }

    def bucket_bounds(self) -> list[tuple[float, int]]:
        """``(upper_bound, count)`` per occupied bucket, ascending.

        The zero bucket reports an upper bound of 0.0.  Used by the
        Prometheus exporter, whose buckets are "observations <= le".
        """
        bounds: list[tuple[float, int]] = []
        if self.zeros:
            bounds.append((0.0, self.zeros))
        for index in sorted(self.buckets):
            bounds.append((self.growth ** (index + 1), self.buckets[index]))
        return bounds

    def bucket_keys(self) -> "list[int | None]":
        """Bucket keys aligned with :meth:`bucket_bounds` (``None`` is
        the zero bucket) — the exporter joins these against
        :attr:`exemplars`."""
        keys: list[int | None] = [None] if self.zeros else []
        keys.extend(sorted(self.buckets))
        return keys

    # ------------------------------------------------------------------
    # Aggregation / export
    # ------------------------------------------------------------------

    def merge(self, other: "LogHistogram") -> None:
        """Fold another histogram in; exact (bucket-wise addition)."""
        if other.growth != self.growth:
            raise ValueError(
                f"cannot merge histograms with growth {other.growth} "
                f"into growth {self.growth}"
            )
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n
        self.zeros += other.zeros
        self.count += other.count
        self.total += other.total
        # "Last observed per bucket": the merged-in histogram is the
        # more recent recording, so its exemplars win on collision.
        if other.exemplars:
            self.exemplars.update(other.exemplars)
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        """JSON-ready dump: summary plus the sparse bucket table."""
        out = dict(self.summary())
        out["sum"] = self.total
        out["growth"] = self.growth
        out["buckets"] = [
            [index, self.buckets[index]] for index in sorted(self.buckets)
        ]
        out["zeros"] = self.zeros
        if self.exemplars:
            out["exemplars"] = {
                "zero" if index is None else str(index): [label, value]
                for index, (label, value) in sorted(
                    self.exemplars.items(),
                    key=lambda kv: -1e18 if kv[0] is None else kv[0],
                )
            }
        return out

    def measure(self, name: str = "histogram"):
        """Space-audit node: the sparse bucket table and exemplar map."""
        from repro.obs.space import SpaceNode, deep_getsizeof

        return SpaceNode(
            name,
            children=[
                SpaceNode("buckets", deep_getsizeof(self.buckets),
                          kind="dict", detail={"count": len(self.buckets)}),
                SpaceNode("exemplars", deep_getsizeof(self.exemplars),
                          kind="dict", detail={"count": len(self.exemplars)}),
            ],
            kind="log_histogram",
            detail={"observations": self.count},
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.count == 0:
            return "LogHistogram(empty)"
        return (
            f"LogHistogram(n={self.count}, p50={self.p50():.4g}, "
            f"p99={self.p99():.4g}, max={self.max:.4g})"
        )
