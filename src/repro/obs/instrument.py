"""Opt-in instrumentation of the succinct layer via class swapping.

The default code path must stay byte-identical to the uninstrumented
build — the acceptance bar for this subsystem is *zero* overhead when
metrics are off, and even a single ``if metrics.enabled`` guard inside
:meth:`BitVector.rank1` would tax the hottest operation of the whole
library.  So instead of threading a sink through the structures, the
instrumentors here *swap the class* of live instances:

* :class:`CountingBitVector` and :class:`CountingWaveletMatrix` are
  ``__slots__ = ()`` subclasses, layout-compatible with their parents,
  so ``instance.__class__ = CountingBitVector`` is legal and reversible;
* the overriding methods bump a counter and delegate to the parent;
* :func:`instrument_matrix` / :func:`instrument_index` are context
  managers that swap on entry and restore the original classes on exit.

The counting classes report to a single class-level sink, so only one
:class:`~repro.obs.metrics.Metrics` registry can be instrumenting at a
time (nesting with the *same* registry is fine); the context managers
enforce this.  Note that the RPQ engine's inlined descents read the
packed words through :meth:`WaveletMatrix.traversal_data` and therefore
bypass these wrappers by design — their rank work is accounted
arithmetically in ``QueryStats`` (``rank_ops`` = two per expanded
internal node), while the counters here capture the *method-call* ops:
``rank_pair`` backward steps, ``range_distinct`` / ``range_intersect``
walks, selects, and everything the §5 fast paths do.
"""

from __future__ import annotations

from contextlib import ExitStack, contextmanager

from repro.obs.metrics import Metrics, NULL_METRICS
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix


class CountingBitVector(BitVector):
    """A :class:`BitVector` whose rank/select calls hit a metrics sink.

    ``rank0``/``rank`` need no override: the parent implements them on
    top of :meth:`rank1`, which dispatches back here — so each call
    counts exactly the one elementary rank it performs.
    """

    __slots__ = ()

    _obs: Metrics = NULL_METRICS

    def rank1(self, i: int) -> int:
        type(self)._obs.inc("bitvector.rank")
        return BitVector.rank1(self, i)

    def select1(self, j: int) -> int:
        type(self)._obs.inc("bitvector.select")
        return BitVector.select1(self, j)

    def select0(self, j: int) -> int:
        type(self)._obs.inc("bitvector.select")
        return BitVector.select0(self, j)


class CountingWaveletMatrix(WaveletMatrix):
    """A :class:`WaveletMatrix` counting its node-API and query calls.

    ``children`` is the choke point of every range algorithm
    (``range_distinct``, ``range_intersect``, ``range_next_value``,
    ``range_count_distinct``), so counting it yields the per-node cost
    of all of them without overriding each walker.
    """

    __slots__ = ()

    _obs: Metrics = NULL_METRICS

    def access(self, i: int) -> int:
        type(self)._obs.inc("wavelet.access")
        return WaveletMatrix.access(self, i)

    def rank(self, symbol: int, i: int) -> int:
        type(self)._obs.inc("wavelet.rank")
        return WaveletMatrix.rank(self, symbol, i)

    def rank_pair(self, symbol: int, b: int, e: int) -> tuple[int, int]:
        type(self)._obs.inc("wavelet.rank_pair")
        return WaveletMatrix.rank_pair(self, symbol, b, e)

    def select(self, symbol: int, j: int) -> int:
        type(self)._obs.inc("wavelet.select")
        return WaveletMatrix.select(self, symbol, j)

    def children(self, node):
        type(self)._obs.inc("wavelet.node")
        return WaveletMatrix.children(self, node)

    def range_distinct(self, b: int, e: int):
        type(self)._obs.inc("wavelet.range_distinct")
        return WaveletMatrix.range_distinct(self, b, e)

    def range_intersect(self, b1: int, e1: int, b2: int, e2: int):
        type(self)._obs.inc("wavelet.range_intersect")
        return WaveletMatrix.range_intersect(self, b1, e1, b2, e2)


def _claim_sink(counting_cls, metrics: Metrics) -> None:
    """Point a counting class at ``metrics``, rejecting a second owner."""
    current = counting_cls._obs
    if current is not NULL_METRICS and current is not metrics:
        raise RuntimeError(
            "another Metrics registry is already instrumenting "
            f"{counting_cls.__name__}; finish that profile first"
        )
    counting_cls._obs = metrics


@contextmanager
def instrument_bitvector(bv: BitVector, metrics: Metrics):
    """Count ``rank``/``select`` calls on one bitvector."""
    previous = CountingBitVector._obs
    _claim_sink(CountingBitVector, metrics)
    original = bv.__class__
    bv.__class__ = CountingBitVector
    try:
        yield metrics
    finally:
        bv.__class__ = original
        CountingBitVector._obs = previous


@contextmanager
def instrument_matrix(matrix: WaveletMatrix, metrics: Metrics):
    """Count operations on one wavelet matrix and its level bitvectors."""
    previous_wm = CountingWaveletMatrix._obs
    previous_bv = CountingBitVector._obs
    _claim_sink(CountingWaveletMatrix, metrics)
    _claim_sink(CountingBitVector, metrics)
    original_matrix = matrix.__class__
    original_levels = [bv.__class__ for bv in matrix._levels]
    matrix.__class__ = CountingWaveletMatrix
    for bv in matrix._levels:
        bv.__class__ = CountingBitVector
    try:
        yield metrics
    finally:
        matrix.__class__ = original_matrix
        for bv, cls in zip(matrix._levels, original_levels):
            bv.__class__ = cls
        CountingWaveletMatrix._obs = previous_wm
        CountingBitVector._obs = previous_bv


@contextmanager
def instrument_ring(ring, metrics: Metrics):
    """Count backward-search steps on one ring.

    :class:`~repro.ring.ring.Ring` is a plain class, so the wrapper is
    an instance attribute shadowing the bound method — removed on exit.
    """
    inner = ring.backward_step
    inner_many = ring.backward_step_many

    def backward_step(b_o: int, e_o: int, p: int) -> tuple[int, int]:
        metrics.inc("ring.backward_step")
        return inner(b_o, e_o, p)

    def backward_step_many(ranges, p: int, obs=None):
        # A batch of k ranges counts as k steps — same semantics as k
        # scalar calls, just one kernel invocation.
        out = inner_many(ranges, p, obs=obs)
        metrics.inc("ring.backward_step", len(out))
        return out

    ring.backward_step = backward_step
    ring.backward_step_many = backward_step_many
    try:
        yield metrics
    finally:
        del ring.__dict__["backward_step"]
        del ring.__dict__["backward_step_many"]


@contextmanager
def instrument_index(index, metrics: Metrics):
    """Instrument a whole :class:`~repro.ring.builder.RingIndex`.

    Swaps the classes of ``L_p``/``L_s`` (and ``L_o`` when present)
    with their counting variants, including every level bitvector, and
    wraps :meth:`Ring.backward_step`.  Restores everything on exit, so
    the index is back to its zero-overhead self afterwards.
    """
    ring = index.ring
    with ExitStack() as stack:
        stack.enter_context(instrument_matrix(ring.L_p, metrics))
        stack.enter_context(instrument_matrix(ring.L_s, metrics))
        if ring.L_o is not None:
            stack.enter_context(instrument_matrix(ring.L_o, metrics))
        stack.enter_context(instrument_ring(ring, metrics))
        yield metrics
