"""Fixed-capacity time series: the memory behind the live endpoints.

A scrape endpoint that reports a single point answers "what is the RSS
*now*" but not "did it grow over the last minute" — and the second
question is the one the paper's space claims (§5, Table 1) turn into
in production.  :class:`TimeSeries` is a bounded ring buffer of
``(timestamp, value)`` points with O(1) appends and cheap readouts
(min/max/last/mean/percentile over the retained window), so the
resource sampler can record continuously for the lifetime of a service
without ever growing, and ``/debug/vars`` can show recent history
instead of an instantaneous gauge.

Like the rest of the registry family it is not thread-safe by itself;
the :class:`~repro.obs.sampler.ResourceSampler` owns its series and is
the only writer, while readers go through :meth:`snapshot` under the
sampler's lock.
"""

from __future__ import annotations


class TimeSeries:
    """A bounded ring buffer of ``(timestamp, value)`` points.

    Parameters
    ----------
    name:
        The metric name (used in snapshots and exports).
    capacity:
        Maximum number of retained points; appends beyond it overwrite
        the oldest point.  Must be >= 1.

    Invariants (property-tested in ``tests/test_timeseries.py``):

    * ``len(series) == min(capacity, total_appended)``;
    * :meth:`points` returns exactly the last ``len(series)`` appended
      points, oldest first, in append order;
    * ``min()``/``max()``/``last()`` agree with the retained points.
    """

    __slots__ = ("name", "capacity", "total_appended",
                 "_times", "_values", "_start", "_size")

    def __init__(self, name: str, capacity: int = 600):
        if capacity < 1:
            raise ValueError("time-series capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.total_appended = 0
        self._times: list[float] = [0.0] * capacity
        self._values: list[float] = [0.0] * capacity
        self._start = 0   # index of the oldest retained point
        self._size = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def append(self, t: float, value: float) -> None:
        """Record one point (O(1); evicts the oldest at capacity)."""
        if self._size < self.capacity:
            index = (self._start + self._size) % self.capacity
            self._size += 1
        else:
            index = self._start
            self._start = (self._start + 1) % self.capacity
        self._times[index] = t
        self._values[index] = float(value)
        self.total_appended += 1

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def points(self) -> list[tuple[float, float]]:
        """Retained ``(t, value)`` points, oldest first."""
        start, cap = self._start, self.capacity
        return [
            (self._times[(start + i) % cap], self._values[(start + i) % cap])
            for i in range(self._size)
        ]

    def values(self) -> list[float]:
        """Retained values, oldest first."""
        start, cap = self._start, self.capacity
        return [self._values[(start + i) % cap] for i in range(self._size)]

    def last(self) -> float | None:
        """The most recent value (None when empty)."""
        if self._size == 0:
            return None
        index = (self._start + self._size - 1) % self.capacity
        return self._values[index]

    def last_point(self) -> tuple[float, float] | None:
        """The most recent ``(t, value)`` point (None when empty)."""
        if self._size == 0:
            return None
        index = (self._start + self._size - 1) % self.capacity
        return (self._times[index], self._values[index])

    def min(self) -> float | None:
        """Minimum over the retained window (None when empty)."""
        if self._size == 0:
            return None
        return min(self.values())

    def max(self) -> float | None:
        """Maximum over the retained window (None when empty)."""
        if self._size == 0:
            return None
        return max(self.values())

    def mean(self) -> float | None:
        """Arithmetic mean over the retained window (None when empty)."""
        if self._size == 0:
            return None
        return sum(self.values()) / self._size

    def percentile(self, q: float) -> float | None:
        """Nearest-rank-interpolated ``q``-th percentile (0-100) over
        the retained window; None when empty.

        Matches :func:`repro.bench.stats.percentile` semantics (linear
        interpolation between order statistics at ``(n-1) * q / 100``).
        """
        if self._size == 0:
            return None
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        ordered = sorted(self.values())
        if len(ordered) == 1:
            return ordered[0]
        rank = (len(ordered) - 1) * q / 100.0
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] + (ordered[lo + 1] - ordered[lo]) * frac

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """Headline readout: count, window min/max/mean/last, p50/p99."""
        if self._size == 0:
            return {"count": 0, "total_appended": self.total_appended}
        return {
            "count": self._size,
            "total_appended": self.total_appended,
            "min": self.min(),
            "max": self.max(),
            "mean": self.mean(),
            "last": self.last(),
            "p50": self.percentile(50.0),
            "p99": self.percentile(99.0),
        }

    def to_dict(self, max_points: int | None = 120) -> dict:
        """JSON-ready dump: the summary plus (a tail of) the points.

        ``max_points`` bounds the exported point list so a
        ``/debug/vars`` response stays small even with large retention;
        ``None`` exports everything retained.
        """
        points = self.points()
        if max_points is not None and len(points) > max_points:
            points = points[-max_points:]
        out = self.summary()
        out["name"] = self.name
        out["capacity"] = self.capacity
        out["points"] = [[t, v] for t, v in points]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        last = self.last()
        shown = "empty" if last is None else f"last={last:.4g}"
        return (f"TimeSeries({self.name!r}, {self._size}/{self.capacity}, "
                f"{shown})")
