"""Signal-free statistical profiler over ``sys._current_frames()``.

``repro profile`` (PR 1) instruments *one* query exhaustively; a
serving process needs the opposite trade — negligible overhead,
all queries, statistical truth.  :class:`SamplingProfiler` walks the
live Python frames of every worker thread on each clock tick (the
resource sampler's tick, by default), records each stack as a tuple of
``module:function`` labels restricted to this package's code, and
attributes the innermost engine frame to the paper's §4 evaluation
phase.  Because it reads frames instead of installing signal handlers
it works from any thread, needs no cooperation from the profiled code,
and costs nothing between ticks.

Two readouts:

* :meth:`collapsed` — Brendan Gregg collapsed-stack lines
  (``root;frame;frame count``), directly loadable by ``flamegraph.pl``
  or speedscope;
* :meth:`hot_phases` — sample counts per engine phase / module, the
  summary ``/debug/vars`` and the bench trajectory embed.

Sampling bias caveat: stacks are captured at clock boundaries, so the
counts estimate *wall-clock* attribution (including time blocked on
the GIL), with resolution bounded by the tick interval.
"""

from __future__ import annotations

import sys
import threading

#: Innermost-frame function names mapped to the paper's evaluation
#: phases (§4.1-§4.3) plus the serving/compile stages around them.
#: Matching is by suffix-of-stack search: the deepest frame whose
#: function appears here names the sample's phase.
PHASE_BY_FUNCTION = {
    # §4.1 predicates-from-objects (L_p descents)
    "_lp_wave": "predicates_from_objects",
    "_expand": "predicates_from_objects",
    "_expand_entry_scalar": "predicates_from_objects",
    # §4.2 subjects-from-predicates (L_s descents / backward steps)
    "_collect_subjects": "subjects_from_predicates",
    "_collect_round": "subjects_from_predicates",
    "_collect_scalar": "subjects_from_predicates",
    "backward_step": "subjects_from_predicates",
    "backward_step_many": "subjects_from_predicates",
    # §4.3 subjects-to-objects (C_o mapping)
    "object_ranges": "subjects_to_objects",
    "object_ranges_many": "subjects_to_objects",
    # query compilation / dispatch
    "_prepare": "prepare",
    "_dispatch": "dispatch",
    # serving machinery
    "_worker_loop": "serve.idle",
    "_finish": "serve.bookkeeping",
}


def frame_label(frame) -> str:
    """``shortmodule:function`` label for one frame."""
    module = frame.f_globals.get("__name__", "?")
    # Keep labels compact: "repro.core.engine" -> "core.engine".
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Statistical stack sampler attributing time to engine phases.

    Parameters
    ----------
    module_prefixes:
        Only frames whose ``__name__`` starts with one of these
        prefixes enter the recorded stack (the interpreter and stdlib
        frames between them are elided); a sample with no matching
        frame at all is attributed to the ``other`` root.
    max_stacks:
        Bound on distinct recorded stacks; past it, new shapes
        collapse into their phase root so memory stays bounded under
        pathological stack diversity.
    """

    def __init__(self, module_prefixes: tuple[str, ...] = ("repro",),
                 max_stacks: int = 10_000):
        self.module_prefixes = tuple(module_prefixes)
        self.max_stacks = max_stacks
        self.samples = 0
        self.truncated_stacks = 0
        self._counts: dict[tuple[str, ...], int] = {}
        self._phase_counts: dict[str, int] = {}
        # Only explicitly-ignored threads live here; the thread calling
        # sample() is always skipped dynamically, so the constructing
        # thread (often the one running the workload) stays profilable.
        self._ignored: set[int] = set()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def ignore_thread(self, thread: "threading.Thread | int") -> None:
        """Exclude a thread (the sampler's own clock, the HTTP server)
        from future samples.  Accepts a Thread or a raw ident."""
        ident = thread if isinstance(thread, int) else thread.ident
        if ident is not None:
            with self._lock:
                self._ignored.add(ident)

    def _walk(self, frame) -> tuple[list[str], str]:
        """One thread's ``(stack labels outermost-first, phase)``."""
        labels: list[str] = []
        phase = "other"
        probe = frame
        while probe is not None:
            module = probe.f_globals.get("__name__", "")
            if module.startswith(self.module_prefixes):
                labels.append(frame_label(probe))
                if phase == "other":
                    mapped = PHASE_BY_FUNCTION.get(probe.f_code.co_name)
                    if mapped is not None:
                        phase = mapped
            probe = probe.f_back
        labels.reverse()
        if phase == "other" and labels:
            # No phase-mapped frame: attribute to the innermost module.
            phase = labels[-1].split(":", 1)[0]
        return labels, phase

    def sample(self) -> int:
        """Capture one sample of every live (non-ignored) thread.

        Returns the number of thread stacks recorded.  Called from the
        resource-sampler tick; also safe to call directly.
        """
        own = threading.get_ident()
        frames = sys._current_frames()
        recorded = 0
        with self._lock:
            ignored = self._ignored
            for ident, frame in frames.items():
                if ident == own or ident in ignored:
                    continue
                labels, phase = self._walk(frame)
                if not labels:
                    continue
                stack = tuple(labels)
                counts = self._counts
                if stack not in counts and len(counts) >= self.max_stacks:
                    # Memory bound: collapse novel shapes to the phase.
                    stack = (f"(truncated:{phase})",)
                    self.truncated_stacks += 1
                counts[stack] = counts.get(stack, 0) + 1
                phases = self._phase_counts
                phases[phase] = phases.get(phase, 0) + 1
                recorded += 1
            self.samples += 1
        return recorded

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._phase_counts.clear()
            self.samples = 0
            self.truncated_stacks = 0

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def stack_counts(self) -> dict[tuple[str, ...], int]:
        """Copy of the raw ``stack tuple -> samples`` table."""
        with self._lock:
            return dict(self._counts)

    def hot_phases(self) -> dict[str, int]:
        """Sample counts per engine phase / module, descending."""
        with self._lock:
            phases = dict(self._phase_counts)
        return dict(sorted(phases.items(), key=lambda kv: (-kv[1], kv[0])))

    def collapsed(self, root: str = "repro") -> str:
        """Flamegraph collapsed-stacks text (``root;f1;f2 count``).

        Feed the returned string to ``flamegraph.pl`` or paste it into
        speedscope to see where sampled wall-clock went.
        """
        lines = []
        for stack, count in sorted(self.stack_counts().items()):
            frames = ";".join((root, *stack))
            lines.append(f"{frames} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path, root: str = "repro") -> None:
        """Dump :meth:`collapsed` to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed(root))

    def snapshot(self, top: int = 20) -> dict:
        """JSON-ready summary for ``/debug/vars``: totals, phase
        attribution, and the ``top`` hottest stacks."""
        with self._lock:
            counts = dict(self._counts)
            phases = dict(self._phase_counts)
            samples = self.samples
            truncated = self.truncated_stacks
        hottest = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return {
            "samples": samples,
            "distinct_stacks": len(counts),
            "truncated_stacks": truncated,
            "phases": dict(
                sorted(phases.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
            "top_stacks": [
                {"stack": list(stack), "samples": count}
                for stack, count in hottest[:top]
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SamplingProfiler(samples={self.samples}, "
                f"stacks={len(self._counts)})")
