"""Structured JSON-lines query logging, keyed by query id.

The slow log keeps the K worst queries; dashboards and offline
analysis need the *other* direction too — every query, one compact
line, join-able against the slow log and span trees by ``query_id``.
:class:`QueryLogWriter` appends one JSON object per settled query:
wall-clock timestamp, query id, query text, outcome flags, latency,
queue wait and result count.  Counters are deliberately excluded from
the default record (they multiply the line size ~10x and live in the
slow log for the queries that matter); pass ``counters=True`` to
include them anyway.

Schema v2 (``schema_version: 2``) extends every line — all v1 fields
kept — with the per-request audit plane's join keys: ``backend`` (which
engine computed the answer), ``cache_hit``, and ``stages`` (the
lifecycle stage-duration decomposition, see
:mod:`repro.obs.lifecycle`), so one ``query_id`` joins the query log,
the flight recorder and the histogram exemplars with no extra lookup.

The writer is thread-safe (one lock around write+flush) and used by
:class:`~repro.serve.QueryService` when constructed with
``query_log=`` — see ``repro serve --query-log``.
"""

from __future__ import annotations

import json
import threading
import time


class QueryLogWriter:
    """Append-only JSON-lines log of settled queries.

    Parameters
    ----------
    target:
        A path (opened for append) or any writable text file object
        (kept open; closed by :meth:`close` only when owned).
    counters:
        Include each query's full operation-counter dict per line.
    clock:
        Wall-clock source for the ``ts`` field (default :func:`time.time`).
    """

    def __init__(self, target, counters: bool = False, clock=time.time):
        if hasattr(target, "write"):
            self._handle = target
            self._owns_handle = False
            self.path = getattr(target, "name", None)
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owns_handle = True
            self.path = str(target)
        self.counters = counters
        self.clock = clock
        self.written = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def log(
        self,
        query_id: str,
        query: str,
        stats,
        n_results: int = 0,
        wait_seconds: float | None = None,
        engine: str | None = None,
        stages: "dict[str, float] | None" = None,
        **extra,
    ) -> dict:
        """Write one record; returns the dict that was written.

        ``stats`` is a :class:`~repro.core.result.QueryStats` (or any
        object with the same flag/elapsed attributes); ``stages`` the
        lifecycle stage-duration decomposition of the serving tiers
        (absent for bare-engine callers).
        """
        record: dict = {
            "schema_version": 2,
            "ts": self.clock(),
            "query_id": query_id,
            "query": query,
            "elapsed": stats.elapsed,
            "n_results": n_results,
            "backend": getattr(stats, "backend", "") or (engine or ""),
            "cache_hit": bool(getattr(stats, "cached", False)),
        }
        if engine is not None:
            record["engine"] = engine
        if wait_seconds is not None:
            record["wait_seconds"] = wait_seconds
        if stages is not None:
            record["stages"] = stages
        for flag in ("timed_out", "truncated", "cancelled", "cached"):
            if getattr(stats, flag, False):
                record[flag] = True
        if self.counters:
            record["counters"] = stats.operation_counts()
        if extra:
            record.update(extra)
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.written += 1
        return record

    def close(self) -> None:
        """Flush and close the underlying file (when owned)."""
        with self._lock:
            if self._owns_handle and not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "QueryLogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryLogWriter({self.path!r}, written={self.written})"


def read_query_log(path) -> list[dict]:
    """Parse a JSON-lines query log back into records (tests, tools)."""
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
