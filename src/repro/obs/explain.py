"""EXPLAIN / EXPLAIN ANALYZE: plans, estimates and measured reality.

Plain EXPLAIN (``repro explain``) describes how a query *would* run:
the Glushkov position automaton, the ``B`` table mapping each
predicate to the NFA states it activates, the §5 planner's strategy
and anchor-side choice, and the cost model's pre-execution work
estimates (:func:`repro.bench.costmodel.estimate_rpq_cost`).

EXPLAIN ANALYZE (``--analyze``) additionally *runs* the query under
full metrics — phase timers, hierarchical spans, instrumented succinct
structures — and renders the estimated counts next to the actual
:class:`~repro.core.result.QueryStats` counters with a misestimation
ratio per row.  Where the ratio is far from 1 is exactly where the
``B[v]``/``D[v]`` pruning beats (or loses to) the selectivity-only
cost view; this estimated-vs-actual discipline follows the evaluation
methodology of arXiv:2412.07729 and arXiv:2307.14930.

This module is imported lazily by the CLI (it pulls in the bench
subpackage); it is deliberately not re-exported from ``repro.obs``.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass

from repro.automata.glushkov import (
    build_glushkov,
    resolve_atom_to_predicates,
)
from repro.bench.costmodel import PlanEstimate, estimate_rpq_cost
from repro.core.query import as_query
from repro.obs.metrics import Metrics
from repro.obs.profile import ProfileReport, profile_query


def plan_dict(index, query, engine=None) -> dict:
    """The plain-EXPLAIN plan as a JSON-ready dict.

    ``engine`` overrides the planning engine (the matrix backend or
    the cost-model router); a routing engine's plan additionally
    carries a ``routing`` section with both backends' predicted
    seconds and the decision.
    """
    rpq = as_query(query)
    automaton = build_glushkov(rpq.expr)
    dictionary = index.dictionary
    b_masks = automaton.b_masks(
        lambda atom: resolve_atom_to_predicates(atom, dictionary)
    )
    estimate = estimate_rpq_cost(index, rpq)
    if engine is None:
        engine = index.engine
    plan = engine.explain(rpq)
    plan["automaton"] = {
        "num_states": automaton.num_states,
        "nullable": automaton.nullable,
        "initial": automaton.state_mask_str(automaton.INITIAL_MASK),
        "final": automaton.state_mask_str(automaton.final_mask),
        "transitions": [
            {"source": src, "atom": str(atom), "target": tgt}
            for src, atom, tgt in automaton.transitions()
        ],
    }
    plan["b_table"] = {
        dictionary.predicate_label(pid): automaton.state_mask_str(mask)
        for pid, mask in sorted(b_masks.items())
    }
    from repro.bench.space import query_working_set_bytes

    plan["estimate"] = {
        "edges": estimate.edges,
        "touched_nodes": estimate.touched_nodes,
        "lp_nodes": estimate.lp_nodes,
        "ls_nodes": estimate.ls_nodes,
        "backward_steps": estimate.backward_steps,
        "storage_ops": estimate.storage_ops,
        "modeled_seconds": estimate.modeled_seconds,
        # Pre-execution working-set estimate (§5): the D visited array
        # sized by this automaton's state count plus the B table.
        "working_set_bytes": int(query_working_set_bytes(
            index, nfa_bits=max(16, automaton.num_states)
        )),
    }
    return plan


def format_plan(index, query, engine=None) -> str:
    """Human-readable plain EXPLAIN."""
    plan = plan_dict(index, query, engine=engine)
    auto = plan["automaton"]
    est = plan["estimate"]
    lines = [
        f"query    : {plan['query']}",
        f"shape    : {plan['shape']}",
        f"strategy : {plan['strategy']}",
    ]
    if "routing" in plan:
        lines.append(f"routing  : {plan['routing']['decision']}")
    if "anchor_side" in plan:
        lines.append(f"anchor   : {plan['anchor_side']} side bound first")
    lines += [
        "",
        f"Glushkov automaton: {auto['num_states']} states"
        f"{' (nullable)' if auto['nullable'] else ''}, "
        f"initial {auto['initial']}, final {auto['final']}",
    ]
    for t in auto["transitions"]:
        lines.append(
            f"  q{t['source']:<3d} --{t['atom']}--> q{t['target']}"
        )
    lines.append("")
    lines.append("B table (predicate -> activated states):")
    if plan["b_table"]:
        width = max(len(label) for label in plan["b_table"])
        for label, states in plan["b_table"].items():
            lines.append(f"  {label.ljust(width)}  {states}")
    else:
        lines.append("  (no predicate of the query occurs in the graph)")
    lines += [
        "",
        "cost-model estimates:",
        f"  matching edges    : {est['edges']}",
        f"  touched nodes     : {est['touched_nodes']}",
        f"  L_p wavelet nodes : {est['lp_nodes']}",
        f"  L_s wavelet nodes : {est['ls_nodes']}",
        f"  backward steps    : {est['backward_steps']}",
        f"  storage ops       : {est['storage_ops']}",
        f"  modeled time      : {est['modeled_seconds'] * 1e3:.3f} ms "
        "(ring @ 60ns/op)",
        f"  working set       : {est['working_set_bytes']:,} bytes "
        "(D visited array + B table)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# EXPLAIN ANALYZE
# ----------------------------------------------------------------------

#: (phase label, metric label, estimate key or None, actual stats attr)
_COMPARISON_ROWS = (
    ("predicates_from_objects", "nodes_visited", "lp_nodes", "lp_nodes"),
    ("predicates_from_objects", "nodes_pruned", None, "lp_pruned"),
    ("predicates_from_objects", "empty_ranges", None, "lp_empty"),
    ("subjects_from_predicates", "nodes_visited", "ls_nodes", "ls_nodes"),
    ("subjects_from_predicates", "nodes_pruned", None, "ls_pruned"),
    ("subjects_from_predicates", "empty_ranges", None, "ls_empty"),
    ("(all phases)", "backward_steps", "backward_steps", "backward_steps"),
    ("(all phases)", "storage_ops", "storage_ops", "storage_ops"),
)


@dataclass
class AnalyzeReport:
    """Estimated plan next to the measured run."""

    plan: dict
    estimate: PlanEstimate
    profile: ProfileReport
    metrics: Metrics

    def comparison(self) -> list[dict]:
        """Rows of estimated vs. actual counts with the ratio."""
        stats = self.profile.stats
        est_counts = self.estimate.counts()
        rows = []
        for phase, metric, est_key, actual_attr in _COMPARISON_ROWS:
            actual = getattr(stats, actual_attr)
            estimated = est_counts.get(est_key) if est_key else None
            ratio = None
            if estimated is not None and actual > 0:
                ratio = estimated / actual
            rows.append({
                "phase": phase,
                "metric": metric,
                "estimated": estimated,
                "actual": actual,
                "ratio": ratio,
            })
        return rows

    def misestimation(self) -> float | None:
        """Overall estimated/actual storage-op ratio (None when the
        run did no storage work)."""
        actual = self.profile.stats.storage_ops
        if actual <= 0:
            return None
        return self.estimate.storage_ops / actual

    def routing(self) -> dict | None:
        """Routed runs: the decision with predicted vs. actual seconds.

        ``None`` when the analyzed engine does not route.  The ratio
        is predicted/actual for the backend that ran — the router's
        own est-vs-actual discipline, in wall-clock currency.
        """
        decision = self.plan.get("routing")
        if decision is None:
            return None
        backend = decision["backend"]
        predicted = decision[f"{backend}_seconds"]
        actual = self.profile.stats.elapsed
        return {
            "backend": backend,
            "ran_backend": self.profile.stats.backend,
            "predicted_seconds": predicted,
            "actual_seconds": actual,
            "ratio": (predicted / actual) if actual > 0 else None,
        }

    def format(self) -> str:
        stats = self.profile.stats
        lines = [self._plan_text]
        lines.append("")
        suffix = f"  [id {stats.query_id}]" if stats.query_id else ""
        via = f" via {stats.backend}" if stats.backend else ""
        lines.append(
            f"ANALYZE: {len(self.profile.result)} result(s) in "
            f"{stats.elapsed * 1e3:.3f} ms{via} "
            f"(modeled {self.estimate.modeled_seconds * 1e3:.3f} ms)"
            f"{suffix}"
        )
        routing = self.routing()
        if routing is not None:
            ratio = routing["ratio"]
            ratio_text = "-" if ratio is None else f"{ratio:.2f}x"
            lines.append(
                f"routing: chose {routing['backend']} — predicted "
                f"{routing['predicted_seconds'] * 1e3:.3f} ms, actual "
                f"{routing['actual_seconds'] * 1e3:.3f} ms "
                f"(est/actual {ratio_text})"
            )
        lines.append("")
        header = ("phase", "metric", "estimated", "actual", "est/actual")
        rows = [header]
        for row in self.comparison():
            rows.append((
                row["phase"],
                row["metric"],
                "-" if row["estimated"] is None else str(row["estimated"]),
                str(row["actual"]),
                "-" if row["ratio"] is None else f"{row['ratio']:.2f}x",
            ))
        widths = [
            max(len(r[i]) for r in rows) for i in range(len(header))
        ]
        for r in rows:
            lines.append(
                "  ".join(
                    cell.ljust(w) if i < 2 else cell.rjust(w)
                    for i, (cell, w) in enumerate(zip(r, widths))
                ).rstrip()
            )
        overall = self.misestimation()
        if overall is not None:
            lines.append("")
            lines.append(
                f"misestimation: model predicted {overall:.2f}x the "
                "actual storage ops"
            )
        spans = self.metrics.spans
        if spans is not None and len(spans):
            lines.append("")
            lines.append(
                f"span tree ({len(spans)} spans, "
                f"max depth {spans.max_depth()}):"
            )
            lines.append(spans.format_tree())
        return "\n".join(lines)

    @property
    def _plan_text(self) -> str:
        return self.plan["_text"]

    def to_dict(self) -> dict:
        plan = {k: v for k, v in self.plan.items() if k != "_text"}
        out = {
            "plan": plan,
            "query_id": self.profile.stats.query_id,
            "backend": self.profile.stats.backend,
            "analyze": self.profile.to_dict(),
            "comparison": self.comparison(),
            "misestimation": self.misestimation(),
            "routing": self.routing(),
        }
        spans = self.metrics.spans
        if spans is not None:
            out["span_tree"] = spans.tree()
            out["span_max_depth"] = spans.max_depth()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_chrome_trace(self, path) -> None:
        """Dump the captured spans as Chrome trace-event JSON."""
        spans = self.metrics.spans
        if spans is None:
            raise ValueError("no spans were captured")
        spans.write_chrome_trace(path)


def explain_analyze(
    index,
    query,
    timeout: float | None = None,
    limit: int | None = None,
    span_capacity: int = 100_000,
    trace_capacity: int = 0,
    query_id: "str | None" = None,
    engine=None,
) -> AnalyzeReport:
    """Run ``query`` under full telemetry and pair the measured
    counters with the pre-execution estimates.

    Each run carries a ``query_id`` (minted when not supplied) stamped
    onto the stats, the span tree and the report, so an EXPLAIN
    ANALYZE can be correlated against a service's slow/query logs for
    the same query.  ``engine`` overrides the evaluation engine; a
    routing engine's report additionally carries the decision with
    predicted vs. actual seconds (:meth:`AnalyzeReport.routing`).
    """
    rpq = as_query(query)
    if query_id is None:
        query_id = f"explain-{uuid.uuid4().hex[:12]}"
    plan = plan_dict(index, rpq, engine=engine)
    plan["_text"] = format_plan(index, rpq, engine=engine)
    estimate = estimate_rpq_cost(index, rpq)
    metrics = Metrics(
        trace_capacity=trace_capacity, span_capacity=span_capacity
    )
    report = profile_query(
        index, rpq, timeout=timeout, limit=limit, metrics=metrics,
        query_id=query_id, engine=engine,
    )
    return AnalyzeReport(
        plan=plan, estimate=estimate, profile=report, metrics=metrics
    )
