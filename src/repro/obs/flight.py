"""The always-on flight recorder: a bounded ring of settled queries.

Aggregate histograms answer "how slow is the p99?"; the flight recorder
answers "what were the last N queries when things went wrong?".  It is
the serving layer's black box: every settled query appends one compact
:mod:`repro.obs.audit` record (lifecycle stages, outcome flags, routed
backend, cache hit, result count, span-tree digest) into a bounded
thread-safe ring, cheap enough to leave on in production — one dict
build plus one deque append per query, no I/O, memory bounded by the
capacity no matter how long the service runs.

Consumers:

* ``GET /debug/flight`` on the telemetry httpd returns the ring as
  JSON, newest last, each record carrying the ``query_id`` that joins
  the query log, slow log, span trees and histogram exemplars;
* :class:`~repro.errors.WorkerCrashedError` carries the ring's tail as
  crash context — the queries that *preceded* a worker death are
  exactly what a post-mortem needs and exactly what aggregate metrics
  destroy.
"""

from __future__ import annotations

import threading
from collections import deque

#: Default ring capacity: enough history to cover a crash window,
#: small enough that /debug/flight stays a cheap scrape.
DEFAULT_CAPACITY = 256


class FlightRecorder:
    """A bounded, thread-safe ring buffer of audit records (dicts).

    Records are plain JSON-ready dicts (see
    :func:`repro.obs.audit.audit_record`); the recorder treats them as
    opaque.  ``capacity`` bounds retained records; the total count
    keeps running so a reader can tell how much history scrolled away.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.capacity = capacity
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_recorded = 0

    # ------------------------------------------------------------------

    def record(self, audit: dict) -> None:
        """Append one settled-query audit record."""
        with self._lock:
            self._ring.append(audit)
            self.total_recorded += 1

    def records(self, last: "int | None" = None) -> list[dict]:
        """The retained records, oldest first (``last``: tail only)."""
        with self._lock:
            out = list(self._ring)
        if last is not None:
            out = out[-last:]
        return out

    def measure(self, name: str = "flight"):
        """Space-audit node: deep heap bytes of the retained records."""
        from repro.obs.space import SpaceNode, deep_getsizeof

        with self._lock:
            records = list(self._ring)
        return SpaceNode(
            name,
            children=[
                SpaceNode("records", deep_getsizeof(records), kind="ring",
                          detail={"count": len(records)}),
            ],
            kind="flight_recorder",
            detail={"capacity": self.capacity},
        )

    def snapshot(self) -> dict:
        """JSON-ready view for the ``/debug/flight`` endpoint."""
        with self._lock:
            records = list(self._ring)
            total = self.total_recorded
        return {
            "capacity": self.capacity,
            "total_recorded": total,
            "dropped": max(0, total - len(records)),
            "records": records,
        }

    def clear(self) -> None:
        """Drop all retained records (the total keeps counting)."""
        with self._lock:
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlightRecorder(capacity={self.capacity}, "
                f"retained={len(self)}, total={self.total_recorded})")
