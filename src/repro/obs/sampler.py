"""Background resource sampler: RSS, CPU, GC, threads, serve gauges.

The paper's headline trade is space for time; a serving process keeps
that claim honest only if its memory footprint is *continuously*
visible next to its latency.  :class:`ResourceSampler` is a small
daemon thread that, every ``interval`` seconds, reads the process
vitals (resident set size, cumulative CPU seconds, GC collection
counts, live thread count, uptime) plus any gauges already present in
a shared :class:`~repro.obs.metrics.Metrics` registry (the serving
layer's ``serve.queue_depth`` / ``serve.inflight`` / ``serve.cache_size``),
and records every reading into a fixed-capacity
:class:`~repro.obs.timeseries.TimeSeries` — so a scrape or
``/debug/vars`` shows the recent *history*, not one point.

The sampler also writes its latest process readings back into the
registry as ``process.*`` gauges, which the Prometheus exporter then
renders as the conventional ``repro_process_*`` metric family — no
exporter special-casing needed.  All registry access happens under the
caller-provided ``lock`` (the service's merge lock), because
:class:`Metrics` itself is not thread-safe.

Everything here is stdlib-only: RSS comes from ``/proc/self/statm``
where available and falls back to ``resource.getrusage`` peak-RSS
elsewhere, so the sampler degrades rather than dies off Linux.
"""

from __future__ import annotations

import gc
import os
import threading
import time

from repro.obs.timeseries import TimeSeries

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

#: The standard process-metric gauge names the sampler maintains.
#: After Prometheus name sanitisation (dots -> underscores, ``repro``
#: prefix) these export as the conventional ``repro_process_*`` family.
PROCESS_GAUGES = (
    "process.rss_bytes",
    "process.peak_rss_bytes",
    "process.cpu_seconds",
    "process.uptime_seconds",
    "process.gc_collections",
    "process.gc_collected_objects",
    "process.threads",
)

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> float:
    """Current resident set size in bytes (best effort, stdlib only).

    Prefers ``/proc/self/statm`` (current RSS); falls back to
    ``getrusage`` peak RSS (kilobytes on Linux, bytes on macOS) and
    finally to 0.0 when neither source exists.
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return float(int(fields[1]) * _PAGE_SIZE)
    except (OSError, IndexError, ValueError):
        pass
    if _resource is not None:
        peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return float(peak * 1024 if os.uname().sysname == "Linux" else peak)
    return 0.0


def read_cpu_seconds() -> float:
    """Cumulative user+system CPU seconds of this process."""
    times = os.times()
    return times.user + times.system


def read_gc_counts() -> tuple[int, int]:
    """``(total collections, total collected objects)`` across gens."""
    collections = 0
    collected = 0
    for gen in gc.get_stats():
        collections += gen.get("collections", 0)
        collected += gen.get("collected", 0)
    return collections, collected


class ResourceSampler:
    """Periodic recorder of process vitals and registry gauges.

    Parameters
    ----------
    metrics:
        Optional shared :class:`~repro.obs.metrics.Metrics`.  When
        given, each tick (a) mirrors the latest process readings into
        ``process.*`` gauges (for the Prometheus exporter) and (b)
        copies every already-present gauge whose name matches
        ``gauge_prefixes`` into its own time series.
    lock:
        The lock guarding ``metrics`` (e.g.
        :attr:`repro.serve.QueryService.obs_lock`); a private lock is
        created when omitted (fine for a sampler-owned registry).
    interval:
        Seconds between ticks of the background thread.
    capacity:
        Points retained per time series (ring-buffer bound).
    gauge_prefixes:
        Registry gauges matching any of these prefixes are sampled
        into time series alongside the process vitals.
    profiler:
        Optional :class:`~repro.obs.sampling_profiler.SamplingProfiler`
        ticked once per sample — the sampler thread doubles as the
        profiler's clock so the plane costs one extra thread total.
    clock:
        Timestamp source for recorded points (default
        :func:`time.time`, so points align with log timestamps).
    """

    def __init__(
        self,
        metrics=None,
        lock: "threading.Lock | None" = None,
        interval: float = 0.5,
        capacity: int = 600,
        gauge_prefixes: tuple[str, ...] = ("serve.",),
        profiler=None,
        clock=time.time,
    ):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.metrics = metrics
        self.lock = lock if lock is not None else threading.Lock()
        self.interval = interval
        self.capacity = capacity
        self.gauge_prefixes = tuple(gauge_prefixes)
        self.profiler = profiler
        self.clock = clock
        self.series: dict[str, TimeSeries] = {}
        self.latest: dict[str, float] = {}
        self.ticks = 0
        self.started_at = time.monotonic()
        self._series_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _record(self, now: float, name: str, value: float) -> None:
        # Callers hold self._series_lock.
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = TimeSeries(name, self.capacity)
        series.append(now, value)
        self.latest[name] = float(value)

    def read_process(self) -> dict[str, float]:
        """One fresh reading of every :data:`PROCESS_GAUGES` vital."""
        rss = read_rss_bytes()
        collections, collected = read_gc_counts()
        peak = max(rss, self.latest.get("process.peak_rss_bytes", 0.0))
        return {
            "process.rss_bytes": rss,
            "process.peak_rss_bytes": peak,
            "process.cpu_seconds": read_cpu_seconds(),
            "process.uptime_seconds": time.monotonic() - self.started_at,
            "process.gc_collections": float(collections),
            "process.gc_collected_objects": float(collected),
            "process.threads": float(threading.active_count()),
        }

    def sample_once(self) -> dict[str, float]:
        """Take one sample tick; returns the fresh process readings.

        Safe to call directly (tests, synchronous benchmarks) whether
        or not the background thread is running.
        """
        now = self.clock()
        readings = self.read_process()
        gauge_values: dict[str, float] = {}
        if self.metrics is not None:
            with self.lock:
                gauges = self.metrics.gauges
                for name in gauges:
                    if name.startswith(self.gauge_prefixes):
                        gauge_values[name] = gauges[name]
                for name, value in readings.items():
                    self.metrics.set_gauge(name, value)
        with self._series_lock:
            for name, value in readings.items():
                self._record(now, name, value)
            for name, value in gauge_values.items():
                self._record(now, name, value)
            self.ticks += 1
        if self.profiler is not None:
            self.profiler.sample()
        return readings

    # ------------------------------------------------------------------
    # Background thread
    # ------------------------------------------------------------------

    def start(self) -> "ResourceSampler":
        """Start the background sampling thread (idempotent)."""
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampler", daemon=True
        )
        if self.profiler is not None:
            # Never profile the clock thread itself.
            self.profiler.ignore_thread(self._thread)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            self._stop.wait(self.interval)

    def stop(self, final_sample: bool = True) -> None:
        """Stop the background thread; optionally take a last sample
        so ``peak``/``latest`` include the very end of the run."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join()
            self._thread = None
        if final_sample:
            self.sample_once()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------

    def process_metrics(self) -> dict[str, float]:
        """Latest ``process.*`` readings (empty before the first tick)."""
        with self._series_lock:
            return {
                name: value for name, value in self.latest.items()
                if name.startswith("process.")
            }

    def peak(self, name: str) -> float | None:
        """Window maximum of one series (None when never recorded)."""
        with self._series_lock:
            series = self.series.get(name)
            return series.max() if series is not None else None

    def snapshot(self, max_points: int | None = 120) -> dict:
        """JSON-ready dump of every time series."""
        with self._series_lock:
            return {
                "interval": self.interval,
                "ticks": self.ticks,
                "series": {
                    name: self.series[name].to_dict(max_points=max_points)
                    for name in sorted(self.series)
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._thread is not None
        return (f"ResourceSampler(interval={self.interval}, "
                f"ticks={self.ticks}, running={running})")
