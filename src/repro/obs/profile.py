"""One-query profiling: run, instrument, and report per-phase cost.

:func:`profile_query` is the programmatic face of the ``repro profile``
CLI command: it evaluates one RPQ on the ring engine with a live
:class:`~repro.obs.metrics.Metrics` registry and the succinct layer
instrumented (see :mod:`repro.obs.instrument`), and returns a
:class:`ProfileReport` that can render the per-phase table or dump the
whole run — counters, phase seconds, trace events — as JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.core.query import as_query
from repro.core.result import ENGINE_PHASES, QueryResult, QueryStats
from repro.obs.instrument import instrument_index
from repro.obs.metrics import Metrics

#: Column order of the per-phase table; absent entries render as "-".
_PHASE_COLUMNS = (
    "seconds",
    "descents",
    "nodes_visited",
    "nodes_pruned",
    "empty_ranges",
    "rank_ops",
    "backward_steps",
    "object_ranges",
    "product_nodes",
)


@dataclass
class ProfileReport:
    """Everything one profiled evaluation produced."""

    query: str
    shape: str
    result: QueryResult
    metrics: Metrics

    @property
    def stats(self) -> QueryStats:
        """The evaluation's counter record."""
        return self.result.stats

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Per-phase counters merged with the measured phase seconds."""
        return self.stats.phase_breakdown(self.metrics.phase_seconds)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def format_table(self) -> str:
        """The human-readable profile: header, phase table, index ops."""
        stats = self.stats
        flags = []
        if stats.timed_out:
            flags.append("TIMEOUT")
        if stats.truncated:
            flags.append("TRUNCATED")
        suffix = f"  [{', '.join(flags)}]" if flags else ""
        lines = [
            f"query   : {self.query}",
            f"shape   : {self.shape}",
        ]
        if stats.backend:
            lines.append(f"backend : {stats.backend}")
        lines += [
            f"results : {len(self.result)} in {stats.elapsed:.4f}s{suffix}",
            "",
        ]

        breakdown = self.breakdown()
        header = ["phase", *_PHASE_COLUMNS]
        rows = [header]
        for phase in ENGINE_PHASES:
            cells = breakdown.get(phase, {})
            row = [phase]
            for column in _PHASE_COLUMNS:
                value = cells.get(column)
                if value is None:
                    row.append("-")
                elif column == "seconds":
                    row.append(f"{value:.4f}")
                else:
                    row.append(str(value))
            rows.append(row)
        widths = [
            max(len(row[i]) for row in rows) for i in range(len(header))
        ]
        for row in rows:
            lines.append(
                "  ".join(
                    cell.ljust(w) if i == 0 else cell.rjust(w)
                    for i, (cell, w) in enumerate(zip(row, widths))
                ).rstrip()
            )

        lines.append("")
        lines.append(f"storage ops   : {stats.storage_ops}")
        lines.append(f"wavelet nodes : {stats.wavelet_nodes}")
        lines.append(
            f"working set   : {stats.working_set_bits()} bits"
        )
        counters = self.metrics.counters
        if counters:
            lines.append("")
            lines.append("index operations:")
            width = max(len(name) for name in counters)
            for name in sorted(counters):
                lines.append(f"  {name.ljust(width)}  {counters[name]}")
        return "\n".join(lines)

    def phase_counters(self) -> dict[str, dict[str, int]]:
        """Per-phase wavelet traversal buckets, straight off the stats.

        Unlike :meth:`breakdown` (which merges in measured phase
        seconds), these are the raw visited/pruned/empty counts per
        descent family — the quantities the cost model estimates.
        """
        stats = self.stats
        return {
            "predicates_from_objects": {
                "descents": stats.lp_descents,
                "nodes_visited": stats.lp_nodes,
                "nodes_pruned": stats.lp_pruned,
                "empty_ranges": stats.lp_empty,
                "children_emitted": stats.lp_children,
            },
            "subjects_from_predicates": {
                "descents": stats.ls_descents,
                "nodes_visited": stats.ls_nodes,
                "nodes_pruned": stats.ls_pruned,
                "empty_ranges": stats.ls_empty,
                "children_emitted": stats.ls_children,
            },
        }

    def to_dict(self) -> dict:
        """JSON-ready dump: query, phases, counters, trace events."""
        stats = self.stats
        return {
            "schema_version": 2,
            "query": self.query,
            "query_id": stats.query_id,
            "shape": self.shape,
            "backend": stats.backend,
            "n_results": len(self.result),
            "elapsed": stats.elapsed,
            "timed_out": stats.timed_out,
            "truncated": stats.truncated,
            "phases": self.breakdown(),
            "phase_counters": self.phase_counters(),
            "operation_counts": stats.operation_counts(),
            "histograms": {
                name: hist.summary()
                for name, hist in sorted(self.metrics.histograms.items())
            },
            "index_operations": dict(sorted(self.metrics.counters.items())),
            "trace": [e.to_dict() for e in self.metrics.trace_events()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def profile_query(
    index,
    query,
    timeout: float | None = None,
    limit: int | None = None,
    trace_capacity: int = 0,
    metrics: Metrics | None = None,
    query_id: "str | None" = None,
    engine=None,
) -> ProfileReport:
    """Evaluate ``query`` on ``index``'s ring engine under full metrics.

    The index's succinct structures are instrumented for the duration
    of the call (and restored afterwards), the engine runs with phase
    timers on, and — when ``trace_capacity`` is positive — the last
    that-many trace events are retained for :meth:`ProfileReport.to_dict`.

    Pass an existing ``metrics`` registry to accumulate several queries
    into one; by default each call gets a fresh one.  ``query_id`` is
    threaded through to the engine so the profiled run's stats and
    span tree carry the caller's correlation id.  ``engine`` overrides
    the evaluation engine (the matrix backend, the router, an
    ablation); the default is the index's ring engine.  The succinct
    layer is instrumented either way — a matrix run simply reports no
    wavelet traffic, which is itself informative.
    """
    rpq = as_query(query)
    obs = metrics if metrics is not None else Metrics(
        trace_capacity=trace_capacity
    )
    if engine is None:
        engine = index.engine
    with instrument_index(index, obs):
        result = engine.evaluate(
            rpq, timeout=timeout, limit=limit, metrics=obs,
            query_id=query_id,
        )
    return ProfileReport(
        query=str(rpq), shape=rpq.shape(), result=result, metrics=obs
    )
