"""Slow-query log: a bounded record of the K worst queries.

A serving engine cannot keep every query's telemetry, but the handful
of *worst* queries are exactly the ones worth keeping in full detail —
they dominate tail latency and are where the paper's pruning argument
either holds or falls apart.  :class:`SlowQueryLog` retains the K
slowest queries seen so far (min-heap on elapsed time), each with its
complete counter snapshot and, when span collection was on, the
captured span tree.

Attach one to an engine (``RingRPQEngine(..., slow_log=log)``) or a
benchmark run (``run_benchmark(..., slow_log=log)``); recording is
guarded by :meth:`would_keep` so the common fast query costs one float
comparison.
"""

from __future__ import annotations

import heapq
import json


class SlowQueryEntry:
    """One retained slow query."""

    __slots__ = ("query", "elapsed", "seq", "n_results", "timed_out",
                 "truncated", "counters", "phase_seconds", "span_tree",
                 "engine", "query_id")

    def __init__(self, query: str, elapsed: float, seq: int,
                 n_results: int = 0, timed_out: bool = False,
                 truncated: bool = False,
                 counters: dict | None = None,
                 phase_seconds: dict | None = None,
                 span_tree: list | None = None,
                 engine: str | None = None,
                 query_id: str | None = None):
        self.query = query
        self.elapsed = elapsed
        self.seq = seq
        self.n_results = n_results
        self.timed_out = timed_out
        self.truncated = truncated
        self.counters = counters or {}
        self.phase_seconds = phase_seconds or {}
        self.span_tree = span_tree
        self.engine = engine
        self.query_id = query_id

    def to_dict(self) -> dict:
        out = {
            "query": self.query,
            "elapsed": self.elapsed,
            "n_results": self.n_results,
            "timed_out": self.timed_out,
            "truncated": self.truncated,
            "counters": dict(sorted(self.counters.items())),
            "phase_seconds": dict(sorted(self.phase_seconds.items())),
        }
        if self.query_id is not None:
            out["query_id"] = self.query_id
        if self.engine is not None:
            out["engine"] = self.engine
        if self.span_tree is not None:
            out["span_tree"] = self.span_tree
        return out

    def __lt__(self, other: "SlowQueryEntry") -> bool:
        # Heap order: by elapsed, ties broken by arrival order so the
        # eviction decision is deterministic.
        return (self.elapsed, self.seq) < (other.elapsed, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SlowQueryEntry({self.query!r}, "
                f"elapsed={self.elapsed:.4f}s)")


class SlowQueryLog:
    """Bounded log of the ``capacity`` slowest queries seen so far."""

    __slots__ = ("capacity", "_heap", "_seq", "total_recorded")

    def __init__(self, capacity: int = 10):
        if capacity < 1:
            raise ValueError("slow-query log capacity must be >= 1")
        self.capacity = capacity
        self._heap: list[SlowQueryEntry] = []
        self._seq = 0
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def threshold(self) -> float:
        """Minimum elapsed time a new query needs to be retained."""
        if len(self._heap) < self.capacity:
            return 0.0
        return self._heap[0].elapsed

    def would_keep(self, elapsed: float) -> bool:
        """Cheap pre-check: would a query this slow be retained?

        Callers use this to skip building the counter snapshot (and
        especially the span tree) for fast queries.
        """
        return len(self._heap) < self.capacity or elapsed > self._heap[0].elapsed

    def record(self, query: str, elapsed: float, *,
               n_results: int = 0, timed_out: bool = False,
               truncated: bool = False,
               counters: dict | None = None,
               phase_seconds: dict | None = None,
               span_tree: list | None = None,
               engine: str | None = None,
               query_id: str | None = None) -> bool:
        """Offer one finished query; returns True when it was retained."""
        self.total_recorded += 1
        if not self.would_keep(elapsed):
            return False
        entry = SlowQueryEntry(
            query, elapsed, self._seq, n_results=n_results,
            timed_out=timed_out, truncated=truncated, counters=counters,
            phase_seconds=phase_seconds, span_tree=span_tree,
            engine=engine, query_id=query_id,
        )
        self._seq += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
        else:
            heapq.heapreplace(self._heap, entry)
        return True

    def entries(self) -> list[SlowQueryEntry]:
        """Retained queries, slowest first."""
        return sorted(self._heap, key=lambda e: (-e.elapsed, e.seq))

    def clear(self) -> None:
        self._heap.clear()
        self.total_recorded = 0

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "total_recorded": self.total_recorded,
            "entries": [entry.to_dict() for entry in self.entries()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def format_table(self) -> str:
        """Human-readable rendering, slowest first."""
        lines = [f"slow-query log: {len(self._heap)}/{self.capacity} "
                 f"retained of {self.total_recorded} recorded"]
        for rank, entry in enumerate(self.entries(), 1):
            flags = []
            if entry.timed_out:
                flags.append("TIMEOUT")
            if entry.truncated:
                flags.append("TRUNCATED")
            suffix = f"  [{','.join(flags)}]" if flags else ""
            lines.append(
                f"{rank:3d}. {entry.elapsed * 1e3:10.3f} ms  "
                f"{entry.n_results:8d} rows  {entry.query}{suffix}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SlowQueryLog({len(self._heap)}/{self.capacity}, "
                f"threshold={self.threshold:.4f}s)")
