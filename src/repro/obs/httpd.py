"""The live telemetry endpoint: a stdlib-only background HTTP server.

Everything PRs 1 and 3 collect — counters, gauges, histograms, the
slow log — was until now only visible at process exit.  This module
exposes it *while the service runs*, over plain
:mod:`http.server` (no third-party dependency, per the repo's rules):

* ``GET /metrics`` — Prometheus text exposition
  (:func:`repro.obs.export.prometheus_text` over the shared registry,
  including the sampler's ``repro_process_*`` gauges);
* ``GET /healthz`` — liveness JSON: service status, queue depth,
  in-flight count, worker count, uptime;
* ``GET /debug/vars`` — one JSON snapshot of counters, gauges,
  histogram percentile summaries, slow-log entries (query ids, no span
  trees), resource time series and profiler hot phases;
* ``GET /debug/profile`` — the sampling profiler's collapsed stacks
  (flamegraph format, ``text/plain``);
* ``GET /debug/flight`` — the flight recorder's ring of the last N
  settled queries' audit records (lifecycle stage decomposition,
  outcome flags, backend, cache verdict, span digest), each carrying
  the ``query_id`` the histogram exemplars and query log join on;
* ``GET /debug/space`` — the space-audit tree
  (:func:`repro.obs.space.audit_service` over the live service):
  bytes, share-of-parent and bits-per-triple for every storage
  component, the same numbers the ``repro_space_bytes`` gauges carry.

The server runs ``ThreadingHTTPServer.serve_forever`` on one daemon
thread; request handlers take the shared registry lock only long
enough to render, so a scrape costs the serving path one short lock
hold.  Bind to port 0 for an ephemeral port (tests, CI) and read the
chosen one back from :attr:`TelemetryServer.port`.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import prometheus_text

#: Content type mandated by the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class TelemetryServer:
    """Background HTTP server over one shared telemetry registry.

    Parameters
    ----------
    metrics:
        The shared :class:`~repro.obs.metrics.Metrics` registry.
    lock:
        The lock guarding it (e.g.
        :attr:`repro.serve.QueryService.obs_lock`); a private lock is
        created when omitted.
    service / sampler / profiler / slow_log / flight:
        Optional live components; endpoints degrade gracefully (the
        corresponding sections are simply absent, ``/debug/flight``
        answers 404) when missing.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port.
    """

    def __init__(
        self,
        metrics,
        lock: "threading.Lock | None" = None,
        service=None,
        sampler=None,
        profiler=None,
        slow_log=None,
        flight=None,
        host: str = "127.0.0.1",
        port: int = 0,
        prefix: str = "repro",
        space=None,
    ):
        self.metrics = metrics
        self.lock = lock if lock is not None else threading.Lock()
        self.service = service
        self.sampler = sampler
        self.profiler = profiler
        self.slow_log = slow_log
        self.flight = flight
        #: Optional zero-arg callable returning the /debug/space JSON
        #: body; defaults to auditing ``service`` live on each request.
        self.space = space
        self.prefix = prefix
        self.started_at = time.monotonic()
        self.requests = 0
        self._httpd = ThreadingHTTPServer(
            (host, port), self._make_handler()
        )
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The actual bound port (resolves ``port=0`` ephemerals)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Start serving on a daemon thread (idempotent)."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-httpd", daemon=True,
        )
        self._thread.start()
        if self.profiler is not None:
            # The scrape handler threads are ThreadingHTTPServer
            # ephemerals; at least keep the acceptor off the profile.
            self.profiler.ignore_thread(self._thread)
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        thread = self._thread
        if thread is None:
            return
        self._httpd.shutdown()
        thread.join()
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Renderers (each holds the registry lock only while reading)
    # ------------------------------------------------------------------

    def render_metrics(self) -> str:
        """The ``/metrics`` Prometheus document.

        When a live service is attached, the ``repro_space_bytes``
        gauges are re-audited first, so every scrape carries the same
        numbers ``/debug/space`` would report at that moment.
        """
        self._refresh_space_gauges()
        with self.lock:
            return prometheus_text(self.metrics, prefix=self.prefix)

    def _refresh_space_gauges(self) -> None:
        service = self.service
        if service is None or not getattr(self.metrics, "enabled", True):
            return
        from repro.obs.space import audit_service, publish_space_gauges

        try:
            with self.lock:
                node = audit_service(service)
                publish_space_gauges(self.metrics, node)
        except Exception:
            # A scrape racing a service close must not take /metrics
            # down; the previously published gauges keep rendering.
            pass

    def render_healthz(self) -> dict:
        """The ``/healthz`` JSON body."""
        body: dict = {
            "status": "ok",
            "uptime_seconds": time.monotonic() - self.started_at,
        }
        service = self.service
        if service is not None:
            body.update(service.healthz())
            if body.get("closed"):
                body["status"] = "closed"
        return body

    def render_vars(self) -> dict:
        """The ``/debug/vars`` JSON snapshot."""
        with self.lock:
            metrics = self.metrics
            out: dict = {
                "counters": dict(sorted(metrics.counters.items())),
                "gauges": dict(sorted(metrics.gauges.items())),
                "phase_seconds": dict(sorted(metrics.phase_seconds.items())),
                "histograms": {
                    name: hist.summary()
                    for name, hist in sorted(metrics.histograms.items())
                },
            }
            slow_log = self.slow_log
            if slow_log is not None:
                entries = []
                for entry in slow_log.entries():
                    record = entry.to_dict()
                    # Span trees belong in the slow log proper; keep
                    # the debug snapshot scrape-sized.
                    record.pop("span_tree", None)
                    entries.append(record)
                out["slow_log"] = {
                    "capacity": slow_log.capacity,
                    "total_recorded": slow_log.total_recorded,
                    "entries": entries,
                }
        if self.service is not None:
            out["service"] = self.service.stats()
            out["healthz"] = self.render_healthz()
        if self.sampler is not None:
            out["timeseries"] = self.sampler.snapshot()
        if self.profiler is not None:
            out["profile"] = self.profiler.snapshot()
        return out

    def render_profile(self) -> str:
        """The ``/debug/profile`` collapsed-stacks body."""
        if self.profiler is None:
            return ""
        return self.profiler.collapsed()

    def render_space(self) -> "dict | None":
        """The ``/debug/space`` JSON body (None without a source)."""
        if self.space is not None:
            return self.space()
        if self.service is None:
            return None
        from repro.obs.space import space_report

        with self.lock:
            return space_report(self.service)

    def render_flight(self) -> "dict | None":
        """The ``/debug/flight`` JSON body (None without a recorder)."""
        flight = self.flight
        if flight is None and self.service is not None:
            # The serve CLI wires the recorder into the service; pick
            # it up from there so callers need not pass it twice.
            flight = getattr(self.service, "flight", None)
        if flight is None:
            return None
        return flight.snapshot()

    # ------------------------------------------------------------------

    def _make_handler(self):
        server = self

        class _Handler(BaseHTTPRequestHandler):
            # Scrapers poll frequently; stderr chatter helps nobody.
            def log_message(self, *args) -> None:
                return None

            def _send(self, status: int, content_type: str,
                      body: str) -> None:
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server.requests += 1
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                try:
                    if path == "/metrics":
                        self._send(200, PROMETHEUS_CONTENT_TYPE,
                                   server.render_metrics())
                    elif path == "/healthz":
                        body = server.render_healthz()
                        status = 200 if body["status"] == "ok" else 503
                        self._send(status, "application/json",
                                   json.dumps(body, indent=2) + "\n")
                    elif path == "/debug/vars":
                        self._send(200, "application/json",
                                   json.dumps(server.render_vars(),
                                              indent=2) + "\n")
                    elif path == "/debug/profile":
                        self._send(200, "text/plain; charset=utf-8",
                                   server.render_profile())
                    elif path == "/debug/flight":
                        body = server.render_flight()
                        if body is None:
                            self._send(404, "text/plain; charset=utf-8",
                                       "no flight recorder attached\n")
                        else:
                            self._send(200, "application/json",
                                       json.dumps(body, indent=2) + "\n")
                    elif path == "/debug/space":
                        body = server.render_space()
                        if body is None:
                            self._send(404, "text/plain; charset=utf-8",
                                       "no space-audit source attached\n")
                        else:
                            self._send(200, "application/json",
                                       json.dumps(body, indent=2) + "\n")
                    elif path == "/":
                        index = "\n".join((
                            "repro telemetry endpoints:",
                            "  /metrics        Prometheus exposition",
                            "  /healthz        liveness + load JSON",
                            "  /debug/vars     full JSON snapshot",
                            "  /debug/profile  collapsed stacks",
                            "  /debug/flight   last-N query audit ring",
                            "  /debug/space    space-audit tree (bytes)",
                        )) + "\n"
                        self._send(200, "text/plain; charset=utf-8", index)
                    else:
                        self._send(404, "text/plain; charset=utf-8",
                                   f"unknown path {path}\n")
                except BrokenPipeError:  # pragma: no cover - client gone
                    pass

        return _Handler

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._thread is not None
        return f"TelemetryServer({self.url}, running={running})"
