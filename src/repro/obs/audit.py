"""Audit records: the per-query unit the flight recorder retains.

One settled query produces one compact JSON-ready dict joining every
telemetry stream on ``query_id``: the lifecycle stage decomposition
(:mod:`repro.obs.lifecycle`), the outcome flags and routed backend from
:class:`~repro.core.result.QueryStats`, the cache verdict, the result
count, and a *digest* of the span tree — enough shape to recognise the
query's execution (span count, depth, per-name tallies of the top
levels) without retaining the tree itself, which belongs in the slow
log and would blow the flight ring's bounded-memory promise.
"""

from __future__ import annotations

import time

#: Span names tallied by :func:`span_digest` are cut at this depth;
#: deeper levels (per-wave, per-ring-step spans) carry per-operation
#: fan-out that would make the digest as big as the tree.
_DIGEST_MAX_DEPTH = 2


def span_digest(spans) -> "dict | None":
    """A bounded summary of a :class:`~repro.obs.spans.SpanStack`.

    Returns ``None`` for ``None``/empty stacks.  The digest is a few
    scalars plus a small name→count table of the shallow levels — the
    shape of the execution, not its contents.
    """
    if spans is None or len(spans) == 0:
        return None
    names: dict[str, int] = {}
    total_seconds = 0.0
    for span in spans.spans:
        if span.depth == 0:
            total_seconds += span.duration
        if span.depth <= _DIGEST_MAX_DEPTH:
            names[span.name] = names.get(span.name, 0) + 1
    return {
        "spans": len(spans) + spans.dropped,
        "max_depth": spans.max_depth(),
        "root_seconds": total_seconds,
        "by_name": dict(sorted(names.items())),
    }


def audit_record(
    ticket,
    stats,
    n_results: int,
    engine: str,
    cache_hit: bool = False,
    worker_id: "int | None" = None,
    spans=None,
    error: "BaseException | None" = None,
) -> dict:
    """Build one flight-recorder record for a settled query.

    ``ticket`` is a :class:`~repro.serve.service.Ticket` (its
    ``lifecycle`` supplies the stage decomposition); ``stats`` a
    :class:`~repro.core.result.QueryStats`.  Fields that do not apply
    (no backend attribution, no spans, no error) are simply absent so
    the ring stays compact.
    """
    lifecycle = ticket.lifecycle
    record: dict = {
        "ts": time.time(),
        "query_id": ticket.query_id,
        "query": str(ticket.query),
        "engine": engine,
        "n_results": n_results,
        "cache_hit": cache_hit,
        "stages": lifecycle.stage_durations(),
        "total_seconds": lifecycle.total(),
        "engine_seconds": stats.elapsed,
    }
    if stats.backend:
        record["backend"] = stats.backend
    for flag in ("timed_out", "truncated", "cancelled"):
        if getattr(stats, flag, False):
            record[flag] = True
    if worker_id is not None:
        record["worker"] = worker_id
    digest = span_digest(spans)
    if digest is not None:
        record["span_digest"] = digest
    if error is not None:
        record["error"] = type(error).__name__
        record["error_detail"] = str(error)
    return record
