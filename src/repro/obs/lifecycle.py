"""Per-request lifecycle accounting: monotonic stage marks per query.

The paper's evaluation discipline is fine-grained accounting — §4.1–
§4.3 operation counts say where *engine* time goes — but a served query
spends time in places the engine never sees: the admission queue, the
dispatch bookkeeping, and (in the process tier) pickling and pipe
transfer.  :class:`QueryLifecycle` closes that gap with a strictly
ordered sequence of :func:`time.monotonic` marks::

    submitted → admitted → dequeued → dispatched
        → [process tier: request_serialized → worker_started
           → worker_finished → reply_deserialized]
        → settled

The thread tier marks ``worker_started``/``worker_finished`` around the
in-process engine call, so ``execute`` means the same thing in both
tiers.  Stage *durations* are the differences between consecutive
recorded marks, named by the transition (see :data:`TRANSITION_NAMES`);
because every duration is one telescoping difference on one clock, the
durations sum to exactly ``settled - submitted`` — the invariant the
test suite asserts, and the property that makes the decomposition
trustworthy (nothing is double-counted, nothing is lost).

Cross-process marks work because ``CLOCK_MONOTONIC`` is system-wide on
Linux (and boot-relative on the other supported platforms): the worker
stamps ``worker_started``/``worker_finished`` with its own
:func:`time.monotonic` and ships the floats back over the pipe.
Worker and parent do race, though: the worker can stamp
``worker_started`` before the parent's post-``send()``
``request_serialized`` mark lands, and a descheduled parent marks
late.  :meth:`QueryLifecycle.mark` therefore clamps each new mark
forward to its predecessor's timestamp — the skew is absorbed into
the stage where the late mark sat, the timeline stays monotone, and
the telescoping-sum invariant holds unconditionally.
"""

from __future__ import annotations

import time

#: Canonical mark order.  Marks may be skipped (the thread tier never
#: records the serialize/pipe marks; a cache hit jumps straight from
#: ``submitted`` to ``settled``) but never reordered.
STAGE_MARKS = (
    "submitted",
    "admitted",
    "dequeued",
    "dispatched",
    "request_serialized",
    "worker_started",
    "worker_finished",
    "reply_deserialized",
    "settled",
)

#: Duration names for consecutive mark pairs.  A pair absent here (a
#: tier skipped intermediate marks) falls back to ``"<from>_to_<to>"``
#: except for the pairs listed, which collapse onto the canonical name
#: of the work the gap actually contains.
TRANSITION_NAMES = {
    ("submitted", "admitted"): "admission",
    ("submitted", "dequeued"): "queue_wait",
    ("submitted", "settled"): "cache_hit",
    ("admitted", "dequeued"): "queue_wait",
    ("admitted", "settled"): "abandoned",
    ("dequeued", "dispatched"): "dispatch",
    ("dequeued", "settled"): "settle",
    ("dispatched", "worker_started"): "startup",
    ("dispatched", "request_serialized"): "request_serialize",
    ("dispatched", "settled"): "settle",
    ("request_serialized", "worker_started"): "pipe_to_worker",
    ("worker_started", "worker_finished"): "execute",
    ("worker_finished", "settled"): "settle",
    ("worker_finished", "reply_deserialized"): "reply_transfer",
    ("reply_deserialized", "settled"): "settle",
}

_ORDER = {name: i for i, name in enumerate(STAGE_MARKS)}


class QueryLifecycle:
    """Ordered monotonic stage marks for one served query.

    Created at submission (stamping ``submitted``); the serving tiers
    add marks as the query moves through them.  Not thread-safe in the
    general sense, but safe in the serving layer's actual access
    pattern: exactly one thread owns the record at any time (submitter
    → worker/manager thread → settled, read-only afterwards).
    """

    __slots__ = ("query_id", "marks")

    def __init__(self, query_id: str = "", t: "float | None" = None):
        self.query_id = query_id
        self.marks: list[tuple[str, float]] = [
            ("submitted", time.monotonic() if t is None else t)
        ]

    def mark(self, stage: str, t: "float | None" = None) -> float:
        """Record ``stage`` now (or at ``t``); returns the timestamp.

        Out-of-order marks (unknown stage names, or a stage earlier in
        the canonical order than one already recorded) are rejected
        with :class:`ValueError` — the audit plane is only trustworthy
        if the timeline cannot be scrambled.
        """
        order = _ORDER.get(stage)
        if order is None:
            raise ValueError(f"unknown lifecycle stage {stage!r}")
        last_stage = self.marks[-1][0]
        if order <= _ORDER[last_stage]:
            raise ValueError(
                f"stage {stage!r} cannot follow {last_stage!r}"
            )
        now = time.monotonic() if t is None else t
        # Clamp the timeline forward: a mark may not land before its
        # predecessor.  This happens legitimately — the pool worker
        # stamps ``worker_started`` the instant it parses the request,
        # which can precede the parent recording ``request_serialized``
        # after its ``send()`` returns (the two run in parallel), and a
        # descheduled parent marks late.  Keeping marks monotone here
        # preserves the telescoping invariant (durations sum exactly to
        # ``total``); the skew is absorbed into the preceding stage,
        # where the late mark actually sat.
        prev_t = self.marks[-1][1]
        if now < prev_t:
            now = prev_t
        self.marks.append((stage, now))
        return now

    def has(self, stage: str) -> bool:
        """True when ``stage`` has been marked."""
        return any(name == stage for name, _ in self.marks)

    def at(self, stage: str) -> "float | None":
        """Timestamp of ``stage``, or ``None`` when not marked."""
        for name, t in self.marks:
            if name == stage:
                return t
        return None

    # ------------------------------------------------------------------
    # Derived durations
    # ------------------------------------------------------------------

    def stage_durations(self) -> dict[str, float]:
        """Named durations between consecutive marks, in timeline order.

        Gaps are nonnegative by construction (:meth:`mark` clamps the
        timeline forward; the ``max`` here is pure defence); repeated
        transition names (impossible today, defensive forever)
        accumulate.  The values sum to exactly :meth:`total`.
        """
        out: dict[str, float] = {}
        marks = self.marks
        for i in range(1, len(marks)):
            prev_name, prev_t = marks[i - 1]
            name, t = marks[i]
            label = TRANSITION_NAMES.get(
                (prev_name, name), f"{prev_name}_to_{name}"
            )
            out[label] = out.get(label, 0.0) + max(0.0, t - prev_t)
        return out

    def total(self) -> float:
        """End-to-end seconds from ``submitted`` to the last mark."""
        return max(0.0, self.marks[-1][1] - self.marks[0][1])

    @property
    def settled(self) -> bool:
        """True once the ``settled`` mark landed."""
        return self.marks[-1][0] == "settled"

    def to_dict(self) -> dict:
        """JSON-ready dump: marks (relative to submission) + durations."""
        t0 = self.marks[0][1]
        return {
            "query_id": self.query_id,
            "marks": {name: t - t0 for name, t in self.marks},
            "stages": self.stage_durations(),
            "total_seconds": self.total(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = " -> ".join(name for name, _ in self.marks)
        return f"QueryLifecycle({self.query_id!r}, {chain})"
