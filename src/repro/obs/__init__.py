"""Observability: operation counters, phase timers and trace hooks.

The paper argues about *where time goes* — wavelet nodes pruned by the
automaton's ``B[v]``/``D[v]`` masks versus backward-search steps — so
this subpackage makes that accounting first-class:

* :mod:`repro.obs.metrics` — the :class:`Metrics` registry (named
  counters, per-phase seconds, a bounded trace-event ring buffer and
  callback hooks) and the no-op default :data:`NULL_METRICS`;
* :mod:`repro.obs.instrument` — zero-default-overhead instrumentation
  of the succinct layer by swapping live instances to counting
  subclasses (``BitVector.rank/select``, ``WaveletMatrix`` node and
  range operations, ``Ring.backward_step``);
* :mod:`repro.obs.profile` — :func:`profile_query` /
  :class:`ProfileReport`, the machinery behind ``repro profile``;
* :mod:`repro.obs.spans` — hierarchical spans (:class:`SpanStack`)
  with Chrome ``chrome://tracing`` export, threaded through the engine
  behind the same hoisted ``enabled`` guards;
* :mod:`repro.obs.histogram` — log-bucketed :class:`LogHistogram` with
  deterministic p50/p90/p99;
* :mod:`repro.obs.slowlog` — :class:`SlowQueryLog`, a bounded record
  of the K worst queries with counter snapshots and span trees;
* :mod:`repro.obs.export` — :func:`prometheus_text`, the Prometheus
  text-format exporter over any :class:`Metrics`;
* :mod:`repro.obs.timeseries` — :class:`TimeSeries`, fixed-capacity
  ring-buffer history with min/max/last/percentile readout;
* :mod:`repro.obs.sampler` — :class:`ResourceSampler`, a background
  thread recording process RSS/CPU/GC/threads and the ``serve.*``
  gauges into time series (and ``process.*`` gauges for export);
* :mod:`repro.obs.sampling_profiler` — :class:`SamplingProfiler`, a
  signal-free statistical profiler over ``sys._current_frames()``
  with flamegraph collapsed-stack export and §4 phase attribution;
* :mod:`repro.obs.querylog` — :class:`QueryLogWriter`, structured
  JSON-lines logging of every settled query keyed by ``query_id``;
* :mod:`repro.obs.httpd` — :class:`TelemetryServer`, the stdlib-only
  background HTTP server exposing ``/metrics``, ``/healthz``,
  ``/debug/vars``, ``/debug/profile`` and ``/debug/flight`` while the
  service runs;
* :mod:`repro.obs.lifecycle` — :class:`QueryLifecycle`, the per-request
  audit plane's ordered monotonic stage marks (submit → queue → worker
  → settle) whose telescoping differences are the ``serve.stage.*``
  latency decomposition;
* :mod:`repro.obs.audit` — :func:`audit_record` / :func:`span_digest`,
  the compact per-query audit record joining lifecycle stages, outcome
  flags, backend, cache verdict and a span-tree digest;
* :mod:`repro.obs.flight` — :class:`FlightRecorder`, the always-on
  bounded ring of the last N settled queries' audit records
  (``/debug/flight``, worker-crash post-mortem context);
* :mod:`repro.obs.space` — the space-audit plane: :class:`SpaceNode`
  trees assembled from every storage structure's ``measure()`` hook
  (ring columns, CSR matrices, snapshot segments, serving-tier mutable
  state), published as ``repro_space_bytes{component=...}`` gauges,
  ``/debug/space`` and the ``repro space`` CLI.

Operation *counters* of the engine itself (nodes visited vs pruned per
§4.1–§4.3 phase) live in :class:`repro.core.result.QueryStats` and are
always collected; this package adds the timers, traces and
structure-level call counts that are too costly to leave always-on.
"""

from repro.obs.instrument import (
    CountingBitVector,
    CountingWaveletMatrix,
    instrument_bitvector,
    instrument_index,
    instrument_matrix,
    instrument_ring,
)
from repro.obs.audit import audit_record, span_digest
from repro.obs.export import label_key, prometheus_text
from repro.obs.flight import FlightRecorder
from repro.obs.histogram import LogHistogram
from repro.obs.httpd import TelemetryServer
from repro.obs.lifecycle import QueryLifecycle
from repro.obs.metrics import NULL_METRICS, Metrics, NullMetrics, TraceEvent
from repro.obs.profile import ProfileReport, profile_query
from repro.obs.querylog import QueryLogWriter, read_query_log
from repro.obs.sampler import ResourceSampler
from repro.obs.sampling_profiler import SamplingProfiler
from repro.obs.slowlog import SlowQueryEntry, SlowQueryLog
from repro.obs.space import (
    SpaceNode,
    audit_index,
    audit_manifest,
    audit_metrics,
    audit_service,
    deep_getsizeof,
    publish_space_gauges,
)
from repro.obs.spans import Span, SpanStack
from repro.obs.timeseries import TimeSeries

__all__ = [
    "CountingBitVector",
    "CountingWaveletMatrix",
    "FlightRecorder",
    "LogHistogram",
    "Metrics",
    "NULL_METRICS",
    "NullMetrics",
    "ProfileReport",
    "QueryLifecycle",
    "QueryLogWriter",
    "ResourceSampler",
    "SamplingProfiler",
    "SlowQueryEntry",
    "SlowQueryLog",
    "Span",
    "SpaceNode",
    "SpanStack",
    "TelemetryServer",
    "TimeSeries",
    "TraceEvent",
    "audit_index",
    "audit_manifest",
    "audit_metrics",
    "audit_record",
    "audit_service",
    "deep_getsizeof",
    "instrument_bitvector",
    "instrument_index",
    "instrument_matrix",
    "instrument_ring",
    "label_key",
    "profile_query",
    "prometheus_text",
    "publish_space_gauges",
    "read_query_log",
    "span_digest",
]
