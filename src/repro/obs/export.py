"""Metric exporters: Prometheus text exposition over a Metrics registry.

The ROADMAP north-star is an engine serving real traffic, and the
lingua franca of serving telemetry is the Prometheus text format.  This
module renders any :class:`~repro.obs.metrics.Metrics` (or a plain
snapshot dict) into that format:

* counters      → ``<prefix>_<name>_total``  (TYPE counter)
* gauges        → ``<prefix>_<name>``  (TYPE gauge)
* phase seconds → ``<prefix>_phase_seconds_total{phase="..."}``
* histograms    → ``<prefix>_<name>`` with cumulative ``_bucket{le=}``
  series plus ``_sum`` and ``_count`` (TYPE histogram); buckets that
  retained an exemplar render an OpenMetrics-style
  ``# {query_id="q42"} value`` suffix, so a tail bucket links straight
  to a concrete query in the flight recorder / query log

Metric names are sanitised to ``[a-zA-Z_][a-zA-Z0-9_]*`` (dots and
dashes become underscores), matching the exposition-format grammar.

No HTTP server is provided — any WSGI one-liner or a file scrape
(node-exporter textfile collector) can serve the returned string.
"""

from __future__ import annotations

import re

from repro.obs.histogram import LogHistogram

_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize(name: str) -> str:
    name = _NAME_OK.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _format_value(value: float) -> str:
    # Prometheus accepts Go-style floats; repr() keeps full precision
    # and renders integral floats as e.g. "3.0" which is valid.
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def unescape_label(value: str) -> str:
    """Inverse of the exposition-format label escaping (for tests and
    scrape round-trips): processes ``\\\\`` and ``\\"`` sequentially."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value) and value[i + 1] in ('\\', '"'):
            out.append(value[i + 1])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def label_key(family: str, **labels: object) -> str:
    """Registry key for one labelled gauge sample.

    The flat :class:`~repro.obs.metrics.Metrics` gauge registry maps
    string keys to floats; a labelled sample (the space-audit plane's
    ``space.bytes{component="index.ring"}``) encodes its label set into
    the key in exposition syntax, already escaped.  The exporter then
    renders the family name once per ``# TYPE`` line and each key as its
    own sample.  Label values are escaped here — callers pass raw
    strings.
    """
    if not labels:
        return family
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return f"{family}{{{inner}}}"


#: A gauge key carrying an encoded label set: ``family{name="value"}``.
_LABELED_KEY = re.compile(r"^(?P<family>[^{]+)\{(?P<labels>.*)\}$")


def _histogram_lines(full_name: str, hist: LogHistogram) -> list[str]:
    lines = [
        f"# TYPE {full_name} histogram",
    ]
    cumulative = 0
    exemplars = getattr(hist, "exemplars", None) or {}
    for key, (upper, count) in zip(hist.bucket_keys(),
                                   hist.bucket_bounds()):
        cumulative += count
        line = (
            f'{full_name}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
        )
        exemplar = exemplars.get(key)
        if exemplar is not None:
            # OpenMetrics-style exemplar: the last query id observed in
            # this bucket, so a p99 bucket links to a concrete query.
            label, value = exemplar
            line += (f' # {{query_id="{_escape_label(str(label))}"}} '
                     f"{_format_value(value)}")
        lines.append(line)
    lines.append(f'{full_name}_bucket{{le="+Inf"}} {hist.count}')
    lines.append(f"{full_name}_sum {_format_value(hist.total)}")
    lines.append(f"{full_name}_count {hist.count}")
    return lines


def prometheus_text(metrics, prefix: str = "repro") -> str:
    """Render ``metrics`` in the Prometheus text exposition format.

    ``metrics`` is a :class:`~repro.obs.metrics.Metrics`-like object:
    anything with ``counters``, ``phase_seconds`` and ``histograms``
    mappings (so :data:`~repro.obs.metrics.NULL_METRICS` renders as an
    empty document).
    """
    prefix = _sanitize(prefix)
    lines: list[str] = []

    counters = metrics.counters
    for name in sorted(counters):
        full = f"{prefix}_{_sanitize(name)}_total"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {counters[name]}")

    gauges = getattr(metrics, "gauges", None) or {}
    typed_gauges: set[str] = set()
    for name in sorted(gauges):
        labeled = _LABELED_KEY.match(name)
        if labeled:
            full = f"{prefix}_{_sanitize(labeled.group('family'))}"
            sample = f"{full}{{{labeled.group('labels')}}}"
        else:
            full = f"{prefix}_{_sanitize(name)}"
            sample = full
        if full not in typed_gauges:
            typed_gauges.add(full)
            lines.append(f"# TYPE {full} gauge")
        lines.append(f"{sample} {_format_value(gauges[name])}")

    phases = metrics.phase_seconds
    if phases:
        full = f"{prefix}_phase_seconds_total"
        lines.append(f"# TYPE {full} counter")
        for name in sorted(phases):
            lines.append(
                f'{full}{{phase="{_sanitize(name)}"}} '
                f"{_format_value(phases[name])}"
            )

    histograms = metrics.histograms
    for name in sorted(histograms):
        lines.extend(
            _histogram_lines(f"{prefix}_{_sanitize(name)}", histograms[name])
        )

    return "\n".join(lines) + ("\n" if lines else "")
