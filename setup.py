"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-build-isolation`` needs ``bdist_wheel`` for the
PEP 660 editable route; offline machines that lack the ``wheel`` dist
can fall back to ``pip install -e . --no-use-pep517`` thanks to this
file.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
