"""Query-log scenario: generating and profiling a Table 1-style log.

Reproduces the paper's workload methodology in miniature: generate a
query log following the published pattern mix (Table 1), classify it
back, then profile the ring engine per pattern — showing which query
shapes are cheap (anchored, selective) and which are the expensive
variable-to-variable closures the paper's Fig. 8 is about.

Run with::

    python examples/query_log_analysis.py [--scale S]
"""

from __future__ import annotations

import argparse
from collections import Counter, defaultdict

from repro import RingIndex
from repro.bench.patterns import RECURSIVE_PATTERNS, classify_query
from repro.bench.workload import generate_query_log
from repro.graph.generators import wikidata_like


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--timeout", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = wikidata_like(
        n_nodes=1_500, n_edges=9_000, n_predicates=32, seed=args.seed
    )
    index = RingIndex.from_graph(graph)
    queries = generate_query_log(graph, scale=args.scale, seed=args.seed)
    print(f"generated {len(queries)} queries at scale {args.scale}")

    histogram = Counter(classify_query(q) for q in queries)
    print("\npattern mix (top 10):")
    for pattern, count in histogram.most_common(10):
        tag = "recursive" if pattern in RECURSIVE_PATTERNS else "join-like"
        print(f"  {pattern:<14} {count:>4}  ({tag})")

    print(f"\nrunning the log on the ring (timeout {args.timeout}s)...")
    per_pattern: dict[str, list[float]] = defaultdict(list)
    results_total = 0
    timeouts = 0
    for query in queries:
        result = index.evaluate(
            query, timeout=args.timeout, limit=100_000
        )
        per_pattern[classify_query(query)].append(result.stats.elapsed)
        results_total += len(result)
        timeouts += result.stats.timed_out

    print(f"total distinct answers: {results_total}; timeouts: {timeouts}")
    print("\nmean time per pattern (ms):")
    rows = sorted(
        per_pattern.items(),
        key=lambda kv: -sum(kv[1]) / len(kv[1]),
    )
    for pattern, times in rows:
        mean_ms = 1000 * sum(times) / len(times)
        bar = "#" * min(60, int(mean_ms / 2) + 1)
        print(f"  {pattern:<14} {mean_ms:>9.2f}  {bar}")


if __name__ == "__main__":
    main()
