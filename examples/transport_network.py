"""Transport-network scenario: route planning with two-way RPQs.

Builds a synthetic city transport network — several metro lines laid
out as station chains, plus directed bus hops between random stations
— and answers routing questions with 2RPQs:

* which stations are reachable using metro only;
* trips of the shape "metro, then at most one bus";
* trips that *end* at a target using inverse labels;
* line-interchange stations found with a range intersection pattern.

Run with::

    python examples/transport_network.py [--lines N] [--stations M]
"""

from __future__ import annotations

import argparse
import random

from repro import RingIndex
from repro.graph.model import Graph


def build_network(n_lines: int, stations_per_line: int,
                  n_bus: int, seed: int) -> Graph:
    """Metro lines as bidirectional chains + directed bus hops."""
    rng = random.Random(seed)
    triples = []
    all_stations = []
    for line in range(n_lines):
        label = f"line{line + 1}"
        stations = [f"L{line + 1}S{i}" for i in range(stations_per_line)]
        # every line crosses the centre: splice in a shared hub station
        stations[stations_per_line // 2] = "Center"
        all_stations.extend(stations)
        for a, b in zip(stations, stations[1:]):
            triples.append((a, label, b))
            triples.append((b, label, a))
    for _ in range(n_bus):
        a, b = rng.sample(all_stations, 2)
        triples.append((a, "bus", b))
    lines = tuple(f"line{i + 1}" for i in range(n_lines))
    return Graph(triples, symmetric_predicates=lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lines", type=int, default=4)
    parser.add_argument("--stations", type=int, default=9)
    parser.add_argument("--bus", type=int, default=30)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    graph = build_network(args.lines, args.stations, args.bus, args.seed)
    index = RingIndex.from_graph(graph)
    metro = "|".join(f"line{i + 1}" for i in range(args.lines))
    print(f"network: {len(graph)} edges, {len(graph.nodes)} stations; "
          f"index {index.ring.size_in_bits() // 8} bytes")

    start = "L1S0"
    by_metro = index.evaluate(f"({start}, ({metro})+, ?y)")
    print(f"\nstations reachable from {start} by metro: "
          f"{len(by_metro)} (all lines connect via Center)")

    one_bus = index.evaluate(f"({start}, ({metro})*/bus/({metro})*, ?y)")
    print(f"reachable with exactly one bus hop: {len(one_bus)}")

    # Inverse query: from where can we REACH the Center with one line?
    into_center = index.evaluate(f"(?x, ({metro})+, Center)")
    print(f"stations that can reach Center by metro: {len(into_center)}")

    # Stations adjacent to two different lines (interchange-like):
    # reach them from Center and leave on a different line — a two-step
    # fixed-length pattern the engine solves with range intersection.
    interchange = index.evaluate("(?x, line1/line2, ?y)")
    print(f"line1→line2 two-hop pairs: {len(interchange)}")

    # A bus-free round trip: out and back on the same line.
    round_trip = index.evaluate(f"({start}, line1/line1, {start})")
    print(f"out-and-back on line 1 from {start}: "
          f"{'possible' if round_trip else 'impossible'}")

    # Show a few one-bus destinations with their stats.
    result = index.evaluate(f"({start}, ({metro})+/bus, ?y)")
    sample = sorted(result.objects())[:8]
    print(f"\nmetro-then-bus destinations from {start} (sample): {sample}")
    print(f"  stats: {result.stats.product_nodes} product nodes, "
          f"{result.stats.elapsed * 1000:.1f} ms")


if __name__ == "__main__":
    main()
