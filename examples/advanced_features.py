"""Advanced features tour: the APIs beyond plain RPQ evaluation.

Demonstrates, on a small social/org graph:

* ``engine.explain()`` — see the evaluation strategy before running;
* ``forbidden_nodes`` — the §6 node-constraint extension;
* triple-pattern lookup on the ring (``index.match_pattern``);
* Leapfrog-style seekable relations and a mixed star join (§6);
* index persistence (save to / load from a single ``.npz``).

Run with::

    python examples/advanced_features.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import Graph, RingIndex
from repro.core.leapfrog import (
    RPQRelation,
    TriplePatternRelation,
    join_subjects,
)
from repro.ring.storage import load_index, save_index


def build_org_graph() -> Graph:
    """A small company: reporting lines, teams and friendships."""
    return Graph([
        ("ana", "reportsTo", "boris"),
        ("boris", "reportsTo", "carla"),
        ("dmitri", "reportsTo", "carla"),
        ("elena", "reportsTo", "dmitri"),
        ("fred", "reportsTo", "elena"),
        ("ana", "memberOf", "search"),
        ("boris", "memberOf", "search"),
        ("dmitri", "memberOf", "infra"),
        ("elena", "memberOf", "infra"),
        ("fred", "memberOf", "infra"),
        ("ana", "friendOf", "elena"),
        ("elena", "friendOf", "ana"),
        ("boris", "friendOf", "fred"),
    ], symmetric_predicates=("friendOf",))


def main() -> None:
    graph = build_org_graph()
    index = RingIndex.from_graph(graph)
    print(f"org graph: {len(graph)} edges, {len(graph.nodes)} nodes\n")

    # -- explain -------------------------------------------------------
    for query in ["(?x, reportsTo+, carla)",
                  "(?x, reportsTo/memberOf, ?y)",
                  "(?x, memberOf, ?y)"]:
        plan = index.engine.explain(query)
        print(f"explain {query}")
        print(f"   shape={plan['shape']} nfa_states={plan['nfa_states']} "
              f"-> {plan['strategy']}")

    # -- transitive query with a node constraint ------------------------
    chain = index.evaluate("(?x, reportsTo+, carla)")
    print(f"\nreports to carla (transitively): {sorted(chain.subjects())}")
    without = index.evaluate(
        "(?x, reportsTo+, carla)", forbidden_nodes=["dmitri"]
    )
    print("  ... with dmitri on leave (paths may not pass through him): "
          f"{sorted(without.subjects())}")

    # -- triple patterns -------------------------------------------------
    print("\ninfra team (match_pattern ?, memberOf, infra):")
    for s, _, _ in index.match_pattern(None, "memberOf", "infra"):
        print(f"  {s}")

    # -- leapfrog star join ----------------------------------------------
    managers = RPQRelation(index, "^reportsTo")        # has a report
    infra = TriplePatternRelation(index, "memberOf", "infra")
    ids = join_subjects([managers, infra])
    names = [index.dictionary.node_label(i) for i in ids]
    print(f"\nmanagers inside infra (leapfrog join): {names}")

    # -- persistence ------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "org.ring.npz"
        save_index(index, path)
        restored = load_index(path)
        again = restored.evaluate("(?x, reportsTo+, carla)")
        assert again.pairs == chain.pairs
        print(f"\nindex saved+reloaded from {path.name}: "
              f"{path.stat().st_size} bytes, answers identical")


if __name__ == "__main__":
    main()
