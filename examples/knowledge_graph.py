"""Knowledge-graph scenario: taxonomy queries on a Wikidata-like graph.

Generates a synthetic knowledge graph whose structure mirrors
Wikidata's (Zipf-popular predicates, a deep ``subclass of`` hierarchy
``p0``, ``instance of`` edges ``p1``, hub entities), then runs the RPQ
shapes that dominate real query logs:

* the classic *instance-of/subclass-of-star* pattern ``p1/p0*``
  (SPARQL's ``wdt:P31/wdt:P279*``),
* hierarchy ancestors/descendants with ``p0+`` and ``^p0+``,
* cross-checking the ring engine against the baseline engines.

Run with::

    python examples/knowledge_graph.py
"""

from __future__ import annotations

import time

from repro import RingIndex
from repro.baselines import all_engines
from repro.graph.generators import wikidata_like


def main() -> None:
    graph = wikidata_like(
        n_nodes=2_000, n_edges=12_000, n_predicates=32, seed=42
    )
    print(f"synthetic KG: {len(graph)} edges, {len(graph.nodes)} entities, "
          f"{len(graph.predicates)} predicates")

    started = time.monotonic()
    index = RingIndex.from_graph(graph)
    print(f"ring built in {time.monotonic() - started:.2f}s "
          f"({index.bytes_per_triple():.1f} bytes/triple)")

    # Pick a class with a rich subtree: the root of the p0 hierarchy.
    root = "n0"

    # All classes below the root (descendants along ^subclass-of).
    descendants = index.evaluate(f"(?x, p0+, {root})")
    print(f"\nclasses with '{root}' as an ancestor: {len(descendants)}")

    # All instances of the root class or any subclass: P31/P279*.
    instances = index.evaluate(f"(?x, p1/p0*, {root})")
    print(f"instances of '{root}' (transitively): {len(instances)}")
    stats = instances.stats
    print(f"  product nodes={stats.product_nodes} "
          f"edges={stats.product_edges} "
          f"wavelet nodes={stats.wavelet_nodes} "
          f"time={stats.elapsed * 1000:.1f} ms")

    # Two-way query: siblings = up one hierarchy step, then down one.
    siblings = index.evaluate("(n5, p0/^p0, ?y)")
    print(f"hierarchy siblings of n5: {sorted(siblings.objects())[:10]}")

    # Cross-check every engine of the paper's Table 2 on one query.
    print("\ncross-checking all engines on (?x, p1/p0*, n0):")
    engines = all_engines(index)
    answers = {}
    for name, engine in engines.items():
        result = engine.evaluate(f"(?x, p1/p0*, {root})", timeout=30)
        answers[name] = result.pairs
        print(f"  {name:<22} {len(result):>6} answers "
              f"in {result.stats.elapsed * 1000:8.1f} ms "
              f"({result.stats.storage_ops:>8} storage ops)")
    reference = answers["ring"]
    if all(pairs == reference for pairs in answers.values()):
        print("all engines agree")
    else:
        print("ENGINES DISAGREE — this is a bug")


if __name__ == "__main__":
    main()
