"""Telemetry tour: spans, histograms, slow queries, a Chrome trace.

Runs a handful of RPQs on a synthetic knowledge graph with the full
serving-grade telemetry on — hierarchical spans, latency histograms,
a slow-query log — then prints the span tree of the slowest query and
writes a ``chrome://tracing`` / Perfetto-loadable trace file.

Run with::

    python examples/chrome_trace.py [--out trace.json]
"""

from __future__ import annotations

import argparse

from repro import RingIndex
from repro.core.engine import RingRPQEngine
from repro.graph.generators import wikidata_like
from repro.obs import Metrics, SlowQueryLog, prometheus_text

QUERIES = [
    "(?x, p0, ?y)",
    "(?x, p0+, ?y)",
    "(?x, p0/p1*, ?y)",
    "(?x, (p0|p1)+, ?y)",
    "(n0, p2/p3, ?y)",
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="trace.json",
                        help="Chrome trace output path")
    args = parser.parse_args()

    graph = wikidata_like(
        n_nodes=300, n_edges=1_500, n_predicates=12, seed=3
    )
    index = RingIndex.from_graph(graph)

    slow_log = SlowQueryLog(capacity=3)
    engine = RingRPQEngine(index, slow_log=slow_log)
    metrics = Metrics(span_capacity=100_000)

    for query in QUERIES:
        result = engine.evaluate(query, metrics=metrics)
        print(f"{query:<24s} {len(result):6d} results "
              f"in {result.stats.elapsed * 1e3:8.3f} ms")

    seconds = metrics.histogram("query.seconds")
    print(f"\nlatency histogram: n={seconds.count} "
          f"p50={seconds.p50() * 1e3:.3f} ms "
          f"p99={seconds.p99() * 1e3:.3f} ms "
          f"max={seconds.max * 1e3:.3f} ms")

    print("\n" + slow_log.format_table())

    worst = slow_log.entries()[0]
    print(f"\nspan tree of the slowest query ({worst.query}):")
    print(f"  (full session: {len(metrics.spans)} spans, "
          f"max depth {metrics.spans.max_depth()})")

    metrics.spans.write_chrome_trace(args.out)
    print(f"\nwrote Chrome trace to {args.out} — open it in "
          "chrome://tracing or https://ui.perfetto.dev")

    print("\nPrometheus exposition (first lines):")
    for line in prometheus_text(metrics).splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
