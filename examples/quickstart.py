"""Quickstart: the paper's running example, end to end.

Builds the ring index over the Santiago transport graph (Fig. 1 of the
paper), then evaluates the worked-example queries of §1 and §4 — metro
reachability, the ``l5+/bus`` trip query, inverse paths and boolean
checks — printing answers and evaluation statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import RingIndex
from repro.graph import santiago_transport
from repro.graph.datasets import SANTIAGO_STATION_NAMES


def show(title: str, result) -> None:
    print(f"\n{title}")
    for s, o in result:
        print(f"  {s:>4} → {o:<4}   ({SANTIAGO_STATION_NAMES[s]} → "
              f"{SANTIAGO_STATION_NAMES[o]})")
    stats = result.stats
    print(f"  [{len(result)} answer(s); {stats.product_nodes} product-graph "
          f"node visits, {stats.wavelet_nodes} wavelet nodes, "
          f"{stats.elapsed * 1000:.2f} ms]")


def main() -> None:
    graph = santiago_transport()
    print(f"graph: {len(graph)} edges over {len(graph.nodes)} stations "
          f"({len(graph.completion())} after completion)")

    index = RingIndex.from_graph(graph)
    print(f"ring index: {index.ring.size_in_bits() / 8:.0f} bytes "
          f"({index.bytes_per_triple():.1f} bytes/triple)")

    # §1: stations reachable by metro (one or more hops on any line).
    show(
        "Metro reachability — (?x, (l1|l2|l5)+, ?y):",
        index.evaluate("(?x, (l1|l2|l5)+, ?y)"),
    )

    # §4 running example: ride line 5 from Baquedano, then one bus.
    show(
        "Line 5 then a bus — (Baq, l5+/bus, ?y):",
        index.evaluate("(Baq, l5+/bus, ?y)"),
    )

    # The same query in its reversed two-way form (what the engine
    # actually runs internally).
    show(
        "Reversed form — (?x, ^bus/l5*/l5, Baq):",
        index.evaluate("(?x, ^bus/l5*/l5, Baq)"),
    )

    # Boolean query: is Santa Ana reachable that way?
    hit = index.evaluate("(Baq, l5+/bus, SA)")
    print(f"\n(Baq, l5+/bus, SA) → {'yes' if hit else 'no'}")
    miss = index.evaluate("(Baq, l5+/bus, LH)")
    print(f"(Baq, l5+/bus, LH) → {'yes' if miss else 'no'}")

    # A negated property set: reach BA without using line 5.
    show(
        "Avoid line 5 — (?x, !(l5)+, BA):",
        index.evaluate("(?x, !(l5)+, BA)"),
    )


if __name__ == "__main__":
    main()
