"""Live-telemetry scenario: boot the full plane and scrape it.

Starts a :class:`~repro.serve.QueryService` over a synthetic knowledge
graph with every telemetry component attached — shared metrics
registry, slow log, JSON-lines query log, resource sampler, sampling
profiler, flight recorder and the background HTTP endpoint — then
drives a workload while scraping ``/metrics``, ``/healthz``,
``/debug/vars`` and ``/debug/flight`` over real HTTP exactly as a
Prometheus agent would.  Asserts on everything it scrapes, so CI can
run it as the serving-plane smoke test, and finally writes the
profiler's collapsed stacks for flamegraph tooling plus the flight
recorder's audit-ring dump.

Run with::

    python examples/live_telemetry.py [--queries N] [--out stacks.txt]
"""

from __future__ import annotations

import argparse
import json
import tempfile
import urllib.request
from pathlib import Path

from repro import RingIndex
from repro.bench.workload import generate_query_log
from repro.graph.generators import wikidata_like
from repro.obs import (
    FlightRecorder,
    Metrics,
    QueryLogWriter,
    ResourceSampler,
    SamplingProfiler,
    TelemetryServer,
    read_query_log,
)
from repro.obs.slowlog import SlowQueryLog
from repro.serve import QueryService


def scrape(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200, f"{url}: HTTP {response.status}"
        return response.read().decode("utf-8")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--queries", type=int, default=60,
                        help="workload size replayed through the service")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default=None,
                        help="collapsed-stacks output path "
                             "(default: <tmp>/live_telemetry.collapsed)")
    parser.add_argument("--flight", type=int, default=48,
                        help="flight-recorder capacity (last N settled "
                             "queries' audit records)")
    args = parser.parse_args()

    graph = wikidata_like(
        n_nodes=800, n_edges=4_500, n_predicates=24, seed=args.seed
    )
    index = RingIndex.from_graph(graph)
    queries = generate_query_log(graph, scale=0.05, seed=args.seed)
    queries = (queries * (args.queries // len(queries) + 1))[:args.queries]
    print(f"index over {len(graph.nodes)} nodes / {len(graph)} edges; "
          f"workload of {len(queries)} queries")

    out = Path(args.out) if args.out else (
        Path(tempfile.gettempdir()) / "live_telemetry.collapsed"
    )
    log_path = out.with_suffix(".queries.jsonl")
    log_path.unlink(missing_ok=True)

    metrics = Metrics(span_capacity=2048)
    slow_log = SlowQueryLog(capacity=8)
    query_log = QueryLogWriter(log_path)
    profiler = SamplingProfiler()
    flight = FlightRecorder(args.flight)
    service = QueryService(
        index, workers=args.workers, cache_size=128, metrics=metrics,
        slow_log=slow_log, query_log=query_log, flight=flight,
    )
    sampler = ResourceSampler(
        metrics=metrics, lock=service.obs_lock, interval=0.02,
        profiler=profiler,
    )
    httpd = TelemetryServer(
        metrics, lock=service.obs_lock, service=service,
        sampler=sampler, profiler=profiler, slow_log=slow_log,
        flight=flight,
    )

    with service, sampler, httpd:
        print(f"telemetry live at {httpd.url}")

        results = service.run(queries, timeout=5.0, limit=50_000)
        answers = sum(len(r) for r in results)
        print(f"workload done: {answers} answers, "
              f"{metrics.count('serve.cache_hits'):.0f} cache hits")

        # -- /healthz: the service reports itself alive and drained.
        health = json.loads(scrape(httpd.url + "/healthz"))
        assert health["status"] == "ok", health
        assert health["workers"] == args.workers
        print(f"/healthz ok: uptime {health['uptime_seconds']:.2f}s")

        # -- /metrics: the Prometheus scrape a collector would take.
        sampler.sample_once()
        exposition = scrape(httpd.url + "/metrics")
        for needle in (
            "repro_serve_submitted_total",
            "repro_serve_query_seconds_bucket",
            'le="+Inf"',
            "repro_serve_queue_depth",
            "repro_serve_inflight",
            "repro_serve_cache_size",
            "repro_process_rss_bytes",
            "repro_process_cpu_seconds",
        ):
            assert needle in exposition, f"missing {needle} in /metrics"
        submitted = next(
            line for line in exposition.splitlines()
            if line.startswith("repro_serve_submitted_total ")
        )
        assert float(submitted.split()[1]) == len(queries), submitted
        print(f"/metrics ok: {len(exposition.splitlines())} lines, "
              f"{submitted}")

        # -- /debug/vars: history, not just instantaneous points.
        snapshot = json.loads(scrape(httpd.url + "/debug/vars"))
        rss_series = snapshot["timeseries"]["series"]["process.rss_bytes"]
        assert rss_series["count"] >= 1 and rss_series["max"] > 0
        print(f"/debug/vars ok: {len(snapshot['timeseries']['series'])} "
              f"time series, peak RSS {rss_series['max'] / 1e6:.1f} MB, "
              f"profiler samples {snapshot['profile']['samples']}")

        # -- /debug/flight: the audit ring over real HTTP.  Every
        # settled query left an audit record; the ring keeps the last
        # N of them, each decomposing its latency into stages that
        # telescope back to the end-to-end total.
        flight_dump = json.loads(scrape(httpd.url + "/debug/flight"))
        assert flight_dump["capacity"] == args.flight, flight_dump
        assert flight_dump["total_recorded"] == len(queries)
        ring = flight_dump["records"]
        assert len(ring) == min(args.flight, len(queries))
        for record in ring:
            stage_sum = sum(record["stages"].values())
            assert abs(stage_sum - record["total_seconds"]) <= max(
                0.05 * record["total_seconds"], 1e-6
            ), record
        flight_path = out.with_suffix(".flight.json")
        flight_path.write_text(
            json.dumps(flight_dump, indent=2) + "\n", encoding="utf-8"
        )
        print(f"/debug/flight ok: {len(ring)} of "
              f"{flight_dump['total_recorded']} audit records retained "
              f"({flight_dump['dropped']} dropped); dump at {flight_path}")

        # -- query-id correlation: one id joins every record stream.
        records = read_query_log(log_path)
        assert len(records) == len(queries), (len(records), len(queries))
        slow_entries = slow_log.entries()
        assert slow_entries and all(e.query_id for e in slow_entries)
        worst = slow_entries[0]
        (match,) = [r for r in records if r["query_id"] == worst.query_id]
        assert match["query"] == worst.query
        print(f"query log ok: {len(records)} lines; slowest query "
              f"{worst.query_id} ({worst.elapsed * 1e3:.2f} ms) found in "
              "both slow log and query log")

    profiler.write_collapsed(out)
    print(f"collapsed stacks ({len(profiler.stack_counts())} distinct) "
          f"written to {out}")
    print("live telemetry smoke: all checks passed")


if __name__ == "__main__":
    main()
