"""Metamorphic identities over the RPQ algebra, on both backends.

These tests need no oracle: they relate an engine's answer on one
query to its answer on an algebraically equal (or dual) query, so a
bug has to conspire to break both sides identically to slip through.
Identities checked, against the ring engine and the sparse-matrix
backend:

* union commutativity       ``pairs(a|b) == pairs(b|a)``
* concat associativity      ``pairs((a/b)/c) == pairs(a/(b/c))``
* star idempotence          ``pairs((r*)*) == pairs(r*)``
* reversal duality          ``pairs(r) == swap(pairs(reverse(r)))``
"""

from __future__ import annotations

import pytest

pytest.importorskip("scipy", reason="matrix backend needs scipy",
                    exc_type=ImportError)

pytestmark = pytest.mark.hypothesis

from hypothesis import given, settings

from repro.automata.parser import parse_regex
from repro.baselines.registry import make_engine
from repro.core.engine import RingRPQEngine
from repro.ring.builder import RingIndex
from repro.testing import swap_pairs
from tests.test_engine_hypothesis import expressions, graphs


def _backends(graph):
    index = RingIndex.from_graph(graph)
    return [
        ("ring", RingRPQEngine(index)),
        ("matrix", make_engine("matrix", index)),
    ]


def _pairs(engine, expr):
    return engine.evaluate(f"(?x, {expr}, ?y)", timeout=60).pairs


@settings(deadline=None)
@given(graph=graphs(), a=expressions(), b=expressions())
def test_union_commutes(graph, a, b):
    for name, engine in _backends(graph):
        left = _pairs(engine, f"({a}|{b})")
        right = _pairs(engine, f"({b}|{a})")
        assert left == right, (name, a, b)


@settings(deadline=None)
@given(graph=graphs(), a=expressions(), b=expressions(), c=expressions())
def test_concat_associates(graph, a, b, c):
    for name, engine in _backends(graph):
        left = _pairs(engine, f"(({a})/({b}))/({c})")
        right = _pairs(engine, f"({a})/(({b})/({c}))")
        assert left == right, (name, a, b, c)


@settings(deadline=None)
@given(graph=graphs(), r=expressions())
def test_double_star_collapses(graph, r):
    for name, engine in _backends(graph):
        once = _pairs(engine, f"({r})*")
        twice = _pairs(engine, f"(({r})*)*")
        assert once == twice, (name, r)


@settings(deadline=None)
@given(graph=graphs(), r=expressions())
def test_reversal_duality(graph, r):
    reversed_r = str(parse_regex(r).reverse())
    for name, engine in _backends(graph):
        forward = _pairs(engine, r)
        backward = _pairs(engine, reversed_r)
        assert forward == swap_pairs(backward), (name, r, reversed_r)
