"""Tests for the string-labeled graph model and I/O."""

from __future__ import annotations

import pytest

from repro.errors import ConstructionError
from repro.graph.io import dumps_graph, load_graph, loads_graph, save_graph
from repro.graph.model import Graph, inverse_label, is_inverse_label


class TestLabels:
    def test_inverse_label_roundtrip(self):
        assert inverse_label("p") == "^p"
        assert inverse_label("^p") == "p"
        assert inverse_label(inverse_label("knows")) == "knows"

    def test_is_inverse(self):
        assert is_inverse_label("^p")
        assert not is_inverse_label("p")


class TestGraph:
    def test_dedup_and_order(self):
        g = Graph([("b", "p", "c"), ("a", "p", "b"), ("a", "p", "b")])
        assert len(g) == 2
        assert g.triples == (("a", "p", "b"), ("b", "p", "c"))

    def test_nodes_and_predicates(self):
        g = Graph([("a", "p", "b"), ("b", "q", "c")])
        assert g.nodes == ["a", "b", "c"]
        assert g.predicates == ["p", "q"]

    def test_contains(self):
        g = Graph([("a", "p", "b")])
        assert ("a", "p", "b") in g
        assert ("b", "p", "a") not in g

    def test_adjacency(self):
        g = Graph([("a", "p", "b"), ("a", "q", "c"), ("b", "p", "c")])
        assert sorted(g.out_edges("a")) == [("p", "b"), ("q", "c")]
        assert g.in_edges("c") == [("p", "b")] or \
            sorted(g.in_edges("c")) == [("p", "b"), ("q", "a")]
        assert g.out_edges("zz") == []
        assert g.edges_with_predicate("p") == [("a", "b"), ("b", "c")]

    def test_completion_adds_inverses(self):
        g = Graph([("a", "p", "b")])
        comp = g.completion()
        assert set(comp) == {("a", "p", "b"), ("b", "^p", "a")}
        assert comp.is_completed()

    def test_completion_symmetric(self):
        g = Graph([("a", "l", "b")], symmetric_predicates=("l",))
        comp = g.completion()
        assert set(comp) == {("a", "l", "b"), ("b", "l", "a")}
        assert "^l" not in comp.predicates

    def test_completion_idempotent(self):
        g = Graph([("a", "p", "b"), ("c", "q", "a")])
        once = g.completion()
        twice = once.completion()
        assert set(once) == set(twice)

    def test_santiago_counts(self):
        from repro.graph.datasets import santiago_transport

        g = santiago_transport()
        assert len(g) == 13
        assert len(g.completion()) == 16  # paper Fig. 3: 16 triples
        assert g.nodes == ["BA", "Baq", "LH", "SA", "UCh"]


class TestIO:
    def test_roundtrip(self, tmp_path):
        g = Graph([("a", "p", "b"), ("b", "q", "c")])
        path = tmp_path / "graph.nt"
        save_graph(g, path)
        loaded = load_graph(path)
        assert set(loaded) == set(g)

    def test_loads_with_comments_and_iris(self):
        text = """
        # a comment
        <http://x/a> <http://x/p> <http://x/b> .
        a p b
        """
        g = loads_graph(text)
        assert ("a", "p", "b") in g
        assert ("http://x/a", "http://x/p", "http://x/b") in g

    def test_malformed_line(self):
        with pytest.raises(ConstructionError):
            loads_graph("a p\n")

    def test_dumps(self):
        g = Graph([("a", "p", "b")])
        assert dumps_graph(g) == "a p b\n"
