"""Tests for the log-bucketed latency/counter histogram."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import DEFAULT_GROWTH, LogHistogram


class TestBasics:
    def test_empty(self):
        h = LogHistogram()
        assert len(h) == 0
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0
        assert h.summary()["count"] == 0

    def test_observe_tracks_extremes_and_mean(self):
        h = LogHistogram.of([1.0, 2.0, 4.0])
        assert h.count == 3
        assert h.min == 1.0 and h.max == 4.0
        assert h.mean == pytest.approx(7.0 / 3)

    def test_zeros_and_negatives_bucket_separately(self):
        h = LogHistogram.of([0.0, -1.0, 5.0])
        assert h.zeros == 2
        assert h.count == 3
        # the zero bucket resolves to 0.0, never a negative latency
        assert h.percentile(0) == 0.0
        assert h.min == -1.0

    def test_percentile_bounds(self):
        h = LogHistogram.of([1.0, 10.0])
        # bucket-resolved: p0 lands within one growth factor of min
        assert 1.0 <= h.percentile(0) <= 1.0 * h.growth
        assert h.percentile(100) == 10.0
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_value_percentiles_are_exact(self):
        h = LogHistogram.of([0.125])
        for q in (0, 50, 90, 99, 100):
            assert h.percentile(q) == pytest.approx(0.125)

    def test_summary_keys(self):
        h = LogHistogram.of([3.0])
        assert set(h.summary()) == {
            "count", "mean", "min", "max", "p50", "p90", "p99"
        }

    def test_repr_mentions_count(self):
        assert "3" in repr(LogHistogram.of([1.0, 2.0, 3.0]))


class TestAccuracy:
    def test_percentiles_within_bucket_error(self):
        rng = random.Random(0)
        values = [rng.uniform(1e-4, 10.0) for _ in range(2_000)]
        values += [rng.lognormvariate(0, 2) for _ in range(2_000)]
        h = LogHistogram.of(values)
        ordered = sorted(values)
        # one bucket spans a growth factor, so the relative error of
        # any percentile is bounded by that factor
        for q in (1, 10, 25, 50, 75, 90, 99, 100):
            exact = ordered[round((len(ordered) - 1) * q / 100)]
            approx = h.percentile(q)
            assert approx / exact == pytest.approx(
                1.0, rel=DEFAULT_GROWTH - 1 + 0.05
            )

    def test_order_independence(self):
        rng = random.Random(1)
        values = [rng.expovariate(1.0) for _ in range(500)]
        a = LogHistogram.of(values)
        b = LogHistogram.of(list(reversed(values)))
        # bucket table and every percentile are exactly order-free;
        # only the float running sum accumulates rounding differently
        assert a.buckets == b.buckets and a.zeros == b.zeros
        assert (a.min, a.max, a.count) == (b.min, b.max, b.count)
        for q in range(0, 101, 5):
            assert a.percentile(q) == b.percentile(q)
        assert a.mean == pytest.approx(b.mean)


class TestMergeAndBuckets:
    def test_merge_is_exact(self):
        xs = [0.5, 1.5, 2.5, 0.0]
        ys = [3.5, 4.5]
        merged = LogHistogram.of(xs)
        merged.merge(LogHistogram.of(ys))
        direct = LogHistogram.of(xs + ys)
        assert merged.to_dict() == direct.to_dict()

    def test_merge_growth_mismatch_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(2.0).merge(LogHistogram(4.0))

    def test_bucket_bounds_are_monotonic(self):
        h = LogHistogram.of([0.0, 0.001, 0.1, 1.0, 100.0])
        bounds = h.bucket_bounds()
        uppers = [b for b, _ in bounds]
        assert uppers == sorted(uppers)
        assert sum(c for _, c in bounds) == h.count

    def test_bucket_index_brackets_value(self):
        h = LogHistogram()
        for value in (0.001, 0.5, 1.0, 7.3, 4096.0):
            idx = h.bucket_index(value)
            upper = h.growth ** (idx + 1)
            lower = h.growth ** idx
            assert lower <= value * (1 + 1e-9)
            assert value <= upper * (1 + 1e-9)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6,
                              allow_nan=False), min_size=1))
    def test_percentiles_bracketed_by_extremes(self, values):
        h = LogHistogram.of(values)
        for q in (0, 50, 99, 100):
            assert min(values) <= h.percentile(q) <= max(values)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=1e-6, max_value=1e6,
                           allow_nan=False)),
        st.lists(st.floats(min_value=1e-6, max_value=1e6,
                           allow_nan=False)),
    )
    def test_merge_equals_union(self, xs, ys):
        merged = LogHistogram.of(xs)
        merged.merge(LogHistogram.of(ys))
        direct = LogHistogram.of(xs + ys)
        assert merged.count == direct.count == len(xs) + len(ys)
        assert merged.buckets == direct.buckets
        assert merged.zeros == direct.zeros
        if merged.count:
            assert (merged.min, merged.max) == (direct.min, direct.max)
            assert merged.total == pytest.approx(direct.total)

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e-9, max_value=1e9, allow_nan=False))
    def test_bucket_index_is_log_consistent(self, value):
        h = LogHistogram()
        idx = h.bucket_index(value)
        assert abs(idx - math.log(value) / math.log(h.growth)) < 2
