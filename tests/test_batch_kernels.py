"""Batch kernels agree with their scalar counterparts, exactly.

Three layers of evidence:

* hypothesis property tests pin the vectorized rank/descent kernels to
  the scalar reference implementations, including the clamping and
  boundary behaviour (positions past ``n``, empty ranges, padded
  leaves);
* the ring's bulk operations (``backward_step_many``,
  ``object_ranges_many``) are checked element-wise against their
  scalar originals on a benchmark-shaped index;
* an engine-level differential proves the batched traversal returns
  the *identical* pair sets and the identical operation counters as
  the scalar engine on tier-1 graphs — a batch of k must account
  exactly like k scalar steps.

The differential runs twice: once with production thresholds and once
with every batched code path forced on (merged L_p waves from one
entry, merged L_s rounds from width two), so narrow frontiers cannot
hide the merged paths from the test.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util.bits import rank1_many_words
from repro.core import batchrun
from repro.core.engine import RingRPQEngine
from repro.succinct.bitvector import BitVector
from repro.succinct.wavelet_matrix import WaveletMatrix

# Counters that must match between the scalar and the batched engine on
# untruncated runs (the full PR-1 bucket set plus the derived totals).
EXACT_COUNTERS = (
    "lp_descents", "lp_nodes", "lp_pruned", "lp_empty", "lp_children",
    "ls_descents", "ls_nodes", "ls_pruned", "ls_empty", "ls_children",
    "wavelet_nodes", "backward_steps", "product_nodes", "product_edges",
    "object_ranges", "storage_ops", "subqueries", "visited_nodes",
)

QUERIES = [
    "(?x, p0, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, (p0|p3)+, ?y)",
    "(?x, p2/p0*, ?y)",
    "(?x, (p1/p2)?, ?y)",
    "(?x, ^p0, ?y)",
    "(?x, p0, n5)",
    "(n3, p0/p1*, ?y)",
    "(n1, (p0|p1)+, n2)",
]


# ----------------------------------------------------------------------
# Kernel-level properties
# ----------------------------------------------------------------------


@pytest.mark.hypothesis
@settings(max_examples=60, deadline=None)
@given(
    bits=st.lists(st.integers(min_value=0, max_value=1), max_size=300),
    raw_positions=st.lists(
        st.integers(min_value=-10, max_value=400), max_size=40
    ),
)
def test_rank1_many_matches_scalar(bits, raw_positions):
    bv = BitVector(bits)
    positions = np.asarray(raw_positions, dtype=np.int64)
    got = bv.rank1_many(positions).tolist()
    want = [bv.rank1(p) for p in raw_positions]
    assert got == want


@pytest.mark.hypothesis
@settings(max_examples=60, deadline=None)
@given(
    bits=st.lists(st.integers(min_value=0, max_value=1), max_size=300),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=-5, max_value=350),
            st.integers(min_value=-5, max_value=350),
        ),
        max_size=30,
    ),
)
def test_rank_pair_many_matches_scalar(bits, pairs):
    bv = BitVector(bits)
    bs = np.asarray([b for b, _ in pairs], dtype=np.int64)
    es = np.asarray([e for _, e in pairs], dtype=np.int64)
    rb, re = bv.rank_pair_many(bs, es)
    assert rb.tolist() == [bv.rank1(b) for b, _ in pairs]
    assert re.tolist() == [bv.rank1(e) for _, e in pairs]


def test_rank1_many_words_empty_inputs():
    empty = np.zeros(0, dtype=np.uint64)
    cum = np.zeros(1, dtype=np.int64)
    assert rank1_many_words(
        empty, cum, 0, np.zeros(0, dtype=np.int64)
    ).tolist() == []
    assert rank1_many_words(
        empty, cum, 0, np.asarray([0, 5], dtype=np.int64)
    ).tolist() == [0, 0]


@pytest.mark.hypothesis
@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    sigma=st.integers(min_value=1, max_value=40),
    n=st.integers(min_value=0, max_value=200),
)
def test_wavelet_rank_pair_many_matches_scalar(data, sigma, n):
    seq = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=sigma - 1),
            min_size=n, max_size=n,
        )
    )
    matrix = WaveletMatrix(seq, sigma)
    symbol = data.draw(st.integers(min_value=0, max_value=sigma - 1))
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=-5, max_value=n + 5),
                st.integers(min_value=-5, max_value=n + 5),
            ),
            max_size=20,
        )
    )
    bs = np.asarray([b for b, _ in pairs], dtype=np.int64)
    es = np.asarray([e for _, e in pairs], dtype=np.int64)
    rb, re = matrix.rank_pair_many(symbol, bs, es)
    want = [matrix.rank_pair(symbol, b, e) for b, e in pairs]
    assert list(zip(rb.tolist(), re.tolist())) == want


@pytest.mark.hypothesis
@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    sigma=st.integers(min_value=1, max_value=50),
    n=st.integers(min_value=0, max_value=200),
)
def test_descend_batch_matches_range_distinct(data, sigma, n):
    seq = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=sigma - 1),
            min_size=n, max_size=n,
        )
    )
    matrix = WaveletMatrix(seq, sigma)
    ranges = data.draw(
        st.lists(
            st.tuples(
                st.integers(min_value=-3, max_value=n + 3),
                st.integers(min_value=-3, max_value=n + 3),
            ),
            max_size=12,
        )
    )
    origins, symbols, b_leaf, e_leaf = matrix.descend_batch(ranges)
    for oi, (b, e) in enumerate(ranges):
        mask = origins == oi
        want = list(matrix.range_distinct(b, e))
        got = list(zip(
            symbols[mask].tolist(),
            b_leaf[mask].tolist(),
            e_leaf[mask].tolist(),
        ))
        assert got == want, (oi, b, e)


def test_backward_step_many_matches_scalar(kg_index):
    ring = kg_index.ring
    ranges = []
    for node in range(ring.num_nodes):
        b, e = ring.object_range(node)
        ranges.append((b, e))
    for pid in range(ring.num_predicates):
        batched = ring.backward_step_many(ranges, pid)
        scalar = [ring.backward_step(b, e, pid) for b, e in ranges]
        assert [tuple(row) for row in batched.tolist()] == scalar


def test_object_ranges_many_matches_scalar(kg_index):
    ring = kg_index.ring
    nodes = list(range(ring.num_nodes))
    batched = ring.object_ranges_many(nodes)
    scalar = [ring.object_range(n) for n in nodes]
    assert [tuple(row) for row in batched.tolist()] == scalar


# ----------------------------------------------------------------------
# Engine-level differential: identical pairs, identical counters
# ----------------------------------------------------------------------


def _assert_engines_agree(index, queries):
    scalar = RingRPQEngine(index, batch=False)
    batched = RingRPQEngine(index, batch=True)
    for query in queries:
        rs = scalar.evaluate(query, timeout=60.0)
        rb = batched.evaluate(query, timeout=60.0)
        assert not rs.stats.timed_out and not rb.stats.timed_out
        assert rb.pairs == rs.pairs, query
        diffs = {
            name: (getattr(rs.stats, name), getattr(rb.stats, name))
            for name in EXACT_COUNTERS
            if getattr(rs.stats, name) != getattr(rb.stats, name)
        }
        assert not diffs, (query, diffs)


def test_engine_differential_default_thresholds(kg_index):
    _assert_engines_agree(kg_index, QUERIES)


def test_engine_differential_forced_batch_paths(kg_index, monkeypatch):
    """Same differential with every merged code path forced on."""
    monkeypatch.setattr(batchrun, "_LP_WAVE_MIN", 1)
    monkeypatch.setattr(batchrun, "_LS_ROUND_MIN", 2)
    monkeypatch.setattr(batchrun, "_VEC_MIN", 1)
    _assert_engines_agree(kg_index, QUERIES)


def test_engine_differential_santiago(santiago_index):
    """The paper's Fig. 1 graph: small frontiers, scalar fallbacks."""
    queries = [
        "(?x, (l1|l2)+, ?y)",
        "(?x, bus/l1*, ?y)",
        "(?x, ^l1/l2, ?y)",
    ]
    _assert_engines_agree(santiago_index, queries)


def test_engine_differential_no_prune(kg_index):
    """Pruning off exercises the unpruned wave bookkeeping."""
    scalar = RingRPQEngine(kg_index, batch=False, prune=False)
    batched = RingRPQEngine(kg_index, batch=True, prune=False)
    for query in QUERIES[:4]:
        rs = scalar.evaluate(query, timeout=60.0)
        rb = batched.evaluate(query, timeout=60.0)
        assert rb.pairs == rs.pairs
        for name in EXACT_COUNTERS:
            assert getattr(rs.stats, name) == getattr(rb.stats, name), (
                query, name
            )


def test_dfs_traversal_keeps_scalar_runner(kg_index):
    """DFS order is outside the batched runner's contract; the engine
    must transparently keep the scalar runner and stay correct."""
    dfs = RingRPQEngine(kg_index, traversal="dfs", batch=True)
    bfs = RingRPQEngine(kg_index, traversal="bfs", batch=True)
    for query in QUERIES[:4]:
        assert (
            dfs.evaluate(query, timeout=60.0).pairs
            == bfs.evaluate(query, timeout=60.0).pairs
        )


# ----------------------------------------------------------------------
# Prepared-expression caching
# ----------------------------------------------------------------------


def test_prepare_memo_within_one_evaluate(kg_index):
    """A v-to-v evaluation needs E, ^E, and E again — the per-call
    memo must collapse the repeats even with the LRU disabled."""
    engine = RingRPQEngine(kg_index, prepare_cache_size=0)
    result = engine.evaluate("(?x, p0/p1*, ?y)", timeout=60.0)
    stats = result.stats
    assert stats.prepares == 3
    # expr, expr again (phase 1 shares the memo entry), reverse(expr):
    # only the reverse is a genuinely new compilation.
    assert stats.prepare_cache_hits == 1


def test_prepare_lru_hits_across_evaluates(kg_index):
    engine = RingRPQEngine(kg_index, prepare_cache_size=8)
    first = engine.evaluate("(?x, p0/p1*, ?y)", timeout=60.0)
    assert first.stats.prepare_cache_hits < first.stats.prepares
    second = engine.evaluate("(?x, p0/p1*, ?y)", timeout=60.0)
    # Every compilation now comes from the LRU: equal expression trees
    # (and their reverses) hash to the cached entries.
    assert second.stats.prepare_cache_hits == second.stats.prepares
    assert second.pairs == first.pairs


def test_prepare_lru_is_bounded(kg_index):
    engine = RingRPQEngine(kg_index, prepare_cache_size=4)
    for pid in range(10):
        engine.evaluate(f"(?x, p{pid % 12}, n1)", timeout=60.0)
    assert len(engine._prepare_cache) <= 4


def test_prepare_lru_disabled_keeps_no_state(kg_index):
    engine = RingRPQEngine(kg_index, prepare_cache_size=0)
    engine.evaluate("(?x, p0, n1)", timeout=60.0)
    engine.evaluate("(?x, p0, n1)", timeout=60.0)
    assert len(engine._prepare_cache) == 0


def test_prepare_cache_keyed_on_expression(kg_index):
    """Different expressions must not collide; equal ones must."""
    engine = RingRPQEngine(kg_index, prepare_cache_size=8)
    engine.evaluate("(?x, p0, n1)", timeout=60.0)
    r_other = engine.evaluate("(?x, p1, n1)", timeout=60.0)
    assert r_other.stats.prepare_cache_hits == 0
    r_again = engine.evaluate("(?x, p0, n1)", timeout=60.0)
    assert r_again.stats.prepare_cache_hits == r_again.stats.prepares
