"""Property-based ring/matrix differential testing.

Hypothesis generates the graph, the expression, and the shape; the
property is exact pair-set agreement between the ring engine and the
sparse-matrix backend — on unbounded runs, under a result cap, and
under a zero timeout.  Example counts come from the profile registered
in ``conftest.py`` (``HYPOTHESIS_PROFILE=differential`` deepens the
search in CI), so no ``max_examples`` is pinned here.

Failures are persisted through :func:`tests.harness.save_corpus_case`
under a stable per-test name: the shrinking loop overwrites the file,
so the minimal counterexample is what lands in ``tests/corpus/`` and
gets replayed forever after by ``test_cross_backend.py``.
"""

from __future__ import annotations

import pytest

pytest.importorskip("scipy", reason="matrix backend needs scipy",
                    exc_type=ImportError)

pytestmark = pytest.mark.hypothesis

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import make_engine
from repro.core.engine import RingRPQEngine
from repro.graph.model import Graph
from repro.ring.builder import RingIndex
from tests.harness import save_corpus_case
from tests.test_engine_hypothesis import NODES, expressions, graphs


def _engines(graph):
    index = RingIndex.from_graph(graph)
    return RingRPQEngine(index), make_engine("matrix", index)


def _saving(name, graph, query, note):
    """Persist the (current, possibly shrinking) failing case and let
    the assertion propagate so hypothesis keeps shrinking it."""
    save_corpus_case(name, graph, query, note=note)


@settings(deadline=None)
@given(graph=graphs(), expr=expressions(),
       shape=st.sampled_from(["vv", "vc", "cv", "cc"]),
       s_pick=st.integers(0, 7), o_pick=st.integers(0, 7))
def test_ring_matrix_agree(graph, expr, shape, s_pick, o_pick):
    subject = "?x" if shape[0] == "v" else NODES[s_pick]
    obj = "?y" if shape[1] == "v" else NODES[o_pick]
    query = f"({subject}, {expr}, {obj})"
    ring, matrix = _engines(graph)
    ring_pairs = ring.evaluate(query, timeout=60).pairs
    matrix_pairs = matrix.evaluate(query, timeout=60).pairs
    if ring_pairs != matrix_pairs:
        _saving(
            "hyp_ring_matrix_equiv", graph, query,
            note="hypothesis-shrunk: ring and matrix pair sets diverged",
        )
    assert ring_pairs == matrix_pairs, query


@settings(deadline=None)
@given(graph=graphs(), expr=expressions(), limit=st.integers(0, 6))
def test_ring_matrix_agree_under_limit(graph, expr, limit):
    """Capped runs: both backends return subsets of the same answer
    set, never exceed the cap, and an untagged result is complete."""
    query = f"(?x, {expr}, ?y)"
    ring, matrix = _engines(graph)
    oracle = ring.evaluate(query, timeout=60).pairs
    for backend, engine in (("ring", ring), ("matrix", matrix)):
        result = engine.evaluate(query, timeout=60, limit=limit)
        ok = (
            result.pairs <= oracle
            and len(result.pairs) <= limit
            and (result.stats.truncated or result.pairs == oracle)
            and (limit > 0 or (result.stats.truncated and not result.pairs))
        )
        if not ok:
            _saving(
                "hyp_ring_matrix_limit", graph, query,
                note=(
                    "hypothesis-shrunk: limit-boundary contract broke "
                    f"on the {backend} backend at limit={limit}"
                ),
            )
        assert ok, (backend, query, limit, len(oracle))


@settings(deadline=None)
@given(graph=graphs(), expr=expressions())
def test_ring_matrix_zero_timeout_well_formed(graph, expr):
    """Zero budget: either a timeout-tagged subset or the full answer."""
    query = f"(?x, {expr}, ?y)"
    ring, matrix = _engines(graph)
    oracle = ring.evaluate(query, timeout=60).pairs
    for backend, engine in (("ring", ring), ("matrix", matrix)):
        result = engine.evaluate(query, timeout=0.0)
        ok = result.pairs <= oracle and (
            result.stats.timed_out or result.pairs == oracle
        )
        if not ok:
            _saving(
                "hyp_ring_matrix_timeout", graph, query,
                note=(
                    "hypothesis-shrunk: zero-timeout tagging broke on "
                    f"the {backend} backend"
                ),
            )
        assert ok, (backend, query)
