"""Self-tests of the brute-force oracle and the fuzz generators.

The oracle verifies the engines, so it must itself be verified against
hand-computed answers on tiny graphs.
"""

from __future__ import annotations

import random

from repro.core.query import RPQ
from repro.graph.model import Graph
from repro.testing import brute_force_rpq, random_query, random_regex


class TestOracleByHand:
    def test_chain(self):
        g = Graph([("a", "p", "b"), ("b", "p", "c")])
        assert brute_force_rpq(g, "(?x, p, ?y)") == {
            ("a", "b"), ("b", "c")
        }
        assert brute_force_rpq(g, "(?x, p/p, ?y)") == {("a", "c")}
        assert brute_force_rpq(g, "(?x, p+, ?y)") == {
            ("a", "b"), ("b", "c"), ("a", "c")
        }
        assert brute_force_rpq(g, "(a, p*, ?y)") == {
            ("a", "a"), ("a", "b"), ("a", "c")
        }

    def test_inverse(self):
        g = Graph([("a", "p", "b")])
        assert brute_force_rpq(g, "(b, ^p, ?y)") == {("b", "a")}
        assert brute_force_rpq(g, "(?x, ^p, a)") == {("b", "a")}

    def test_nullable_all_nodes(self):
        g = Graph([("a", "p", "b")])
        assert brute_force_rpq(g, "(?x, p?, ?y)") == {
            ("a", "a"), ("b", "b"), ("a", "b")
        }

    def test_boolean(self):
        g = Graph([("a", "p", "b")])
        assert brute_force_rpq(g, "(a, p, b)") == {("a", "b")}
        assert brute_force_rpq(g, "(b, p, a)") == set()
        assert brute_force_rpq(g, "(a, p*, a)") == {("a", "a")}

    def test_unknown_constant(self):
        g = Graph([("a", "p", "b")])
        assert brute_force_rpq(g, "(zz, p, ?y)") == set()

    def test_cycle(self):
        g = Graph([("a", "p", "b"), ("b", "p", "a")])
        assert brute_force_rpq(g, "(a, p+, a)") == {("a", "a")}
        assert brute_force_rpq(g, "(?x, p/p, ?y)") == {
            ("a", "a"), ("b", "b")
        }

    def test_negated_class(self):
        g = Graph([("a", "p", "b"), ("a", "q", "c")])
        assert brute_force_rpq(g, "(?x, !(p), ?y)") == {("a", "c")}
        # inverse direction: reversed edges avoiding ^p
        assert brute_force_rpq(g, "(?x, !(^p), ?y)") == {("c", "a")}

    def test_symmetric_predicate(self):
        g = Graph([("a", "l", "b"), ("b", "l", "a")],
                  symmetric_predicates=("l",))
        assert brute_force_rpq(g, "(?x, ^l, ?y)") == {
            ("a", "b"), ("b", "a")
        }


class TestGenerators:
    def test_random_regex_parses(self):
        from repro.automata.parser import parse_regex

        rng = random.Random(1)
        for _ in range(100):
            text = random_regex(rng, ["p", "q"], allow_negation=True)
            parse_regex(text)  # must not raise

    def test_random_query_shapes(self):
        g = Graph([("a", "p", "b"), ("b", "q", "c")])
        rng = random.Random(2)
        shapes = set()
        for _ in range(60):
            q = random_query(rng, g)
            assert isinstance(q, RPQ)
            shapes.add(q.shape())
        assert shapes == {"vv", "vc", "cv", "cc"}
