"""Tests for the node/predicate dictionary."""

from __future__ import annotations

import pytest

from repro.errors import ConstructionError, UnknownSymbolError
from repro.graph.model import Graph
from repro.ring.dictionary import Dictionary


def simple_graph() -> Graph:
    return Graph([("a", "p", "b"), ("b", "q", "c")])


class TestFromGraph:
    def test_basic_layout(self):
        d = Dictionary.from_graph(simple_graph())
        assert d.num_nodes == 3
        # originals then inverses
        assert d.predicate_labels == ("p", "q", "^p", "^q")
        assert d.inverse_predicate(d.predicate_id("p")) == \
            d.predicate_id("^p")
        assert d.inverse_predicate(d.predicate_id("^q")) == \
            d.predicate_id("q")

    def test_symmetric_self_inverse(self):
        g = Graph([("a", "l", "b")], symmetric_predicates=("l",))
        d = Dictionary.from_graph(g)
        assert d.predicate_labels == ("l",)
        assert d.inverse_predicate(0) == 0

    def test_custom_orders(self):
        d = Dictionary.from_graph(
            simple_graph(),
            node_order=["c", "a", "b"],
            predicate_order=["q", "p"],
        )
        assert d.node_label(0) == "c"
        assert d.predicate_labels[:2] == ("q", "p")

    def test_node_order_must_cover(self):
        with pytest.raises(ConstructionError):
            Dictionary.from_graph(simple_graph(), node_order=["a", "b"])

    def test_predicate_order_must_match(self):
        with pytest.raises(ConstructionError):
            Dictionary.from_graph(
                simple_graph(), predicate_order=["p", "zz"]
            )


class TestLookup:
    def test_roundtrip(self):
        d = Dictionary.from_graph(simple_graph())
        for node in ("a", "b", "c"):
            assert d.node_label(d.node_id(node)) == node
        for pred in d.predicate_labels:
            assert d.predicate_label(d.predicate_id(pred)) == pred

    def test_unknown_raises(self):
        d = Dictionary.from_graph(simple_graph())
        with pytest.raises(UnknownSymbolError):
            d.node_id("zz")
        with pytest.raises(UnknownSymbolError):
            d.predicate_id("zz")

    def test_has(self):
        d = Dictionary.from_graph(simple_graph())
        assert d.has_node("a") and not d.has_node("zz")
        assert d.has_predicate("^p") and not d.has_predicate("^zz")

    def test_encode_decode_triples(self):
        g = simple_graph()
        comp = g.completion()
        d = Dictionary.from_graph(g)
        encoded = d.encode_triples(comp)
        decoded = {d.decode_triple(t) for t in encoded}
        assert decoded == set(comp)

    def test_involution_validated(self):
        with pytest.raises(ConstructionError):
            Dictionary(["a"], ["p", "^p"], [1, 1])  # not an involution
        with pytest.raises(ConstructionError):
            Dictionary(["a"], ["p", "^p"], [0, 5])  # out of range
        with pytest.raises(ConstructionError):
            Dictionary(["a"], ["p", "^p"], [0])  # wrong length
        # self-inverse everywhere is a legal involution
        Dictionary(["a"], ["p", "q"], [0, 1])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ConstructionError):
            Dictionary(["a", "a"], ["p"], [0])

    def test_size_in_bits(self):
        d = Dictionary.from_graph(simple_graph())
        assert d.size_in_bits() > 0
