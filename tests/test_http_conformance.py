"""Protocol conformance: the socket answers exactly like the process.

Replays every ``tests/corpus/`` case through a live
:class:`~repro.serve.http.HTTPQueryServer` socket and holds the wire
answers to the same contract the in-process harness enforces:

* **bit-identical pairs** — the reassembled NDJSON pages equal the
  brute-force oracle's sorted pair list *and* the in-process Ticket
  API's answer for the same query on the same service;
* **budget tags** — a zero budget over the socket yields the same
  degradation contract as in-process: a subset of the oracle tagged
  ``timed_out`` + ``truncated``, or the complete untagged answer when
  the query finished between budget ticks; a cancelled query's
  trailer carries ``cancelled`` (or, when cancellation lost the race,
  the complete untagged answer).

A serialization layer that reordered, deduplicated differently,
stringified, or dropped tags would fail here and nowhere else.
"""

from __future__ import annotations

import json

import pytest

from repro.ring.builder import RingIndex
from repro.serve.http import reassemble_pages
from repro.testing import brute_force_rpq
from tests.harness import iter_corpus
from tests.http_utils import (
    post_query,
    request,
    served,
    stream_pairs,
    wait_until,
)

pytestmark = pytest.mark.http

CORPUS = list(iter_corpus())
assert CORPUS, "tests/corpus is empty — the conformance suite needs it"


def _corpus_params():
    for name, graph, queries in CORPUS:
        for i, query in enumerate(queries):
            yield pytest.param(graph, query, id=f"{name}[{i}]")


@pytest.mark.parametrize("graph,query", _corpus_params())
def test_socket_pairs_bit_identical_to_oracle(graph, query):
    index = RingIndex.from_graph(graph)
    oracle = sorted(brute_force_rpq(graph, query))
    with served(index, workers=1) as (service, server, _):
        in_process = sorted(service.evaluate(query, timeout=60).pairs)
        status, _, records = post_query(server, query,
                                        timeout_ms=60_000, page_size=7)
    assert status == 200
    wire = reassemble_pages(records)
    assert wire == oracle
    assert wire == in_process
    stats = records[-1]["stats"]
    assert not stats["timed_out"] and not stats["truncated"]
    assert not stats["cancelled"]


@pytest.mark.parametrize("graph,query", _corpus_params())
def test_socket_budget_tags_match_degradation_contract(graph, query):
    index = RingIndex.from_graph(graph)
    oracle = set(brute_force_rpq(graph, query))
    with served(index, workers=1) as (_, server, _):
        status, _, records = post_query(server, query, timeout_ms=0)
    assert status == 200  # zero budget degrades, never errors
    pairs = set(stream_pairs(records))
    stats = records[-1]["stats"]
    assert pairs <= oracle
    if stats["timed_out"]:
        assert stats["truncated"]
    else:
        # Finished between budget ticks: must be the full answer.
        assert pairs == oracle


@pytest.mark.parametrize(
    "graph,query", list(_corpus_params())[:4],
)
def test_socket_cancel_tag_contract(graph, query):
    index = RingIndex.from_graph(graph)
    oracle = set(brute_force_rpq(graph, query))
    with served(index, workers=1) as (_, server, _):
        _, _, raw = request(server, "POST", "/submit",
                            {"query": str(query)})
        qid = json.loads(raw)["query_id"]
        request(server, "POST", f"/cancel/{qid}")

        def settled():
            code, _, body = request(server, "GET", f"/status/{qid}")
            return code == 200 and json.loads(body)["done"]

        wait_until(settled)
        code, _, body = request(server, "GET", f"/result/{qid}")
    assert code == 200
    records = [json.loads(line)
               for line in body.decode("utf-8").splitlines()]
    pairs = set(stream_pairs(records))
    stats = records[-1]["stats"]
    assert pairs <= oracle
    if not stats["cancelled"]:
        # Cancellation lost the race: the answer must be complete.
        assert pairs == oracle


@pytest.mark.parametrize("graph,query", list(_corpus_params())[:4])
def test_socket_limit_truncation_contract(graph, query):
    index = RingIndex.from_graph(graph)
    oracle = sorted(brute_force_rpq(graph, query))
    if len(oracle) < 2:
        pytest.skip("needs at least two answers to truncate")
    limit = len(oracle) - 1
    with served(index, workers=1) as (_, server, _):
        status, _, records = post_query(server, query, limit=limit)
    assert status == 200
    pairs = stream_pairs(records)
    assert len(pairs) <= limit
    assert set(pairs) <= set(oracle)
    stats = records[-1]["stats"]
    if not stats["truncated"]:
        assert set(pairs) == set(oracle)
