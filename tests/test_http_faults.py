"""Fault injection against the HTTP front door, over real sockets.

Three failure families, each asserted from the *server's* side
effects, not just the client's view:

* **client disconnects** — a peer that vanishes mid-request must
  cancel its Ticket: no leaked admission slot, load gauges back to
  zero, the evaluation (queued or running) stopped cooperatively;
* **slow readers** — one connection that refuses to drain a large
  stream must stall only itself (per-connection backpressure), never
  other connections on the same loop;
* **malformed input** — bad JSON, bad regexes, protocol garbage and
  oversized bodies return *typed* 4xx bodies, and shutdown ordering
  (service closed under a live server) returns clean 503s instead of
  raising into the event loop.
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time

import pytest

from repro.core.result import QueryResult, QueryStats
from repro.errors import ServiceClosedError
from tests.http_utils import (
    post_query,
    raw_connection,
    request,
    send_raw_query,
    served,
    stream_pairs,
    ndjson,
    wait_until,
)

pytestmark = pytest.mark.http


class BlockingEngine:
    """Evaluations block until released (or cancelled)."""

    name = "blocking"

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def evaluate(self, query, timeout=None, limit=None, metrics=None,
                 cancel=None):
        self.started.set()
        while not self.release.wait(0.01):
            if cancel is not None and cancel.is_set():
                stats = QueryStats()
                stats.cancelled = True
                return QueryResult(stats=stats)
        return QueryResult(pairs={("a", "b")}, stats=QueryStats())


class SyntheticEngine:
    """Result size keyed on the query text: ``fat`` streams megabytes."""

    name = "synthetic"

    def __init__(self, fat_pairs: int = 400_000):
        self.fat = {
            (f"s{i:06d}", f"o{i:06d}") for i in range(fat_pairs)
        }

    def evaluate(self, query, timeout=None, limit=None, metrics=None,
                 cancel=None):
        pairs = self.fat if "fat" in str(query) else {("a", "b")}
        return QueryResult(pairs=set(pairs), stats=QueryStats())


def _gauges_zero(service, metrics):
    return (
        service.admission.pending == 0
        and service.admission.inflight == 0
        and metrics.gauges.get("serve.queue_depth", 0) == 0
        and metrics.gauges.get("serve.inflight", 0) == 0
    )


class TestClientDisconnect:
    def test_disconnect_cancels_running_query(self, small_index):
        engine = BlockingEngine()
        with served(small_index, engine=engine, workers=1) as (
            service, server, metrics,
        ):
            sock = raw_connection(server)
            send_raw_query(sock, {"query": "(?x, p0, ?y)"})
            assert engine.started.wait(5)
            assert service.admission.inflight == 1
            sock.close()  # the client vanishes mid-evaluation
            # Cooperative cancel stops the engine without release.
            wait_until(lambda: _gauges_zero(service, metrics))
            assert metrics.counters["serve.http.client_disconnects"] == 1
            assert metrics.counters["serve.cancelled"] == 1

    def test_disconnect_cancels_queued_query(self, small_index):
        engine = BlockingEngine()
        with served(small_index, engine=engine, workers=1) as (
            service, server, metrics,
        ):
            # Occupy the only worker, then queue a doomed request.
            _, _, raw = request(
                server, "POST", "/submit", {"query": "(?x, p0, ?y)"}
            )
            assert engine.started.wait(5)
            sock = raw_connection(server)
            send_raw_query(sock, {"query": "(?x, p1, ?y)"})
            wait_until(lambda: service.admission.pending == 2)
            sock.close()
            wait_until(
                lambda: metrics.counters.get(
                    "serve.http.client_disconnects", 0) == 1
            )
            # Unblock the worker: the ghost dequeues already-cancelled
            # and settles without ever reaching the engine.
            engine.release.set()
            wait_until(lambda: _gauges_zero(service, metrics))
            assert metrics.counters["serve.cancelled"] == 1

    def test_open_connection_gauge_returns_to_zero(self, small_index):
        with served(small_index) as (service, server, metrics):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            assert records[-1]["kind"] == "trailer"
            wait_until(
                lambda: metrics.gauges.get(
                    "serve.http.open_connections", 0) == 0
            )


class TestSlowReader:
    def test_slow_reader_does_not_stall_other_connections(
        self, small_index,
    ):
        engine = SyntheticEngine()
        with served(small_index, engine=engine, workers=1) as (
            service, server, _,
        ):
            # A stalled reader: tiny receive buffer, never reads while
            # the server streams a ~10 MB answer at it.
            stalled = socket.socket()
            stalled.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
            stalled.settimeout(60)
            stalled.connect((server.host, server.port))
            send_raw_query(
                stalled, {"query": "(?x, fat, ?y)", "page_size": 500}
            )
            time.sleep(0.5)  # let the stream hit the write barrier
            try:
                # Meanwhile other connections must complete promptly.
                t0 = time.monotonic()
                for _ in range(5):
                    status, _, records = post_query(
                        server, "(?x, quick, ?y)", timeout=10
                    )
                    assert status == 200
                    assert stream_pairs(records) == [("a", "b")]
                assert time.monotonic() - t0 < 5.0
                # The stalled stream is intact once actually drained.
                chunks = []
                while True:
                    data = stalled.recv(1 << 16)
                    if not data:
                        break
                    chunks.append(data)
                    if b"0\r\n\r\n" in data[-8:]:
                        break
                payload = b"".join(chunks)
            finally:
                stalled.close()
            body = payload.split(b"\r\n\r\n", 1)[1]
            # De-chunk and reassemble: nothing was lost or reordered.
            lines = []
            at = 0
            while True:
                eol = body.index(b"\r\n", at)
                size = int(body[at:eol], 16)
                if size == 0:
                    break
                lines.append(body[eol + 2:eol + 2 + size])
                at = eol + 2 + size + 2
            records = ndjson(b"".join(lines))
            assert records[-1]["kind"] == "trailer"
            assert len(stream_pairs(records)) == len(engine.fat)


class TestMalformedInput:
    def test_invalid_json_typed_400(self, small_index):
        with served(small_index) as (_, server, _):
            code, _, raw = request(server, "POST", "/query", b"{nope")
            assert code == 400
            assert json.loads(raw)["error"] == "invalid_json"

    def test_regex_syntax_typed_400(self, small_index):
        with served(small_index) as (_, server, _):
            code, _, body = post_query(server, "(?x, ((p0, ?y)")
            assert code == 400
            assert body["error"] == "regex_syntax"
            assert "detail" in body

    def test_bad_request_shapes_typed_400(self, small_index):
        cases = [
            {"query": 7},
            {"query": ""},
            {"nope": "x"},
            [1, 2, 3],
            {"query": "(?x, p0, ?y)", "timeout_ms": -5},
            {"query": "(?x, p0, ?y)", "limit": "many"},
            {"query": "(?x, p0, ?y)", "page_size": 0},
        ]
        with served(small_index) as (_, server, _):
            for payload in cases:
                code, _, raw = request(server, "POST", "/query", payload)
                assert code == 400, payload
                assert json.loads(raw)["error"] == "bad_request", payload

    def test_oversized_body_413(self, small_index):
        # The server rejects on the declared Content-Length and closes
        # without draining the body, so the client may catch EPIPE
        # mid-send; a raw socket lets us keep reading the 413 that was
        # already written either way.
        with served(small_index) as (_, server, _):
            blob = b"x" * (2 * 1024 * 1024)
            sock = raw_connection(server)
            try:
                head = (
                    "POST /query HTTP/1.1\r\nHost: t\r\n"
                    f"Content-Length: {len(blob)}\r\n\r\n"
                ).encode("latin-1")
                with contextlib.suppress(BrokenPipeError,
                                         ConnectionResetError):
                    sock.sendall(head + blob)
                reply = b""
                with contextlib.suppress(ConnectionResetError):
                    while chunk := sock.recv(4096):
                        reply += chunk
                assert b" 413 " in reply.split(b"\r\n", 1)[0]
            finally:
                sock.close()

    def test_protocol_garbage_400_and_close(self, small_index):
        with served(small_index) as (_, server, _):
            sock = raw_connection(server)
            try:
                sock.sendall(b"GARBAGE\r\n\r\n")
                reply = sock.recv(4096)
                assert b"400" in reply.split(b"\r\n", 1)[0]
                # The server closes after a protocol error.
                assert sock.recv(4096) == b""
            finally:
                sock.close()

    def test_bad_content_length_400(self, small_index):
        with served(small_index) as (_, server, _):
            sock = raw_connection(server)
            try:
                sock.sendall(
                    b"POST /query HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: banana\r\n\r\n"
                )
                reply = sock.recv(4096)
                assert b"400" in reply.split(b"\r\n", 1)[0]
            finally:
                sock.close()


class TestShutdownOrdering:
    def test_submit_after_service_close_maps_to_503(self, small_index):
        with served(small_index) as (service, server, _):
            _, _, records = post_query(server, "(?x, p0, ?y)")
            assert records[-1]["kind"] == "trailer"
            service.close()
            # The socket stays up while the service drains: late
            # submissions get typed 503s, not an event-loop crash.
            for path in ("/query", "/submit"):
                code, _, raw = request(
                    server, "POST", path, {"query": "(?x, p0, ?y)"}
                )
                assert code == 503, path
                assert json.loads(raw)["error"] == "service_closed"
            code, _, raw = request(server, "GET", "/healthz")
            assert code == 503
            assert json.loads(raw)["status"] == "closed"

    def test_service_close_error_is_typed_runtimeerror(self, small_index):
        from repro.serve import QueryService

        service = QueryService(small_index, workers=1)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit("(?x, p0, ?y)")
        # Back-compat: it is still a RuntimeError for older callers.
        with pytest.raises(RuntimeError):
            service.submit("(?x, p0, ?y)")
