"""Tests for the live telemetry plane: sampler, profiler, query log,
and the HTTP endpoint served over a running :class:`QueryService`.

The end-to-end test is the PR's acceptance check: boot a real service
with every telemetry component attached, run a workload, scrape
``/metrics`` over actual HTTP and validate the Prometheus exposition
semantics (cumulative buckets ending in ``+Inf``, ``_sum``/``_count``
consistency, counter/gauge round-trips), then join one query's
``query_id`` across the query log, the slow log and the span tree.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.result import QueryStats
from repro.obs import (
    Metrics,
    QueryLogWriter,
    ResourceSampler,
    SamplingProfiler,
    TelemetryServer,
    prometheus_text,
    read_query_log,
)
from repro.obs.httpd import PROMETHEUS_CONTENT_TYPE
from repro.obs.sampler import PROCESS_GAUGES, read_rss_bytes
from repro.obs.slowlog import SlowQueryLog
from repro.serve import QueryService


# ----------------------------------------------------------------------
# Resource sampler
# ----------------------------------------------------------------------


class TestResourceSampler:
    def test_read_rss_is_positive(self):
        assert read_rss_bytes() > 0

    def test_sample_once_records_vitals_and_gauges(self):
        metrics = Metrics()
        metrics.set_gauge("serve.queue_depth", 3.0)
        metrics.set_gauge("unrelated.gauge", 9.0)
        sampler = ResourceSampler(metrics=metrics, interval=0.01)
        readings = sampler.sample_once()
        assert readings["process.rss_bytes"] > 0
        assert readings["process.threads"] >= 1
        # Every standard vital got a series point.
        for name in PROCESS_GAUGES:
            assert name in sampler.series, name
            assert len(sampler.series[name]) == 1
        # serve.* gauges are mirrored into series; others are not.
        assert sampler.series["serve.queue_depth"].last() == 3.0
        assert "unrelated.gauge" not in sampler.series
        # The registry now carries process.* gauges, so the standard
        # Prometheus exporter emits the repro_process_* family with no
        # exporter changes (satellite: standard process metrics).
        text = prometheus_text(metrics)
        assert "repro_process_rss_bytes " in text
        assert "repro_process_cpu_seconds " in text

    def test_background_thread_ticks_and_peak(self):
        sampler = ResourceSampler(interval=0.01)
        with sampler:
            time.sleep(0.06)
        assert sampler.ticks >= 2
        assert sampler.peak("process.rss_bytes") > 0
        last = sampler.process_metrics()
        assert last["process.peak_rss_bytes"] >= last["process.rss_bytes"]
        snap = sampler.snapshot(max_points=5)
        assert snap["ticks"] == sampler.ticks
        assert len(snap["series"]["process.rss_bytes"]["points"]) <= 5

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            ResourceSampler(interval=0.0)


# ----------------------------------------------------------------------
# Sampling profiler
# ----------------------------------------------------------------------


def _spin(inside: threading.Event, release: threading.Event) -> None:
    inside.set()
    while not release.is_set():
        sum(range(50))


def backward_step_many(inside, release):
    # Named after a real engine function so PHASE_BY_FUNCTION maps the
    # sampled stack to its paper phase (subjects_from_predicates).
    _spin(inside, release)


def _unmapped_wrapper(inside, release):
    _spin(inside, release)


class _BusyThread:
    """A thread guaranteed to be inside ``target`` while sampled."""

    def __init__(self, target):
        self.inside = threading.Event()
        self.release = threading.Event()
        self.thread = threading.Thread(
            target=target, args=(self.inside, self.release), daemon=True
        )

    def __enter__(self) -> "_BusyThread":
        self.thread.start()
        assert self.inside.wait(5)
        return self

    def __exit__(self, *exc) -> None:
        self.release.set()
        self.thread.join(5)


class TestSamplingProfiler:
    def test_busy_thread_produces_stacks_and_phase(self):
        profiler = SamplingProfiler(module_prefixes=(__name__,))
        with _BusyThread(backward_step_many):
            recorded = profiler.sample()
        assert recorded >= 1
        assert profiler.samples == 1
        counts = profiler.stack_counts()
        assert counts
        (stack, n), = list(counts.items())[:1] or [((), 0)]
        # Outermost-first: the wrapper encloses the spin loop.
        assert any("backward_step_many" in label for label in stack)
        assert stack[-1].endswith(":_spin")
        # Phase attribution walked past the unmapped innermost frame.
        assert profiler.hot_phases() == {"subjects_from_predicates": 1}
        collapsed = profiler.collapsed()
        assert collapsed.strip().endswith(" 1")
        assert ";" in collapsed
        snap = profiler.snapshot()
        assert snap["samples"] == 1
        assert snap["top_stacks"][0]["samples"] == 1

    def test_ignored_thread_is_skipped(self):
        profiler = SamplingProfiler(module_prefixes=(__name__,))
        with _BusyThread(backward_step_many) as busy:
            profiler.ignore_thread(busy.thread)
            recorded = profiler.sample()
        assert recorded == 0
        assert profiler.stack_counts() == {}

    def test_max_stacks_truncates_novel_shapes(self):
        profiler = SamplingProfiler(module_prefixes=(__name__,),
                                    max_stacks=1)
        with _BusyThread(backward_step_many):
            profiler.sample()
        with _BusyThread(_unmapped_wrapper):
            profiler.sample()
        assert profiler.truncated_stacks >= 1
        assert any(
            stack[0].startswith("(truncated:")
            for stack in profiler.stack_counts()
            if len(stack) == 1
        )

    def test_reset(self):
        profiler = SamplingProfiler(module_prefixes=(__name__,))
        with _BusyThread(backward_step_many):
            profiler.sample()
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.stack_counts() == {}
        assert profiler.collapsed() == ""


# ----------------------------------------------------------------------
# Query log
# ----------------------------------------------------------------------


class TestQueryLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        stats = QueryStats()
        stats.elapsed = 0.5
        writer = QueryLogWriter(path, clock=lambda: 123.0)
        writer.log("q1", "(?x, p0, ?y)", stats, n_results=2,
                   wait_seconds=0.01, engine="serve/ring")
        timed = QueryStats()
        timed.timed_out = True
        timed.truncated = True
        writer.log("q2", "(?x, p1, ?y)", timed)
        writer.close()
        records = read_query_log(path)
        assert [r["query_id"] for r in records] == ["q1", "q2"]
        first, second = records
        assert first == {
            "schema_version": 2, "ts": 123.0, "query_id": "q1",
            "query": "(?x, p0, ?y)", "backend": "serve/ring",
            "cache_hit": False, "elapsed": 0.5, "n_results": 2,
            "wait_seconds": 0.01, "engine": "serve/ring",
        }
        # Outcome flags appear only when set.
        assert second["timed_out"] and second["truncated"]
        assert "cached" not in second and "cancelled" not in second
        assert second["schema_version"] == 2
        assert writer.written == 2

    def test_counters_opt_in(self, tmp_path):
        path = tmp_path / "queries.jsonl"
        with QueryLogWriter(path, counters=True) as writer:
            writer.log("q1", "(?x, p0, ?y)", QueryStats())
        (record,) = read_query_log(path)
        assert "counters" in record

    def test_file_object_target_not_closed(self, tmp_path):
        handle = open(tmp_path / "q.jsonl", "a", encoding="utf-8")
        writer = QueryLogWriter(handle)
        writer.log("q1", "x", QueryStats())
        writer.close()
        assert not handle.closed
        handle.close()


# ----------------------------------------------------------------------
# End-to-end: live HTTP scrape over a running service
# ----------------------------------------------------------------------


def _get(url: str, timeout: float = 10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (response.status, response.headers.get("Content-Type"),
                response.read().decode("utf-8"))


def _parse_prometheus(text: str) -> dict:
    """Parse an exposition document into ``name -> [(labels, value)]``."""
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_part, value_part = line.rsplit(" ", 1)
        labels: dict[str, str] = {}
        if "{" in name_part:
            name, raw = name_part.split("{", 1)
            raw = raw.rstrip("}")
            for pair in raw.split(","):
                key, val = pair.split("=", 1)
                labels[key] = val.strip('"')
        else:
            name = name_part
        samples.setdefault(name, []).append((labels, float(value_part)))
    return samples


@pytest.mark.concurrency
class TestTelemetryEndToEnd:
    @pytest.fixture()
    def plane(self, kg_index, tmp_path):
        """A live service with every telemetry component attached."""
        metrics = Metrics(span_capacity=512)
        slow_log = SlowQueryLog(capacity=8)
        query_log = QueryLogWriter(tmp_path / "queries.jsonl")
        service = QueryService(
            kg_index, workers=2, cache_size=8, metrics=metrics,
            slow_log=slow_log, query_log=query_log,
        )
        profiler = SamplingProfiler()
        sampler = ResourceSampler(
            metrics=metrics, lock=service.obs_lock, interval=0.02,
            profiler=profiler,
        )
        httpd = TelemetryServer(
            metrics, lock=service.obs_lock, service=service,
            sampler=sampler, profiler=profiler, slow_log=slow_log,
        )
        sampler.start()
        httpd.start()
        try:
            yield {
                "service": service, "metrics": metrics,
                "slow_log": slow_log, "sampler": sampler,
                "httpd": httpd,
                "query_log_path": tmp_path / "queries.jsonl",
            }
        finally:
            httpd.stop()
            sampler.stop()
            service.close()
            query_log.close()

    def test_live_scrape(self, plane):
        service = plane["service"]
        httpd = plane["httpd"]
        for query in ("(?x, p0/p1, ?y)", "(?x, p2, ?y)",
                      "(?x, p0/p1, ?y)"):
            service.evaluate(query)
        plane["sampler"].sample_once()

        status, content_type, body = _get(httpd.url + "/metrics")
        assert status == 200
        assert content_type == PROMETHEUS_CONTENT_TYPE
        samples = _parse_prometheus(body)

        # Counter round-trip: the scraped value equals the registry's.
        metrics = plane["metrics"]
        (_, submitted), = samples["repro_serve_submitted_total"]
        assert submitted == metrics.count("serve.submitted") == 3.0
        (_, hits), = samples["repro_serve_cache_hits_total"]
        assert hits == 1.0

        # Gauge round-trip, including the sampler's process family.
        (_, cache_size), = samples["repro_serve_cache_size"]
        assert cache_size == metrics.gauge("serve.cache_size") == 2.0
        (_, rss), = samples["repro_process_rss_bytes"]
        assert rss > 0
        assert "repro_process_threads" in samples

        # Histogram semantics: cumulative buckets ending at +Inf that
        # agree with _count, and a plausible _sum.
        for family in ("repro_serve_query_seconds",
                       "repro_serve_wait_seconds"):
            buckets = samples[f"{family}_bucket"]
            counts = [value for _, value in buckets]
            assert counts == sorted(counts), family
            assert buckets[-1][0]["le"] == "+Inf"
            (_, count), = samples[f"{family}_count"]
            assert buckets[-1][1] == count
            (_, total), = samples[f"{family}_sum"]
            # The cache hit settles at submit time: it never waits in
            # the queue nor runs the engine, so both latency
            # histograms saw exactly the two executed queries.
            assert count == 2.0 and total >= 0.0

    def test_healthz_and_vars_and_profile(self, plane):
        service = plane["service"]
        httpd = plane["httpd"]
        service.evaluate("(?x, p0, ?y)")
        plane["sampler"].sample_once()

        status, content_type, body = _get(httpd.url + "/healthz")
        assert status == 200 and content_type == "application/json"
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["queue_depth"] == 0 and health["inflight"] == 0

        status, _, body = _get(httpd.url + "/debug/vars")
        assert status == 200
        snapshot = json.loads(body)
        assert snapshot["counters"]["serve.submitted"] == 1
        assert snapshot["service"]["workers"] == 2
        assert snapshot["slow_log"]["entries"]
        assert "span_tree" not in snapshot["slow_log"]["entries"][0]
        series = snapshot["timeseries"]["series"]
        assert series["process.rss_bytes"]["count"] >= 1
        assert "profile" in snapshot

        status, _, body = _get(httpd.url + "/debug/profile")
        assert status == 200  # may legitimately be empty this early

        status, _, body = _get(httpd.url + "/")
        assert status == 200 and "/metrics" in body

        with pytest.raises(urllib.error.HTTPError) as info:
            _get(httpd.url + "/nope")
        assert info.value.code == 404

    def test_healthz_degrades_after_close(self, plane):
        plane["service"].close()
        with pytest.raises(urllib.error.HTTPError) as info:
            _get(plane["httpd"].url + "/healthz")
        assert info.value.code == 503
        assert json.loads(info.value.read())["status"] == "closed"
        # /metrics still serves — post-mortem scrapes see zeroed load
        # gauges rather than connection errors.
        _, _, body = _get(plane["httpd"].url + "/metrics")
        samples = _parse_prometheus(body)
        assert samples["repro_serve_queue_depth"][0][1] == 0.0
        assert samples["repro_serve_inflight"][0][1] == 0.0

    def test_query_id_joins_logs_and_spans(self, plane):
        service = plane["service"]
        # Force every query into the slow log (tiny threshold default).
        result = service.evaluate("(?x, p0/p1, ?y)")
        qid = result.stats.query_id
        assert qid  # the service minted one

        # Query log: one line carries the same id.
        records = read_query_log(plane["query_log_path"])
        (record,) = [r for r in records if r["query_id"] == qid]
        assert record["query"] == "(?x, p0/p1, ?y)"
        assert record["engine"].startswith("serve/")

        # Slow log: the entry for this query carries the id too.
        entries = plane["slow_log"].entries()
        assert any(e.query_id == qid for e in entries)
        assert any(
            e.to_dict().get("query_id") == qid for e in entries
        )

        # Span tree: the engine stamped the id onto its query span.
        spans = plane["metrics"].spans.spans
        assert any(
            s.attrs and s.attrs.get("query_id") == qid for s in spans
        )
