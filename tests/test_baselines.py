"""Unit tests for the baseline engines against the brute-force oracle."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AlpEngine,
    AlpPlannerEngine,
    EncodedGraph,
    ProductBFSEngine,
    SemiNaiveEngine,
    all_engines,
    make_engine,
)
from repro.baselines.registry import PAPER_NAMES, TABLE2_ENGINES
from repro.errors import ConstructionError
from repro.graph.generators import chain_graph, random_graph
from repro.graph.model import Graph
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq

ENGINE_CLASSES = [
    ProductBFSEngine, AlpEngine, AlpPlannerEngine, SemiNaiveEngine
]

QUERIES = [
    "(?x, p0, ?y)",
    "(?x, ^p0, ?y)",
    "(?x, p0/p1, ?y)",
    "(?x, p0|p1, ?y)",
    "(?x, p0*, ?y)",
    "(?x, p0+, ?y)",
    "(?x, p0?, ?y)",
    "(?x, p0/p1*, ?y)",
    "(?x, (p0|p1)+, ?y)",
    "(?x, !(p0), ?y)",
    "(?x, !(^p1), ?y)",
    "(n1, p0*, ?y)",
    "(?x, p0+, n2)",
    "(n0, p0/p1, n3)",
    "(n5, p1*, n5)",
]


@pytest.fixture(scope="module")
def setup():
    graph = random_graph(n_nodes=12, n_edges=36, n_predicates=2, seed=21)
    index = RingIndex.from_graph(graph)
    encoded = EncodedGraph.from_index(index)
    return graph, graph.completion(), encoded


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
@pytest.mark.parametrize("query", QUERIES)
def test_engine_matches_oracle(setup, engine_cls, query):
    graph, completed, encoded = setup
    engine = engine_cls(encoded)
    expected = brute_force_rpq(graph, query, completed)
    got = engine.evaluate(query, timeout=30).pairs
    assert got == expected, (engine_cls.__name__, query)


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
def test_unknown_constant_is_empty(setup, engine_cls):
    _, _, encoded = setup
    engine = engine_cls(encoded)
    assert not engine.evaluate("(ghost, p0, ?y)")


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
def test_limit_truncates(setup, engine_cls):
    _, _, encoded = setup
    engine = engine_cls(encoded)
    result = engine.evaluate("(?x, (p0|p1)*, ?y)", limit=5)
    assert len(result) <= 5
    assert result.stats.truncated or len(result) < 5


@pytest.mark.parametrize("engine_cls", ENGINE_CLASSES)
def test_timeout_flag(setup, engine_cls):
    _, _, encoded = setup
    engine = engine_cls(encoded)
    result = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=0.0)
    assert result.stats.timed_out or len(result) >= 0


class TestEncodedGraph:
    def test_from_index_roundtrip(self, setup):
        graph, completed, encoded = setup
        decoded = {
            encoded.dictionary.decode_triple(t) for t in encoded.triples
        }
        assert decoded == set(completed)

    def test_targets_probe(self, setup):
        _, completed, encoded = setup
        d = encoded.dictionary
        s, p, o = encoded.triples[0]
        assert o in encoded.targets(s, p)
        assert encoded.targets(s, 10**6 % encoded.num_predicates) == \
            encoded.targets(s, 10**6 % encoded.num_predicates)

    def test_predicate_count(self, setup):
        _, completed, encoded = setup
        total = sum(
            encoded.predicate_count(p)
            for p in range(encoded.num_predicates)
        )
        assert total == len(encoded.triples)

    def test_size_in_bits(self, setup):
        _, _, encoded = setup
        assert encoded.size_in_bits() > 0


class TestRegistry:
    def test_all_engines_line_up(self):
        index = RingIndex.from_graph(chain_graph(3))
        engines = all_engines(index)
        assert tuple(engines) == TABLE2_ENGINES
        for name in TABLE2_ENGINES:
            assert name in PAPER_NAMES

    def test_make_engine_unknown(self):
        index = RingIndex.from_graph(chain_graph(3))
        with pytest.raises(ConstructionError):
            make_engine("nope", index)

    def test_engines_share_answers(self):
        graph = Graph([("a", "p", "b"), ("b", "p", "c")])
        index = RingIndex.from_graph(graph)
        engines = all_engines(index, TABLE2_ENGINES + ("product-bfs",))
        answers = {
            name: engine.evaluate("(?x, p+, ?y)").pairs
            for name, engine in engines.items()
        }
        reference = answers["ring"]
        assert reference == {("a", "b"), ("a", "c"), ("b", "c")}
        assert all(a == reference for a in answers.values())
