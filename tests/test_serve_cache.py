"""Cache-correctness tests: keys, normalization, and serving policy.

A result cache over an RPQ engine is only sound if (a) two queries
sharing a key provably share an answer set and (b) partial results are
never served where a complete one was asked for.  These tests pin both
halves differentially: normalization variants must hit one cache line
*and* agree with the engine; completeness rules must never let a
truncated entry leak into an uncapped request.
"""

from __future__ import annotations

import pytest

from repro.automata.parser import parse_regex
from repro.core.engine import RingRPQEngine
from repro.core.query import as_query
from repro.core.result import QueryResult, QueryStats
from repro.graph.generators import random_graph
from repro.obs.metrics import Metrics
from repro.ring.builder import RingIndex
from repro.serve import (
    QueryService,
    ResultCache,
    index_fingerprint,
    normalize_expr,
    query_cache_key,
)


def norm(text: str) -> str:
    return str(normalize_expr(parse_regex(text)))


class TestNormalization:
    @pytest.mark.parametrize("a, b", [
        ("a|b", "b|a"),
        ("a|b|a", "b|a"),
        ("a/(b/c)", "(a/b)/c"),
        ("(a*)*", "a*"),
        ("(a+)*", "a*"),
        ("(a?)*", "a*"),
        ("(a*)+", "a*"),
        ("(a+)+", "a+"),
        ("(a?)+", "a*"),
        ("(a*)?", "a*"),
        ("(a+)?", "a*"),
        ("(a?)?", "a?"),
        ("(a)", "a"),
        ("a|(b|c)", "(a|b)|c"),
    ])
    def test_equivalent_forms_normalize_identically(self, a, b):
        assert norm(a) == norm(b)

    @pytest.mark.parametrize("a, b", [
        ("a/b", "b/a"),      # concatenation is NOT commutative
        ("a*", "a+"),        # ε-acceptance differs
        ("a", "a?"),
        ("a|b", "a/b"),
    ])
    def test_inequivalent_forms_stay_distinct(self, a, b):
        assert norm(a) != norm(b)

    def test_normalization_preserves_answers(self, kg_index):
        """The differential check behind every rewrite rule: the
        normalized expression evaluates to the same pair set."""
        engine = RingRPQEngine(kg_index)
        for text in ["(p0|p1)|p0", "((p0*)*)?", "p0/(p1/p2)",
                     "(p0+)?", "(^p0|p1)*"]:
            query = f"(?x, {text}, ?y)"
            normalized = str(normalize_expr(parse_regex(text)))
            assert engine.evaluate(query).pairs == engine.evaluate(
                f"(?x, {normalized}, ?y)").pairs, text


class TestCacheKeys:
    def test_variable_names_collapse(self, kg_index):
        fp = index_fingerprint(kg_index)
        k1 = query_cache_key(as_query("(?x, p0/p1, ?y)"), fp)
        k2 = query_cache_key(as_query("(?subject, p0/p1, ?obj)"), fp)
        assert k1 == k2

    def test_constants_do_not_collapse(self, kg_graph, kg_index):
        fp = index_fingerprint(kg_index)
        node = kg_graph.nodes[0]
        k1 = query_cache_key(as_query(f"({node}, p0, ?y)"), fp)
        k2 = query_cache_key(as_query("(?x, p0, ?y)"), fp)
        assert k1 != k2

    def test_normalization_reaches_the_key(self, kg_index):
        fp = index_fingerprint(kg_index)
        k1 = query_cache_key(as_query("(?x, p0|p1, ?y)"), fp)
        k2 = query_cache_key(as_query("(?x, p1|p0|p1, ?y)"), fp)
        assert k1 == k2

    def test_fingerprint_distinguishes_graphs(self):
        g1 = random_graph(n_nodes=30, n_edges=90, n_predicates=4, seed=1)
        g2 = random_graph(n_nodes=30, n_edges=90, n_predicates=4, seed=2)
        fp1 = index_fingerprint(RingIndex.from_graph(g1))
        fp2 = index_fingerprint(RingIndex.from_graph(g2))
        assert fp1 != fp2

    def test_fingerprint_is_memoized_and_stable(self, kg_index):
        assert index_fingerprint(kg_index) == index_fingerprint(kg_index)


def _result(pairs, truncated=False, timed_out=False, cancelled=False,
            cached=False):
    stats = QueryStats()
    stats.truncated = truncated
    stats.timed_out = timed_out
    stats.cancelled = cancelled
    stats.cached = cached
    return QueryResult(pairs=set(pairs), stats=stats)


class TestResultCachePolicy:
    KEY = ("fp", ("v", "?"), "e", ("v", "?"))

    def test_complete_entry_served_only_above_its_size(self):
        cache = ResultCache(8)
        cache.store(self.KEY, None, _result({(1, 2), (3, 4)}))
        # Uncapped and strictly-larger caps hit.
        assert cache.lookup(self.KEY, None).pairs == {(1, 2), (3, 4)}
        assert cache.lookup(self.KEY, 3) is not None
        # limit == len(pairs): the engine would have tagged truncated,
        # so the complete entry must NOT answer.
        assert cache.lookup(self.KEY, 2) is None
        assert cache.lookup(self.KEY, 1) is None

    def test_truncated_entry_needs_exact_limit(self):
        cache = ResultCache(8)
        cache.store(self.KEY, 5, _result({(1, 2)}, truncated=True))
        hit = cache.lookup(self.KEY, 5)
        assert hit is not None and hit.stats.truncated
        # Never served uncapped, nor for any other limit.
        assert cache.lookup(self.KEY, None) is None
        assert cache.lookup(self.KEY, 4) is None
        assert cache.lookup(self.KEY, 6) is None

    def test_timed_out_and_cancelled_never_stored(self):
        cache = ResultCache(8)
        assert not cache.store(self.KEY, None, _result({(1, 2)},
                                                       timed_out=True))
        assert not cache.store(self.KEY, None, _result({(1, 2)},
                                                       cancelled=True))
        assert not cache.store(self.KEY, None, _result({(1, 2)},
                                                       cached=True))
        assert cache.lookup(self.KEY, None) is None
        assert cache.rejected_stores == 3

    def test_hit_returns_fresh_result(self):
        cache = ResultCache(8)
        cache.store(self.KEY, None, _result({(1, 2)}))
        first = cache.lookup(self.KEY, None)
        first.pairs.add((9, 9))  # mutating a hit must not poison it
        second = cache.lookup(self.KEY, None)
        assert second.pairs == {(1, 2)}
        assert second.stats.cached and second.stats.backward_steps == 0

    def test_lru_eviction(self):
        cache = ResultCache(2)
        keys = [("fp", ("v", "?"), e, ("v", "?")) for e in "abc"]
        cache.store(keys[0], None, _result({(0, 0)}))
        cache.store(keys[1], None, _result({(1, 1)}))
        cache.lookup(keys[0], None)                  # refresh key 0
        cache.store(keys[2], None, _result({(2, 2)}))
        assert cache.lookup(keys[0], None) is not None
        assert cache.lookup(keys[1], None) is None   # LRU victim
        assert cache.lookup(keys[2], None) is not None
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        assert not cache.store(self.KEY, None, _result({(1, 2)}))
        assert cache.lookup(self.KEY, None) is None
        assert cache.misses == 1 and cache.hits == 0

    def test_invalidate(self):
        cache = ResultCache(8)
        cache.store(self.KEY, None, _result({(1, 2)}))
        assert cache.invalidate() == 1
        assert cache.lookup(self.KEY, None) is None


class TestServiceCaching:
    def test_hit_skips_evaluation(self, kg_index):
        """The acceptance criterion: a cache hit does zero index work,
        observable both on the result stats and the merged metrics."""
        obs = Metrics()
        with QueryService(kg_index, workers=2, cache_size=8,
                          metrics=obs) as service:
            cold = service.evaluate("(?x, p0/p1*, ?y)")
            steps_after_cold = obs.count("engine.steps")
            warm = service.evaluate("(?x, p0/p1*, ?y)")
            steps_after_warm = obs.count("engine.steps")
        assert not cold.stats.cached
        assert warm.stats.cached
        assert warm.pairs == cold.pairs
        assert warm.stats.backward_steps == 0
        # No additional engine work happened for the warm query.
        assert steps_after_warm == steps_after_cold
        assert obs.count("serve.cache_hits") == 1

    def test_normalization_variants_share_one_entry(self, kg_index):
        with QueryService(kg_index, workers=1, cache_size=8) as service:
            a = service.evaluate("(?x, p0|p1, ?y)")
            b = service.evaluate("(?u, p1|p0, ?v)")
        assert not a.stats.cached and b.stats.cached
        assert a.pairs == b.pairs

    def test_cached_truncated_never_answers_uncapped(self, kg_index):
        query = "(?x, (p0|p1|p2)*, ?y)"
        full = RingRPQEngine(kg_index).evaluate(query).pairs
        assert len(full) > 5
        with QueryService(kg_index, workers=1, cache_size=8) as service:
            capped = service.evaluate(query, limit=5)
            assert capped.stats.truncated and len(capped.pairs) == 5
            # The uncapped replay must recompute, not serve the prefix.
            uncapped = service.evaluate(query)
            assert not uncapped.stats.cached
            assert not uncapped.stats.truncated
            assert uncapped.pairs == full
            # Same exact cap afterwards: the truncated entry replays.
            again = service.submit(query, limit=5).result(timeout=30)
            assert again.stats.cached and again.stats.truncated
            assert again.pairs == capped.pairs

    def test_invalidation_hook(self, kg_index):
        with QueryService(kg_index, workers=1, cache_size=8) as service:
            service.evaluate("(?x, p0, ?y)")
            assert service.invalidate_cache() == 1
            replay = service.evaluate("(?x, p0, ?y)")
        assert not replay.stats.cached

    def test_eviction_under_small_capacity(self, kg_index):
        with QueryService(kg_index, workers=1, cache_size=2) as service:
            queries = ["(?x, p0, ?y)", "(?x, p1, ?y)", "(?x, p2, ?y)"]
            for q in queries:
                service.evaluate(q)
            # p0 was evicted by p2; p2 and p1 remain.
            assert not service.evaluate(queries[0]).stats.cached
            snap = service.stats()["cache"]
        assert snap["evictions"] >= 1
