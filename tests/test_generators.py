"""Tests for the synthetic graph generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ConstructionError
from repro.graph.generators import (
    chain_graph,
    cycle_graph,
    random_graph,
    wikidata_like,
)
from repro.graph.model import is_inverse_label


class TestSimpleGenerators:
    def test_chain(self):
        g = chain_graph(5)
        assert len(g) == 5
        assert ("n0", "next", "n1") in g
        assert ("n4", "next", "n5") in g

    def test_cycle(self):
        g = cycle_graph(4)
        assert len(g) == 4
        assert ("n3", "next", "n0") in g

    def test_cycle_rejects_empty(self):
        with pytest.raises(ConstructionError):
            cycle_graph(0)

    def test_random_graph_deterministic(self):
        a = random_graph(30, 100, 4, seed=5)
        b = random_graph(30, 100, 4, seed=5)
        assert a.triples == b.triples
        c = random_graph(30, 100, 4, seed=6)
        assert a.triples != c.triples

    def test_random_graph_bounds(self):
        g = random_graph(10, 50, 3, seed=1)
        assert len(g) <= 50
        assert all(p in {"p0", "p1", "p2"} for _, p, _ in g)

    def test_random_graph_validation(self):
        with pytest.raises(ConstructionError):
            random_graph(0, 10, 2)


class TestWikidataLike:
    def test_deterministic(self):
        a = wikidata_like(200, 1000, 16, seed=9)
        b = wikidata_like(200, 1000, 16, seed=9)
        assert a.triples == b.triples

    def test_sizes(self):
        g = wikidata_like(300, 2000, 20, seed=0)
        assert 1000 <= len(g) <= 2000
        assert len(g.nodes) <= 300
        assert not any(is_inverse_label(p) for p in g.predicates)

    def test_predicate_skew(self):
        g = wikidata_like(500, 5000, 24, seed=1)
        counts = Counter(p for _, p, _ in g)
        ordered = [c for _, c in counts.most_common()]
        # Zipf-ish: the most popular predicate dominates the median one.
        assert ordered[0] > 4 * ordered[len(ordered) // 2]

    def test_hierarchy_predicate_is_deep(self):
        g = wikidata_like(400, 3000, 16, seed=2)
        # p0 forms a forest over class ids: walk up from some node and
        # expect a chain of length >= 3 somewhere.
        parents = {}
        for s, p, o in g:
            if p == "p0":
                parents.setdefault(s, o)
        depths = []
        for start in list(parents)[:200]:
            depth, node = 0, start
            while node in parents and depth < 50:
                node = parents[node]
                depth += 1
            depths.append(depth)
        assert depths and max(depths) >= 3

    def test_too_few_predicates_rejected(self):
        with pytest.raises(ConstructionError):
            wikidata_like(100, 500, 3)
