"""Tests for the RPQ query model and result types."""

from __future__ import annotations

import pytest

from repro.automata.syntax import Symbol
from repro.core.query import RPQ, Variable, as_query
from repro.core.result import QueryResult, QueryStats
from repro.errors import RegexSyntaxError


class TestParse:
    def test_variable_to_constant(self):
        q = RPQ.parse("(?x, l5+/bus, Baq)")
        assert q.subject == Variable("x")
        assert q.object == "Baq"
        assert str(q.expr) == "l5+/bus"
        assert q.shape() == "vc"

    def test_constant_to_variable(self):
        q = RPQ.parse("(Baq, bus, ?y)")
        assert q.shape() == "cv"
        assert q.subject == "Baq"

    def test_both_variables(self):
        assert RPQ.parse("(?x, p, ?y)").shape() == "vv"

    def test_both_constants(self):
        assert RPQ.parse("(a, p, b)").shape() == "cc"

    def test_without_parens(self):
        q = RPQ.parse("?x, p, b")
        assert q.shape() == "vc"

    def test_iri_endpoint(self):
        q = RPQ.parse("(<http://x/a>, p, ?y)")
        assert q.subject == "http://x/a"

    def test_bad_arity(self):
        with pytest.raises(RegexSyntaxError):
            RPQ.parse("(a, p)")
        with pytest.raises(RegexSyntaxError):
            RPQ.parse("(a, p, b, c)")

    def test_empty_endpoint(self):
        with pytest.raises(RegexSyntaxError):
            RPQ.parse("(, p, b)")

    def test_bare_question_mark(self):
        with pytest.raises(RegexSyntaxError):
            RPQ.parse("(?, p, b)")

    def test_of_with_ast(self):
        q = RPQ.of("?x", Symbol("p"), "b")
        assert q.expr == Symbol("p")

    def test_as_query_passthrough(self):
        q = RPQ.parse("(?x, p, ?y)")
        assert as_query(q) is q
        assert as_query("(?x, p, ?y)") == q

    def test_str_roundtrip(self):
        q = RPQ.parse("(?x, a/b*, Baq)")
        assert RPQ.parse(str(q)) == q

    def test_reversed(self):
        q = RPQ.parse("(s, a/b, ?y)")
        r = q.reversed()
        assert r.subject == Variable("y")
        assert r.object == "s"
        assert str(r.expr) == "^b/^a"
        assert r.reversed() == q


class TestResult:
    def test_set_interface(self):
        result = QueryResult(pairs={("a", "b"), ("a", "c")})
        assert len(result) == 2
        assert ("a", "b") in result
        assert list(result) == [("a", "b"), ("a", "c")]
        assert result.subjects() == {"a"}
        assert result.objects() == {"b", "c"}
        assert bool(result)
        assert not QueryResult()

    def test_stats_working_set(self):
        stats = QueryStats(visited_nodes=10, b_entries=2, nfa_states=4)
        assert stats.working_set_bits() == 48

    def test_repr_flags(self):
        stats = QueryStats(timed_out=True, truncated=True)
        text = repr(QueryResult(stats=stats))
        assert "TIMEOUT" in text and "TRUNCATED" in text
