"""Edge cases of the evaluation budget and cooperative cancellation.

The budget is the single interruption point of the engine — timeout,
deadline and cancellation all ride its throttled ticks — so its edges
are the edges of the whole degradation story: zero budgets, pre-set
cancel tokens, tokens tripping mid-phase, and the requirement that an
interrupted evaluation still leaves well-formed observability behind
(spans closed, counters consistent).
"""

from __future__ import annotations

import pytest

from repro.core.engine import _TICK_EVERY, RingRPQEngine, _Budget
from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.obs.metrics import Metrics


class TripAfter:
    """A cancel token that trips after ``n`` consultations.

    Deterministic replacement for "cancel from another thread at just
    the right moment": the budget consults it at fixed tick intervals,
    so ``n`` positions the cancellation at a precise point of the
    evaluation's own progress.
    """

    def __init__(self, n: int):
        self.n = n
        self.calls = 0

    def is_set(self) -> bool:
        self.calls += 1
        return self.calls > self.n


class TestBudget:
    def test_no_timeout_no_cancel_never_raises(self):
        budget = _Budget(None)
        for _ in range(10_000):
            budget.tick()

    def test_zero_timeout_raises_on_first_check(self):
        budget = _Budget(0.0)
        with pytest.raises(QueryTimeoutError):
            for _ in range(_TICK_EVERY + 1):
                budget.tick()

    def test_preset_cancel_raises_on_first_check(self):
        class Set:
            @staticmethod
            def is_set():
                return True

        budget = _Budget(None, cancel=Set())
        with pytest.raises(QueryCancelledError):
            for _ in range(_TICK_EVERY + 1):
                budget.tick()

    def test_cancel_checked_before_timeout(self):
        """When both tripped, cancellation wins — the caller asked."""
        class Set:
            @staticmethod
            def is_set():
                return True

        budget = _Budget(0.0, cancel=Set())
        with pytest.raises(QueryCancelledError):
            for _ in range(_TICK_EVERY + 1):
                budget.tick()

    def test_ticks_are_throttled(self):
        token = TripAfter(0)
        budget = _Budget(None, cancel=token)
        for _ in range(_TICK_EVERY - 1):
            budget.tick()
        # The token was never consulted between checkpoints.
        assert token.calls == 0


class TestEngineCancellation:
    def test_cancel_before_any_work(self, kg_index):
        engine = RingRPQEngine(kg_index)
        result = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=60,
                                 cancel=TripAfter(0))
        assert result.stats.cancelled
        assert not result.stats.timed_out

    def test_cancel_mid_run_returns_partial(self, kg_index):
        engine = RingRPQEngine(kg_index)
        query = "(?x, (p0|p1)*, ?y)"
        full = engine.evaluate(query, timeout=60)
        assert not full.stats.cancelled
        partial = engine.evaluate(query, timeout=60, cancel=TripAfter(25))
        assert partial.stats.cancelled
        assert partial.pairs <= full.pairs
        assert len(partial.pairs) < len(full.pairs)
        # Elapsed is still recorded for the partial run.
        assert partial.stats.elapsed >= 0.0

    def test_cancel_mid_phase_two(self, kg_index):
        """Trip the token once phase 2 (per-anchor subqueries of a
        v-to-v evaluation) is underway: the partial result must carry
        the subqueries already finished and stay well-formed."""
        engine = RingRPQEngine(kg_index, use_planner=False,
                               fast_paths=False)
        query = "(?x, (p0|p1)*, ?y)"
        # Probe run: count how often the budget consults the token over
        # the whole (deterministic) evaluation, without tripping it.
        probe = TripAfter(1 << 60)
        full = engine.evaluate(query, timeout=60, cancel=probe)
        total = probe.calls
        assert full.stats.subqueries > 4 and total > 10
        for frac in (0.9, 0.75, 0.6, 0.5):
            partial = engine.evaluate(
                query, timeout=60, cancel=TripAfter(int(total * frac))
            )
            assert partial.stats.cancelled
            if partial.stats.subqueries >= 1:
                assert partial.pairs <= full.pairs
                return
        pytest.fail("no trip point landed inside phase 2")

    def test_zero_timeout_times_out(self, kg_index):
        engine = RingRPQEngine(kg_index)
        result = engine.evaluate("(?x, (p0|p1|p2)*, ?y)", timeout=0.0)
        assert result.stats.timed_out
        assert not result.stats.cancelled

    def test_limit_zero_short_circuits(self, kg_index):
        engine = RingRPQEngine(kg_index)
        result = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=60,
                                 limit=0)
        assert result.stats.truncated
        assert result.pairs == set()
        assert result.stats.backward_steps == 0
        assert result.stats.product_nodes == 0

    def test_limit_equal_to_answer_count_tags_truncated(self, kg_index):
        """At limit == |answer| the engine stops *at* the cap and tags
        truncated — the premise of the cache's strict-inequality rule."""
        engine = RingRPQEngine(kg_index)
        query = "(?x, p0|p1, ?y)"
        full = engine.evaluate(query, timeout=60)
        assert len(full.pairs) > 0 and not full.stats.truncated
        exact = engine.evaluate(query, timeout=60, limit=len(full.pairs))
        assert exact.pairs == full.pairs
        assert exact.stats.truncated

    def test_spans_closed_after_cancellation(self, kg_index):
        """A cancelled evaluation must not leak open spans: the span
        stack unwinds to depth zero and every recorded span has an end
        time, so the obs forest stays exportable."""
        obs = Metrics(span_capacity=4096)
        engine = RingRPQEngine(kg_index)
        result = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=60,
                                 metrics=obs, cancel=TripAfter(25))
        assert result.stats.cancelled
        assert obs.spans._open == []
        for span in obs.spans.spans:
            assert span.t1 >= span.t0
        # The tree export still works on the interrupted forest.
        assert isinstance(obs.spans.tree(), list)

    def test_spans_closed_after_timeout(self, kg_index):
        obs = Metrics(span_capacity=4096)
        engine = RingRPQEngine(kg_index)
        result = engine.evaluate("(?x, (p0|p1|p2)*, ?y)", timeout=0.0,
                                 metrics=obs)
        assert result.stats.timed_out
        assert obs.spans._open == []
