"""Shared plumbing for the HTTP front-door test family.

One place builds a served stack (index → service → HTTP server on an
ephemeral port) and speaks minimal client HTTP, so the API, fault
injection, and conformance suites all drive the same wire path
without each reinventing a client.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from contextlib import contextmanager

from repro.obs.flight import FlightRecorder
from repro.obs.metrics import Metrics
from repro.serve import HTTPQueryServer, QueryService


@contextmanager
def served(index, engine=None, workers: int = 2, max_pending: int = 16,
           cache_size: int = 0, retention: int = 64, **server_kwargs):
    """A live (service, server, metrics) stack, torn down afterwards.

    The cache defaults to *off* so every submission exercises the
    queue path — cache hits settle synchronously in ``submit`` and
    would bypass exactly the machinery these tests probe.
    """
    metrics = Metrics()
    flight = FlightRecorder(capacity=64)
    service = QueryService(
        index, workers=workers, max_pending=max_pending,
        cache_size=cache_size, metrics=metrics, flight=flight,
        engine=engine,
    )
    server = HTTPQueryServer(service, port=0, retention=retention,
                             **server_kwargs)
    server.start()
    try:
        yield service, server, metrics
    finally:
        server.stop()
        service.close()


def request(server, method: str, path: str, body=None,
            timeout: float = 30.0):
    """One request; returns ``(status, headers, raw_body_bytes)``."""
    if isinstance(body, (dict, list)):
        body = json.dumps(body).encode("utf-8")
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=timeout)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, dict(resp.getheaders()), resp.read()
    finally:
        conn.close()


def ndjson(raw: bytes) -> list[dict]:
    """Decode an NDJSON body into its record dicts."""
    return [json.loads(line) for line in raw.decode("utf-8").splitlines()]


def stream_pairs(records: list[dict]) -> list[tuple]:
    """The pair list carried by a framed NDJSON response."""
    pairs: list[tuple] = []
    for record in records:
        if record["kind"] == "page":
            pairs.extend(tuple(p) for p in record["pairs"])
    return pairs


def post_query(server, query: str, timeout_ms=None, limit=None,
               page_size=None, timeout: float = 30.0):
    """``POST /query``; returns ``(status, headers, records)`` where
    ``records`` is the decoded NDJSON framing (or the error body)."""
    body: dict = {"query": query}
    if timeout_ms is not None:
        body["timeout_ms"] = timeout_ms
    if limit is not None:
        body["limit"] = limit
    if page_size is not None:
        body["page_size"] = page_size
    status, headers, raw = request(server, "POST", "/query", body,
                                   timeout=timeout)
    if status == 200:
        return status, headers, ndjson(raw)
    return status, headers, json.loads(raw)


def raw_connection(server, timeout: float = 10.0) -> socket.socket:
    """A plain TCP connection for byte-level fault injection."""
    return socket.create_connection((server.host, server.port),
                                    timeout=timeout)


def send_raw_query(sock: socket.socket, body: dict) -> None:
    """Write one ``POST /query`` over a raw socket, nothing more."""
    payload = json.dumps(body).encode("utf-8")
    head = (
        f"POST /query HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(payload)}\r\n\r\n"
    ).encode("latin-1")
    sock.sendall(head + payload)


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.01):
    """Poll ``predicate`` until true; raises on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not met within {timeout}s")
