"""Typed errors must survive the process boundary.

The process-pool serving tier ships exceptions through a
``multiprocessing`` pipe, so every error the engine or serve layer can
raise must pickle-roundtrip *with its typed attributes intact*.  The
historical failure mode: default pickling replays ``__init__`` with
``args`` — the *composed* message — which for multi-argument
constructors either blows up (``OverloadedError`` missing positionals,
``QueryCancelledError`` formatting a string as a float) or silently
drops fields (``RegexSyntaxError`` re-appending the position suffix
and losing ``position``).
"""

from __future__ import annotations

import pickle

import pytest

from repro.errors import (
    ConstructionError,
    InvariantViolation,
    OverloadedError,
    QueryCancelledError,
    QueryTimeoutError,
    RegexSyntaxError,
    ReproError,
    ResultLimitExceeded,
    UnknownSymbolError,
    WorkerCrashedError,
)

CASES = [
    (RegexSyntaxError("unbalanced parenthesis", 7),
     {"position": 7, "raw_message": "unbalanced parenthesis"}),
    (RegexSyntaxError("unexpected end of input"),
     {"position": None}),
    (UnknownSymbolError("predicate", "knows"),
     {"kind": "predicate", "symbol": "knows"}),
    (QueryTimeoutError(1.25, 1.0),
     {"elapsed": 1.25, "budget": 1.0}),
    (QueryCancelledError(0.5),
     {"elapsed": 0.5}),
    (OverloadedError("queue full", 64, 64, retry_after=0.1),
     {"reason": "queue full", "pending": 64, "capacity": 64,
      "retry_after": 0.1}),
    (WorkerCrashedError("repro-serve-proc-3", -9),
     {"worker": "repro-serve-proc-3", "exitcode": -9}),
    (WorkerCrashedError("repro-serve-proc-0"),
     {"exitcode": None}),
    (ResultLimitExceeded(100_000),
     {"limit": 100_000}),
    (ConstructionError("empty graph"), {}),
    (InvariantViolation("rank directory is stale"), {}),
    (ReproError("generic"), {}),
]


@pytest.mark.parametrize(
    "error, attrs", CASES, ids=lambda c: type(c).__name__
    if isinstance(c, BaseException) else ""
)
def test_roundtrip_preserves_type_message_and_attrs(error, attrs):
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is type(error)
    assert str(clone) == str(error)
    for name, value in attrs.items():
        assert getattr(clone, name) == value, name


def test_budget_tagged_partial_result_roundtrips(kg_index):
    """A truncated/timed-out partial ``QueryResult`` — what a worker
    ships for a query that hit its budget — pickles whole: pairs,
    flags, and the operation-counter stream."""
    from repro.core.engine import RingRPQEngine

    engine = RingRPQEngine(kg_index, prepare_cache_size=0)
    truncated = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=60, limit=5)
    assert truncated.stats.truncated
    timed_out = engine.evaluate("(?x, (p0|p1)*, ?y)", timeout=0.0)
    for result in (truncated, timed_out):
        clone = pickle.loads(pickle.dumps(result))
        assert clone.pairs == result.pairs
        assert clone.stats.truncated == result.stats.truncated
        assert clone.stats.timed_out == result.stats.timed_out
        assert (clone.stats.operation_counts()
                == result.stats.operation_counts())
