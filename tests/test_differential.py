"""Differential fuzzing: all engines vs the brute-force oracle.

This is the suite's strongest correctness statement: on random graphs
and random two-way expressions (including inverses and negated
classes), the ring engine (in all flag configurations) and every
baseline must return exactly the oracle's answer set.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import all_engines
from repro.baselines.registry import TABLE2_ENGINES
from repro.core.engine import RingRPQEngine
from repro.graph.generators import random_graph, wikidata_like
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq, random_query

N_QUERIES_PER_GRAPH = 12


def _check_graph(graph, seed: int, engines_extra=()):
    rng = random.Random(seed)
    completed = graph.completion()
    index = RingIndex.from_graph(graph)
    engines = all_engines(index, TABLE2_ENGINES + ("product-bfs",))
    engines["ring-noprune"] = RingRPQEngine(index, prune=False)
    engines["ring-nofast"] = RingRPQEngine(index, fast_paths=False)
    engines["ring-noplan"] = RingRPQEngine(index, use_planner=False)
    for _ in range(N_QUERIES_PER_GRAPH):
        query = random_query(rng, graph, allow_negation=True)
        expected = brute_force_rpq(graph, query, completed)
        for name, engine in engines.items():
            got = engine.evaluate(query, timeout=60).pairs
            assert got == expected, (
                str(query), name, sorted(got ^ expected)[:5]
            )


@pytest.mark.parametrize("seed", range(5))
def test_random_graphs(seed):
    graph = random_graph(
        n_nodes=14, n_edges=40, n_predicates=3, seed=seed
    )
    _check_graph(graph, seed * 101 + 7)


def test_kg_shaped_graph():
    graph = wikidata_like(
        n_nodes=60, n_edges=220, n_predicates=10, seed=5
    )
    _check_graph(graph, 999)


def test_graph_with_symmetric_predicates():
    from repro.graph.datasets import santiago_transport

    _check_graph(santiago_transport(), 4242)


def test_dense_single_predicate():
    graph = random_graph(n_nodes=8, n_edges=40, n_predicates=1, seed=3)
    _check_graph(graph, 31337)
