"""Differential fuzzing: all engines vs the brute-force oracle.

This is the suite's strongest correctness statement: on random graphs
and random two-way expressions (including inverses and negated
classes), the ring engine (in all flag configurations) and every
baseline must return exactly the oracle's answer set.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines import all_engines
from repro.baselines.registry import TABLE2_ENGINES
from repro.core.engine import RingRPQEngine
from repro.graph.generators import random_graph, wikidata_like
from repro.ring.builder import RingIndex
from repro.testing import brute_force_rpq, random_query

N_QUERIES_PER_GRAPH = 12


def _check_graph(graph, seed: int, engines_extra=()):
    rng = random.Random(seed)
    completed = graph.completion()
    index = RingIndex.from_graph(graph)
    engines = all_engines(index, TABLE2_ENGINES + ("product-bfs",))
    engines["ring-noprune"] = RingRPQEngine(index, prune=False)
    engines["ring-nofast"] = RingRPQEngine(index, fast_paths=False)
    engines["ring-noplan"] = RingRPQEngine(index, use_planner=False)
    for _ in range(N_QUERIES_PER_GRAPH):
        query = random_query(rng, graph, allow_negation=True)
        expected = brute_force_rpq(graph, query, completed)
        for name, engine in engines.items():
            got = engine.evaluate(query, timeout=60).pairs
            assert got == expected, (
                str(query), name, sorted(got ^ expected)[:5]
            )


@pytest.mark.parametrize("seed", range(5))
def test_random_graphs(seed):
    graph = random_graph(
        n_nodes=14, n_edges=40, n_predicates=3, seed=seed
    )
    _check_graph(graph, seed * 101 + 7)


def test_kg_shaped_graph():
    graph = wikidata_like(
        n_nodes=60, n_edges=220, n_predicates=10, seed=5
    )
    _check_graph(graph, 999)


def test_graph_with_symmetric_predicates():
    from repro.graph.datasets import santiago_transport

    _check_graph(santiago_transport(), 4242)


def test_dense_single_predicate():
    graph = random_graph(n_nodes=8, n_edges=40, n_predicates=1, seed=3)
    _check_graph(graph, 31337)


def test_ring_does_less_storage_work_on_anchored_queries():
    """The §4 cost claim, checked on operation counts rather than
    wall-clock: on anchored closure queries over a KG-shaped graph the
    ring engine's substrate-neutral storage-operation total undercuts
    the product-graph BFS baseline (which re-touches the adjacency of
    every product node it pops), while both return identical answers.
    """
    from repro.baselines.registry import make_engine

    graph = wikidata_like(
        n_nodes=400, n_edges=3_200, n_predicates=10, seed=9
    )
    index = RingIndex.from_graph(graph)
    ring = index.engine
    bfs = make_engine("product-bfs", index)

    out_degree: dict[str, int] = {}
    for s, _, _ in graph.triples:
        out_degree[s] = out_degree.get(s, 0) + 1
    hubs = sorted(out_degree, key=lambda n: -out_degree[n])[:8]

    ring_total = bfs_total = 0
    for anchor in hubs:
        for expr in ("p0+", "(p0|p1)+", "(p0|p1|p2)+", "p1+/p2"):
            query = f"({anchor}, {expr}, ?y)"
            ring_result = ring.evaluate(query, timeout=60)
            bfs_result = bfs.evaluate(query, timeout=60)
            assert ring_result.pairs == bfs_result.pairs, query
            ring_total += ring_result.stats.storage_ops
            bfs_total += bfs_result.stats.storage_ops
    assert 0 < ring_total < bfs_total
