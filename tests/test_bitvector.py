"""Unit and property tests for the packed bitvector."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector


class TestBasics:
    def test_empty(self):
        bv = BitVector([])
        assert len(bv) == 0
        assert bv.num_ones == 0
        assert bv.num_zeros == 0
        assert bv.rank1(0) == 0
        assert bv.rank0(5) == 0

    def test_single_bits(self):
        assert BitVector([1])[0] == 1
        assert BitVector([0])[0] == 0

    def test_access_and_iter(self):
        bits = [1, 0, 0, 1, 1, 0, 1]
        bv = BitVector(bits)
        assert [bv[i] for i in range(len(bits))] == bits
        assert list(bv) == bits
        assert bv[-1] == 1
        assert bv[-7] == 1

    def test_access_out_of_range(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv[2]
        with pytest.raises(IndexError):
            bv[-3]

    def test_from_indices(self):
        bv = BitVector.from_indices(10, [0, 3, 9])
        assert list(bv) == [1, 0, 0, 1, 0, 0, 0, 0, 0, 1]

    def test_from_indices_out_of_range(self):
        with pytest.raises(IndexError):
            BitVector.from_indices(4, [4])

    def test_zeros(self):
        bv = BitVector.zeros(100)
        assert bv.num_ones == 0
        assert bv.rank0(100) == 100

    def test_word_boundaries(self):
        # Bits around the 64-bit word edges are the classic off-by-one
        # location; place ones exactly there.
        ones = [0, 63, 64, 127, 128, 191]
        bv = BitVector.from_indices(200, ones)
        for i, pos in enumerate(ones):
            assert bv.select1(i) == pos
            assert bv.rank1(pos) == i
            assert bv.rank1(pos + 1) == i + 1

    def test_counts(self):
        bv = BitVector([1, 1, 0, 1])
        assert bv.num_ones == 3
        assert bv.num_zeros == 1

    def test_rank_clamps(self):
        bv = BitVector([1, 0, 1])
        assert bv.rank1(1000) == 2
        assert bv.rank0(-5) == 0
        assert bv.rank(1, 3) == 2
        assert bv.rank(0, 3) == 1

    def test_select_errors(self):
        bv = BitVector([1, 0])
        with pytest.raises(IndexError):
            bv.select1(1)
        with pytest.raises(IndexError):
            bv.select0(1)
        with pytest.raises(IndexError):
            bv.select1(-1)

    def test_select_generic(self):
        bv = BitVector([0, 1, 1, 0, 1])
        assert bv.select(1, 0) == 1
        assert bv.select(0, 1) == 3

    def test_check_passes(self):
        BitVector([1, 0] * 100).check()

    def test_numpy_input(self):
        arr = np.array([1, 0, 1], dtype=np.uint8)
        assert list(BitVector(arr)) == [1, 0, 1]

    def test_size_accounting(self):
        bv = BitVector([1] * 1000)
        assert bv.size_in_bits() >= 1000
        assert bv.size_in_bits_model() == 1000 + 250


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), max_size=600))
def test_rank_matches_naive(bits):
    bv = BitVector(bits)
    prefix = 0
    for i, bit in enumerate(bits):
        assert bv.rank1(i) == prefix
        assert bv.rank0(i) == i - prefix
        prefix += bit
    assert bv.rank1(len(bits)) == prefix


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), max_size=600))
def test_select_inverts_rank(bits):
    bv = BitVector(bits)
    ones = [i for i, b in enumerate(bits) if b]
    zeros = [i for i, b in enumerate(bits) if not b]
    for j, pos in enumerate(ones):
        assert bv.select1(j) == pos
        assert bv.rank1(bv.select1(j)) == j
    for j, pos in enumerate(zeros):
        assert bv.select0(j) == pos


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2000), st.random_module())
def test_roundtrip_to_array(n, _):
    rng = np.random.default_rng(n)
    bits = (rng.random(n) < 0.3).astype(np.uint8)
    bv = BitVector(bits)
    assert np.array_equal(bv.to_array(), bits)
    bv.check()
